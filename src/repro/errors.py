"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph operation was invalid (missing node, bad latency, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation that requires connectivity was run on a disconnected graph."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ProtocolError(ReproError):
    """A protocol implementation violated the engine contract."""


class ConductanceError(ReproError):
    """Weighted-conductance computation failed or was misconfigured."""


class GameError(ReproError):
    """The guessing game was used incorrectly (e.g. oversized guess set)."""


class ExperimentError(ReproError):
    """An experiment definition or harness invocation was invalid."""


class ObservabilityError(ReproError):
    """The observability layer was misused (bad metric, trace, or gate input)."""


class FaultInjected(ReproError):
    """A deliberately injected fault fired (crash-recovery testing only).

    Raised by :func:`repro.experiments.sharding.maybe_fault` when the
    ``REPRO_FAULT_AT`` spec names the current fault point in ``raise``
    mode.  Never raised outside fault-injection scopes; production sweeps
    with the env var unset can never see it.
    """
