"""Graph substrate: latency graphs, topology generators, and lower-bound gadgets."""

from repro.graphs.latency_graph import Edge, LatencyGraph, Node, edge_key
from repro.graphs.latency_models import (
    LatencyModel,
    bimodal_latency,
    constant_latency,
    geometric_distance_latency,
    uniform_latency,
    zipf_latency,
)
from repro.graphs import gadgets, generators, io

__all__ = [
    "io",
    "Edge",
    "LatencyGraph",
    "Node",
    "edge_key",
    "LatencyModel",
    "bimodal_latency",
    "constant_latency",
    "geometric_distance_latency",
    "uniform_latency",
    "zipf_latency",
    "gadgets",
    "generators",
]
