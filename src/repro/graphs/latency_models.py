"""Latency assignment models.

A *latency model* is a callable that, given the two endpoints of an edge and
a ``random.Random`` instance, returns the positive integer latency for that
edge.  Generators in :mod:`repro.graphs.generators` accept any such callable,
so users can plug in their own distributions; this module provides the ones
used throughout the paper's constructions and our experiments.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.errors import GraphError
from repro.graphs.latency_graph import Node

LatencyModel = Callable[[Node, Node, random.Random], int]

__all__ = [
    "LatencyModel",
    "constant_latency",
    "uniform_latency",
    "bimodal_latency",
    "zipf_latency",
    "geometric_distance_latency",
]


def constant_latency(value: int = 1) -> LatencyModel:
    """Every edge gets latency ``value`` (the classical unweighted setting)."""
    if value < 1:
        raise GraphError(f"constant latency must be >= 1, got {value}")

    def model(_u: Node, _v: Node, _rng: random.Random) -> int:
        return value

    return model


def uniform_latency(low: int, high: int) -> LatencyModel:
    """Latencies drawn uniformly from the integer interval ``[low, high]``."""
    if not 1 <= low <= high:
        raise GraphError(f"need 1 <= low <= high, got [{low}, {high}]")

    def model(_u: Node, _v: Node, rng: random.Random) -> int:
        return rng.randint(low, high)

    return model


def bimodal_latency(fast: int, slow: int, fast_probability: float) -> LatencyModel:
    """Each edge is *fast* with probability ``fast_probability``, else *slow*.

    This is the distribution behind the paper's lower-bound gadgets
    (Theorem 7): a few hidden fast edges among many slow ones.
    """
    if fast < 1 or slow < 1:
        raise GraphError("latencies must be >= 1")
    if not 0.0 <= fast_probability <= 1.0:
        raise GraphError(f"fast_probability must be in [0, 1], got {fast_probability}")

    def model(_u: Node, _v: Node, rng: random.Random) -> int:
        return fast if rng.random() < fast_probability else slow

    return model


def zipf_latency(max_latency: int, exponent: float = 2.0) -> LatencyModel:
    """Heavy-tailed latencies: ``P(ℓ = k) ∝ k^{-exponent}`` for ``k in [1, max_latency]``.

    Models wide-area networks where most links are fast but a few are very
    slow.  Sampling is done by inverse-CDF over the truncated Zipf weights.
    """
    if max_latency < 1:
        raise GraphError(f"max_latency must be >= 1, got {max_latency}")
    if exponent <= 0:
        raise GraphError(f"exponent must be positive, got {exponent}")
    weights = [k ** (-exponent) for k in range(1, max_latency + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def model(_u: Node, _v: Node, rng: random.Random) -> int:
        r = rng.random()
        # Linear scan is fine: max_latency is small in practice and the scan
        # usually stops after a couple of steps because the head is heavy.
        for k, threshold in enumerate(cdf, start=1):
            if r <= threshold:
                return k
        return max_latency

    return model


def geometric_distance_latency(
    positions: dict[Node, tuple[float, float]],
    scale: float = 1.0,
    minimum: int = 1,
) -> LatencyModel:
    """Latency proportional to Euclidean distance between node positions.

    Used with random geometric graphs: ``latency = max(minimum,
    round(scale * dist(u, v)))``.  The ``positions`` mapping must cover every
    node the model is asked about.
    """
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    if minimum < 1:
        raise GraphError(f"minimum latency must be >= 1, got {minimum}")

    def model(u: Node, v: Node, _rng: random.Random) -> int:
        if u not in positions or v not in positions:
            raise GraphError(f"no position for edge endpoint ({u!r}, {v!r})")
        (x1, y1), (x2, y2) = positions[u], positions[v]
        dist = math.hypot(x1 - x2, y1 - y2)
        return max(minimum, round(scale * dist))

    return model


def resolve_model(latency_model: Optional[LatencyModel]) -> LatencyModel:
    """Default to unit latencies when no model is supplied."""
    return latency_model if latency_model is not None else constant_latency(1)
