"""Graph serialization: JSON and edge-list formats.

Experiments sometimes need to pin an exact worst-case instance (a gadget
whose hidden target produced an interesting run) or move graphs between
the CLI and notebooks.  Two formats:

* **JSON** — nodes, edges and latencies plus an optional metadata dict;
  round-trips arbitrary hashable-as-string node ids losslessly for the
  common case of int/str ids.
* **edge list** — ``u v latency`` per line, ``#`` comments; the lingua
  franca of graph tooling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional, Union

from repro.errors import GraphError
from repro.graphs.latency_graph import LatencyGraph

__all__ = [
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_edge_list",
    "from_edge_list",
    "save_edge_list",
    "load_edge_list",
]

PathLike = Union[str, pathlib.Path]


def to_json(graph: LatencyGraph, metadata: Optional[dict[str, Any]] = None) -> str:
    """Serialize to a JSON document string."""
    payload = {
        "format": "repro-latency-graph",
        "version": 1,
        "nodes": graph.nodes(),
        "edges": [[u, v, latency] for u, v, latency in graph.edges()],
        "metadata": metadata or {},
    }
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def from_json(document: str) -> tuple[LatencyGraph, dict[str, Any]]:
    """Parse a JSON document produced by :func:`to_json`.

    Returns ``(graph, metadata)``.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as error:
        raise GraphError(f"invalid graph JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != "repro-latency-graph":
        raise GraphError("not a repro latency-graph document")
    graph = LatencyGraph()
    for node in payload.get("nodes", []):
        graph.add_node(_freeze(node))
    for entry in payload.get("edges", []):
        if not isinstance(entry, list) or len(entry) != 3:
            raise GraphError(f"malformed edge entry: {entry!r}")
        u, v, latency = entry
        graph.add_edge(_freeze(u), _freeze(v), int(latency))
    return graph, payload.get("metadata", {})


def save_json(
    graph: LatencyGraph,
    path: PathLike,
    metadata: Optional[dict[str, Any]] = None,
) -> None:
    """Write the JSON serialization to ``path``."""
    pathlib.Path(path).write_text(to_json(graph, metadata))


def load_json(path: PathLike) -> tuple[LatencyGraph, dict[str, Any]]:
    """Read a graph (and its metadata) from a JSON file."""
    return from_json(pathlib.Path(path).read_text())


def to_edge_list(graph: LatencyGraph) -> str:
    """Serialize as ``u v latency`` lines (isolated nodes as ``u`` lines)."""
    lines = ["# repro latency graph edge list: u v latency"]
    connected = set()
    for u, v, latency in graph.edges():
        lines.append(f"{u} {v} {latency}")
        connected.add(u)
        connected.add(v)
    for node in graph.nodes():
        if node not in connected:
            lines.append(f"{node}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> LatencyGraph:
    """Parse an edge list; node ids become ints when they look like ints."""
    graph = LatencyGraph()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_node(_parse_node(parts[0]))
        elif len(parts) == 3:
            u, v, latency = parts
            try:
                graph.add_edge(_parse_node(u), _parse_node(v), int(latency))
            except ValueError as error:
                raise GraphError(
                    f"line {line_number}: bad latency {latency!r}"
                ) from error
        else:
            raise GraphError(
                f"line {line_number}: expected 'u v latency' or 'u', got {raw!r}"
            )
    return graph


def save_edge_list(graph: LatencyGraph, path: PathLike) -> None:
    """Write the edge-list serialization to ``path``."""
    pathlib.Path(path).write_text(to_edge_list(graph))


def load_edge_list(path: PathLike) -> LatencyGraph:
    """Read a graph from an edge-list file."""
    return from_edge_list(pathlib.Path(path).read_text())


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _freeze(node):
    # JSON keys/values arrive as str/int/float/...; lists are not hashable.
    if isinstance(node, list):
        return tuple(_freeze(item) for item in node)
    return node
