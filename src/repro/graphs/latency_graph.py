"""The core network substrate: an undirected graph with integer edge latencies.

The paper models the network as a connected, undirected graph ``G = (V, E)``
where each edge carries a positive integer *latency*: the number of
synchronous rounds a bidirectional exchange over that edge takes.  This module
provides :class:`LatencyGraph`, the data structure every other part of the
library builds on.

Design notes
------------
* Node identifiers are arbitrary hashable objects, but generators in this
  library use consecutive integers.
* The graph is simple (no self loops, no parallel edges).  The strongly
  edge-induced *multigraph* used in the push--pull analysis (Eq. 3 of the
  paper) lives in :mod:`repro.conductance.edge_induced`, not here.
* All shortest-path quantities are *weighted* by latency unless the name says
  ``hop``.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

import numpy as np

from repro.errors import DisconnectedGraphError, GraphError
from repro.obs.profile import span

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["LatencyGraph", "Node", "Edge", "edge_key"]


def edge_key(u: Node, v: Node) -> Edge:
    """Return a canonical (sorted) representation of the undirected edge ``{u, v}``.

    Sorting is done on ``repr`` when the nodes are not mutually orderable, so
    mixed node types still get a stable canonical form.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class LatencyGraph:
    """An undirected graph whose edges carry positive integer latencies.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v, latency)`` triples.

    Examples
    --------
    >>> g = LatencyGraph()
    >>> g.add_edge("a", "b", 3)
    >>> g.latency("b", "a")
    3
    >>> g.weighted_distance("a", "b")
    3
    """

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[tuple[Node, Node, int]]] = None,
    ) -> None:
        self._adj: dict[Node, dict[Node, int]] = {}
        # Interned dense id space: node <-> contiguous int, assigned in
        # insertion order and never reused.  The simulation hot path keys
        # everything (edge canonicalization, adjacency arrays, shortest
        # paths) on these indices instead of hashing arbitrary node objects.
        self._index: dict[Node, int] = {}
        self._node_list: list[Node] = []
        # Bumped on every mutation; lazy index-array caches check it.
        self._version = 0
        self._adjacency_cache: Optional[tuple[int, list[list[int]], list[list[int]]]] = None
        self._edge_cache: Optional[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        self._fingerprint_cache: Optional[tuple[int, str]] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v, latency in edges:
                self.add_edge(u, v, latency)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = {}
            self._index[node] = len(self._node_list)
            self._node_list.append(node)
            self._version += 1

    def add_edge(self, u: Node, v: Node, latency: int) -> None:
        """Add the undirected edge ``{u, v}`` with the given latency.

        Latencies must be positive integers (the paper scales and rounds any
        real-valued latencies, Section 1).  Re-adding an existing edge
        overwrites its latency.

        Raises
        ------
        GraphError
            If ``u == v`` (self loop) or the latency is not a positive int.
        """
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u!r})")
        if not isinstance(latency, int) or isinstance(latency, bool):
            raise GraphError(
                f"latency must be an int, got {type(latency).__name__} for edge ({u!r}, {v!r})"
            )
        if latency < 1:
            raise GraphError(f"latency must be >= 1, got {latency} for edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = latency
        self._adj[v][u] = latency
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge ({u!r}, {v!r}) to remove")
        del self._adj[u][v]
        del self._adj[v][u]
        self._version += 1

    # ------------------------------------------------------------------
    # Dense id space
    # ------------------------------------------------------------------
    def index_of(self, node: Node) -> int:
        """The dense integer id of ``node`` (contiguous, insertion order)."""
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not in the graph") from None

    def node_at(self, index: int) -> Node:
        """The node whose dense id is ``index``."""
        try:
            return self._node_list[index]
        except IndexError:
            raise GraphError(f"no node with dense id {index}") from None

    def canonical_edge(self, u: Node, v: Node) -> Edge:
        """The undirected edge ``{u, v}`` with endpoints in dense-id order.

        Unlike :func:`edge_key` this never falls back to ``repr`` ordering,
        so it is both O(1) and stable for nodes of any (mixed) type.
        """
        return (u, v) if self._index[u] <= self._index[v] else (v, u)

    def adjacency_arrays(self) -> tuple[list[list[int]], list[list[int]]]:
        """Index-array adjacency: ``(neighbors, latencies)`` per dense id.

        ``neighbors[i]`` lists the dense ids adjacent to node ``i`` and
        ``latencies[i]`` the matching edge latencies, both in insertion
        order.  The arrays are cached and rebuilt only after a mutation —
        callers must not modify them.
        """
        cache = self._adjacency_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        index = self._index
        neighbors: list[list[int]] = []
        latencies: list[list[int]] = []
        for node in self._node_list:
            row = self._adj[node]
            neighbors.append([index[other] for other in row])
            latencies.append(list(row.values()))
        self._adjacency_cache = (self._version, neighbors, latencies)
        return neighbors, latencies

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense-id edge list as parallel numpy arrays ``(us, vs, latencies)``.

        Each undirected edge appears once with ``us[i] < vs[i]`` (dense-id
        order), rows ordered by tail insertion order — a deterministic,
        content-defined layout.  Cached per graph version; callers must not
        modify the arrays.  This is the base layout the vectorized
        conductance sweep (and anything else that wants whole-graph edge
        arithmetic) builds on.
        """
        cache = self._edge_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2], cache[3]
        index = self._index
        us: list[int] = []
        vs: list[int] = []
        lats: list[int] = []
        for u, nbrs in self._adj.items():
            ui = index[u]
            for v, latency in nbrs.items():
                vi = index[v]
                if ui < vi:
                    us.append(ui)
                    vs.append(vi)
                    lats.append(latency)
        arrays = (
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(lats, dtype=np.int64),
        )
        self._edge_cache = (self._version, *arrays)
        return arrays

    def fingerprint(self) -> str:
        """A stable content hash of the graph (nodes, dense ids, edges).

        Two graphs share a fingerprint iff they have the same node
        sequence (by ``repr``, in insertion order — so dense ids match
        too) and the same dense-id edge/latency arrays.  Artifact caches
        key derived products (spanners, distance maps, conductance
        profiles) on this digest, which makes the cache content-addressed
        rather than trusting callers to label graphs correctly.  Cached
        per graph version.
        """
        cache = self._fingerprint_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"n={self.num_nodes}".encode())
        for node in self._node_list:
            digest.update(repr(node).encode())
            digest.update(b"\x00")
        us, vs, lats = self.edge_arrays()
        digest.update(us.tobytes())
        digest.update(vs.tobytes())
        digest.update(lats.tobytes())
        value = digest.hexdigest()
        self._fingerprint_cache = (self._version, value)
        return value

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._node_list)

    def edges(self) -> Iterator[tuple[Node, Node, int]]:
        """Iterate over ``(u, v, latency)`` with each undirected edge once."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, latency in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield u, v, latency

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def adjacency_view(self) -> dict[Node, dict[Node, int]]:
        """The live ``node -> {neighbor: latency}`` mapping.

        Shared, not copied — strictly read-only, for hot-path consumers
        (the engine's per-round neighbor validation) that cannot afford a
        dict copy per call.
        """
        return self._adj

    def neighbors(self, node: Node) -> list[Node]:
        """Neighbors of ``node`` in insertion order."""
        self._require_node(node)
        return list(self._adj[node])

    def neighbor_latencies(self, node: Node) -> dict[Node, int]:
        """Mapping ``neighbor -> latency`` for edges adjacent to ``node``."""
        self._require_node(node)
        return dict(self._adj[node])

    def latency(self, u: Node, v: Node) -> int:
        """Latency of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge ({u!r}, {v!r})")
        return self._adj[u][v]

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        self._require_node(node)
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Maximum degree ``Δ`` over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(nbrs) for nbrs in self._adj.values())

    def distinct_latencies(self) -> list[int]:
        """Sorted list of distinct edge latencies present in the graph."""
        return sorted({latency for _, _, latency in self.edges()})

    def max_latency(self) -> int:
        """The maximum edge latency ``ℓ_max`` (0 for an edgeless graph)."""
        latencies = self.distinct_latencies()
        return latencies[-1] if latencies else 0

    # ------------------------------------------------------------------
    # Volumes and cuts (Definitions 1--2 bookkeeping)
    # ------------------------------------------------------------------
    def volume(self, subset: Iterable[Node]) -> int:
        """``Vol(U)``: the number of edge endpoints in ``U`` (sum of degrees).

        This matches the paper's definition ``Vol(U) = |{(u, v) : u in U, v in V}|``.
        """
        return sum(self.degree(u) for u in set(subset))

    def cut_edges(
        self, subset: Iterable[Node], max_latency: Optional[int] = None
    ) -> list[tuple[Node, Node, int]]:
        """Edges crossing the cut ``(U, V \\ U)``, optionally filtered by latency.

        Parameters
        ----------
        subset:
            The node set ``U``.
        max_latency:
            If given, only edges with latency ``<= max_latency`` are returned
            (the paper's ``E_ℓ(U, V \\ U)``).
        """
        inside = set(subset)
        crossing = []
        for u in inside:
            for v, latency in self._adj[u].items():
                if v not in inside and (max_latency is None or latency <= max_latency):
                    crossing.append((u, v, latency))
        return crossing

    # ------------------------------------------------------------------
    # Latency-filtered subgraphs
    # ------------------------------------------------------------------
    def subgraph_leq(self, max_latency: int) -> "LatencyGraph":
        """The subgraph ``G_ℓ`` keeping all nodes and only edges of latency ``<= ℓ``."""
        sub = LatencyGraph(nodes=self.nodes())
        for u, v, latency in self.edges():
            if latency <= max_latency:
                sub.add_edge(u, v, latency)
        return sub

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def weighted_distances(self, source: Node) -> dict[Node, int]:
        """Single-source shortest-path distances weighted by latency (Dijkstra).

        Unreachable nodes are absent from the returned mapping.
        """
        self._require_node(source)
        with span("graph.dijkstra"):
            neighbors, latencies = self.adjacency_arrays()
            dist = [math.inf] * len(self._node_list)
            start = self._index[source]
            dist[start] = 0
            # Dense indices are their own tie-breakers: the heap never has to
            # compare (possibly unorderable) node objects.
            heap: list[tuple[int, int]] = [(0, start)]
            push, pop = heapq.heappush, heapq.heappop
            while heap:
                d, u = pop(heap)
                if d > dist[u]:
                    continue
                row, lat = neighbors[u], latencies[u]
                for k in range(len(row)):
                    v = row[k]
                    nd = d + lat[k]
                    if nd < dist[v]:
                        dist[v] = nd
                        push(heap, (nd, v))
            node_list = self._node_list
            return {
                node_list[i]: d for i, d in enumerate(dist) if d is not math.inf
            }

    def weighted_distance(self, u: Node, v: Node) -> int:
        """Shortest latency-weighted distance between ``u`` and ``v``.

        Raises
        ------
        DisconnectedGraphError
            If ``v`` is unreachable from ``u``.
        """
        dist = self.weighted_distances(u)
        if v not in dist:
            raise DisconnectedGraphError(f"{v!r} is unreachable from {u!r}")
        return dist[v]

    def weighted_eccentricity(self, source: Node) -> int:
        """Max weighted distance from ``source`` to any node (graph must be connected)."""
        dist = self.weighted_distances(source)
        if len(dist) != self.num_nodes:
            raise DisconnectedGraphError("graph is not connected")
        return max(dist.values())

    def weighted_diameter(self, sample_sources: Optional[int] = None, rng=None) -> int:
        """The latency-weighted diameter ``D``.

        Parameters
        ----------
        sample_sources:
            If ``None``, compute exactly with one Dijkstra per node.  If an
            int ``s``, run Dijkstra from ``s`` random sources and return the
            max eccentricity seen — a lower bound on ``D`` that is within 2x
            of the truth (and exact on vertex-transitive graphs), cheap
            enough for benchmark sweeps.
        rng:
            ``random.Random`` used to pick sample sources.

        Raises
        ------
        DisconnectedGraphError
            If the graph is not connected.
        """
        nodes = self.nodes()
        if not nodes:
            return 0
        if sample_sources is None or sample_sources >= len(nodes):
            sources = nodes
        else:
            if rng is None:
                raise GraphError("sampled diameter requires an rng")
            sources = rng.sample(nodes, sample_sources)
        with span("graph.weighted_diameter"):
            return max(self.weighted_eccentricity(s) for s in sources)

    def hop_distances(self, source: Node) -> dict[Node, int]:
        """Single-source hop (unweighted) distances via BFS."""
        self._require_node(source)
        neighbors, _ = self.adjacency_arrays()
        dist = [-1] * len(self._node_list)
        start = self._index[source]
        dist[start] = 0
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                for v in neighbors[u]:
                    if dist[v] < 0:
                        dist[v] = depth
                        nxt.append(v)
            frontier = nxt
        node_list = self._node_list
        return {node_list[i]: d for i, d in enumerate(dist) if d >= 0}

    def hop_diameter(self) -> int:
        """The hop (unweighted) diameter; exact BFS from every node."""
        nodes = self.nodes()
        if not nodes:
            return 0
        diameter = 0
        for source in nodes:
            dist = self.hop_distances(source)
            if len(dist) != self.num_nodes:
                raise DisconnectedGraphError("graph is not connected")
            diameter = max(diameter, max(dist.values()))
        return diameter

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        nodes = self.nodes()
        if not nodes:
            return True
        return len(self.hop_distances(nodes[0])) == self.num_nodes

    # ------------------------------------------------------------------
    # Conversions and utilities
    # ------------------------------------------------------------------
    def copy(self) -> "LatencyGraph":
        """A deep copy of the graph."""
        clone = LatencyGraph(nodes=self.nodes())
        for u, v, latency in self.edges():
            clone.add_edge(u, v, latency)
        return clone

    def relabeled(self, mapping: dict[Node, Node]) -> "LatencyGraph":
        """Return a copy with node ids replaced via ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping is not injective")
        out = LatencyGraph(nodes=(mapping.get(v, v) for v in self.nodes()))
        for u, v, latency in self.edges():
            out.add_edge(mapping.get(u, u), mapping.get(v, v), latency)
        return out

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with a ``latency`` edge attribute."""
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(self.nodes())
        nxg.add_weighted_edges_from(self.edges(), weight="latency")
        return nxg

    @classmethod
    def from_networkx(cls, nxg, latency_attr: str = "latency", default: int = 1) -> "LatencyGraph":
        """Build from a ``networkx.Graph``; missing latency attributes get ``default``."""
        graph = cls(nodes=nxg.nodes())
        for u, v, data in nxg.edges(data=True):
            graph.add_edge(u, v, int(data.get(latency_attr, default)))
        return graph

    def __getstate__(self) -> dict:
        # Drop lazy caches so pickled graphs (process-pool trial fan-out)
        # ship only the structure; workers rebuild caches on first use.
        state = self.__dict__.copy()
        state["_adjacency_cache"] = None
        state["_edge_cache"] = None
        state["_fingerprint_cache"] = None
        return state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"LatencyGraph(n={self.num_nodes}, m={self.num_edges})"

    def _require_node(self, node: Node) -> None:
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
