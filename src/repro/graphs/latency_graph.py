"""The core network substrate: an undirected graph with integer edge latencies.

The paper models the network as a connected, undirected graph ``G = (V, E)``
where each edge carries a positive integer *latency*: the number of
synchronous rounds a bidirectional exchange over that edge takes.  This module
provides :class:`LatencyGraph`, the data structure every other part of the
library builds on.

Design notes
------------
* Node identifiers are arbitrary hashable objects, but generators in this
  library use consecutive integers.
* The graph is simple (no self loops, no parallel edges).  The strongly
  edge-induced *multigraph* used in the push--pull analysis (Eq. 3 of the
  paper) lives in :mod:`repro.conductance.edge_induced`, not here.
* All shortest-path quantities are *weighted* by latency unless the name says
  ``hop``.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from repro.errors import DisconnectedGraphError, GraphError

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["LatencyGraph", "Node", "Edge", "edge_key"]


def edge_key(u: Node, v: Node) -> Edge:
    """Return a canonical (sorted) representation of the undirected edge ``{u, v}``.

    Sorting is done on ``repr`` when the nodes are not mutually orderable, so
    mixed node types still get a stable canonical form.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class LatencyGraph:
    """An undirected graph whose edges carry positive integer latencies.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v, latency)`` triples.

    Examples
    --------
    >>> g = LatencyGraph()
    >>> g.add_edge("a", "b", 3)
    >>> g.latency("b", "a")
    3
    >>> g.weighted_distance("a", "b")
    3
    """

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[tuple[Node, Node, int]]] = None,
    ) -> None:
        self._adj: dict[Node, dict[Node, int]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v, latency in edges:
                self.add_edge(u, v, latency)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, latency: int) -> None:
        """Add the undirected edge ``{u, v}`` with the given latency.

        Latencies must be positive integers (the paper scales and rounds any
        real-valued latencies, Section 1).  Re-adding an existing edge
        overwrites its latency.

        Raises
        ------
        GraphError
            If ``u == v`` (self loop) or the latency is not a positive int.
        """
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u!r})")
        if not isinstance(latency, int) or isinstance(latency, bool):
            raise GraphError(
                f"latency must be an int, got {type(latency).__name__} for edge ({u!r}, {v!r})"
            )
        if latency < 1:
            raise GraphError(f"latency must be >= 1, got {latency} for edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = latency
        self._adj[v][u] = latency

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge ({u!r}, {v!r}) to remove")
        del self._adj[u][v]
        del self._adj[v][u]

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> Iterator[tuple[Node, Node, int]]:
        """Iterate over ``(u, v, latency)`` with each undirected edge once."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, latency in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield u, v, latency

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> list[Node]:
        """Neighbors of ``node`` in insertion order."""
        self._require_node(node)
        return list(self._adj[node])

    def neighbor_latencies(self, node: Node) -> dict[Node, int]:
        """Mapping ``neighbor -> latency`` for edges adjacent to ``node``."""
        self._require_node(node)
        return dict(self._adj[node])

    def latency(self, u: Node, v: Node) -> int:
        """Latency of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge ({u!r}, {v!r})")
        return self._adj[u][v]

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        self._require_node(node)
        return len(self._adj[node])

    def max_degree(self) -> int:
        """Maximum degree ``Δ`` over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(nbrs) for nbrs in self._adj.values())

    def distinct_latencies(self) -> list[int]:
        """Sorted list of distinct edge latencies present in the graph."""
        return sorted({latency for _, _, latency in self.edges()})

    def max_latency(self) -> int:
        """The maximum edge latency ``ℓ_max`` (0 for an edgeless graph)."""
        latencies = self.distinct_latencies()
        return latencies[-1] if latencies else 0

    # ------------------------------------------------------------------
    # Volumes and cuts (Definitions 1--2 bookkeeping)
    # ------------------------------------------------------------------
    def volume(self, subset: Iterable[Node]) -> int:
        """``Vol(U)``: the number of edge endpoints in ``U`` (sum of degrees).

        This matches the paper's definition ``Vol(U) = |{(u, v) : u in U, v in V}|``.
        """
        return sum(self.degree(u) for u in set(subset))

    def cut_edges(
        self, subset: Iterable[Node], max_latency: Optional[int] = None
    ) -> list[tuple[Node, Node, int]]:
        """Edges crossing the cut ``(U, V \\ U)``, optionally filtered by latency.

        Parameters
        ----------
        subset:
            The node set ``U``.
        max_latency:
            If given, only edges with latency ``<= max_latency`` are returned
            (the paper's ``E_ℓ(U, V \\ U)``).
        """
        inside = set(subset)
        crossing = []
        for u in inside:
            for v, latency in self._adj[u].items():
                if v not in inside and (max_latency is None or latency <= max_latency):
                    crossing.append((u, v, latency))
        return crossing

    # ------------------------------------------------------------------
    # Latency-filtered subgraphs
    # ------------------------------------------------------------------
    def subgraph_leq(self, max_latency: int) -> "LatencyGraph":
        """The subgraph ``G_ℓ`` keeping all nodes and only edges of latency ``<= ℓ``."""
        sub = LatencyGraph(nodes=self.nodes())
        for u, v, latency in self.edges():
            if latency <= max_latency:
                sub.add_edge(u, v, latency)
        return sub

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def weighted_distances(self, source: Node) -> dict[Node, int]:
        """Single-source shortest-path distances weighted by latency (Dijkstra).

        Unreachable nodes are absent from the returned mapping.
        """
        self._require_node(source)
        dist: dict[Node, int] = {source: 0}
        counter = 0  # tie-breaker so heap never compares nodes
        heap: list[tuple[int, int, Node]] = [(0, counter, source)]
        while heap:
            d, _, u = heapq.heappop(heap)
            if d > dist.get(u, math.inf):
                continue
            for v, latency in self._adj[u].items():
                nd = d + latency
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    counter += 1
                    heapq.heappush(heap, (nd, counter, v))
        return dist

    def weighted_distance(self, u: Node, v: Node) -> int:
        """Shortest latency-weighted distance between ``u`` and ``v``.

        Raises
        ------
        DisconnectedGraphError
            If ``v`` is unreachable from ``u``.
        """
        dist = self.weighted_distances(u)
        if v not in dist:
            raise DisconnectedGraphError(f"{v!r} is unreachable from {u!r}")
        return dist[v]

    def weighted_eccentricity(self, source: Node) -> int:
        """Max weighted distance from ``source`` to any node (graph must be connected)."""
        dist = self.weighted_distances(source)
        if len(dist) != self.num_nodes:
            raise DisconnectedGraphError("graph is not connected")
        return max(dist.values())

    def weighted_diameter(self, sample_sources: Optional[int] = None, rng=None) -> int:
        """The latency-weighted diameter ``D``.

        Parameters
        ----------
        sample_sources:
            If ``None``, compute exactly with one Dijkstra per node.  If an
            int ``s``, run Dijkstra from ``s`` random sources and return the
            max eccentricity seen — a lower bound on ``D`` that is within 2x
            of the truth (and exact on vertex-transitive graphs), cheap
            enough for benchmark sweeps.
        rng:
            ``random.Random`` used to pick sample sources.

        Raises
        ------
        DisconnectedGraphError
            If the graph is not connected.
        """
        nodes = self.nodes()
        if not nodes:
            return 0
        if sample_sources is None or sample_sources >= len(nodes):
            sources = nodes
        else:
            if rng is None:
                raise GraphError("sampled diameter requires an rng")
            sources = rng.sample(nodes, sample_sources)
        return max(self.weighted_eccentricity(s) for s in sources)

    def hop_distances(self, source: Node) -> dict[Node, int]:
        """Single-source hop (unweighted) distances via BFS."""
        self._require_node(source)
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def hop_diameter(self) -> int:
        """The hop (unweighted) diameter; exact BFS from every node."""
        nodes = self.nodes()
        if not nodes:
            return 0
        diameter = 0
        for source in nodes:
            dist = self.hop_distances(source)
            if len(dist) != self.num_nodes:
                raise DisconnectedGraphError("graph is not connected")
            diameter = max(diameter, max(dist.values()))
        return diameter

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        nodes = self.nodes()
        if not nodes:
            return True
        return len(self.hop_distances(nodes[0])) == self.num_nodes

    # ------------------------------------------------------------------
    # Conversions and utilities
    # ------------------------------------------------------------------
    def copy(self) -> "LatencyGraph":
        """A deep copy of the graph."""
        clone = LatencyGraph(nodes=self.nodes())
        for u, v, latency in self.edges():
            clone.add_edge(u, v, latency)
        return clone

    def relabeled(self, mapping: dict[Node, Node]) -> "LatencyGraph":
        """Return a copy with node ids replaced via ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping is not injective")
        out = LatencyGraph(nodes=(mapping.get(v, v) for v in self.nodes()))
        for u, v, latency in self.edges():
            out.add_edge(mapping.get(u, u), mapping.get(v, v), latency)
        return out

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with a ``latency`` edge attribute."""
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(self.nodes())
        nxg.add_weighted_edges_from(self.edges(), weight="latency")
        return nxg

    @classmethod
    def from_networkx(cls, nxg, latency_attr: str = "latency", default: int = 1) -> "LatencyGraph":
        """Build from a ``networkx.Graph``; missing latency attributes get ``default``."""
        graph = cls(nodes=nxg.nodes())
        for u, v, data in nxg.edges(data=True):
            graph.add_edge(u, v, int(data.get(latency_attr, default)))
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"LatencyGraph(n={self.num_nodes}, m={self.num_edges})"

    def _require_node(self, node: Node) -> None:
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
