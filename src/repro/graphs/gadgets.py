"""Lower-bound constructions from Section 3 of the paper.

This module builds, as concrete :class:`~repro.graphs.latency_graph.LatencyGraph`
instances:

* the **guessing-game gadgets** ``G(P)`` and ``Gsym(P)`` of Figure 1 — a
  complete bipartite graph between sides ``L`` and ``R`` with a latency-1
  clique on ``L`` (and on ``R`` for the symmetric variant); cross edges in
  the hidden *target set* are fast, all others slow;
* the **Theorem 6** network (a ``G(2Δ, |T| = 1)`` gadget glued to a clique),
  which forces ``Ω(Δ)`` rounds despite ``D = O(1)``;
* the **Theorem 7** network ``G(Random_φ)`` whose conductance is ``Θ(φ)``;
* the **Theorem 8** ring of symmetric gadgets (Figure 2), which exhibits the
  ``min(Δ + D, ℓ/φ_ℓ)`` trade-off.

Targets are plain sets of index pairs ``(i, j)`` with ``i, j in range(m)``,
interpreted as the cross edge between the ``i``-th node of ``L`` and the
``j``-th node of ``R``.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.errors import GraphError
from repro.graphs.latency_graph import LatencyGraph

__all__ = [
    "GadgetNetwork",
    "RingNetwork",
    "singleton_target",
    "random_target",
    "guessing_gadget",
    "theorem6_network",
    "theorem7_network",
    "theorem8_parameters",
    "theorem8_ring",
    "half_ring_cut",
]


@dataclasses.dataclass(frozen=True)
class GadgetNetwork:
    """A built gadget graph plus the metadata experiments need.

    Attributes
    ----------
    graph:
        The constructed network.
    left, right:
        Node lists for the two bipartition sides ``L`` and ``R``.
    target:
        The hidden target set as ``(i, j)`` index pairs into ``left``/``right``.
    fast_latency, slow_latency:
        Latencies assigned to target and non-target cross edges.
    extra:
        Nodes outside the gadget (e.g. the Theorem 6 clique), possibly empty.
    """

    graph: LatencyGraph
    left: list[int]
    right: list[int]
    target: frozenset[tuple[int, int]]
    fast_latency: int
    slow_latency: int
    extra: tuple[int, ...] = ()

    def fast_cross_edges(self) -> list[tuple[int, int]]:
        """The fast cross edges as node pairs ``(left_node, right_node)``."""
        return [(self.left[i], self.right[j]) for i, j in sorted(self.target)]


@dataclasses.dataclass(frozen=True)
class RingNetwork:
    """The Theorem 8 ring of symmetric gadgets (Figure 2).

    Attributes
    ----------
    graph:
        The constructed network.
    layers:
        ``layers[i]`` is the node list of layer ``V_i``.
    fast_edges:
        One fast (latency-1) cross edge per adjacent layer pair, indexed by
        the lower layer index.
    slow_latency:
        The latency ``ℓ`` of all other cross edges.
    alpha:
        The conductance parameter ``α`` this ring realizes (``s / (c n)``).
    """

    graph: LatencyGraph
    layers: list[list[int]]
    fast_edges: dict[int, tuple[int, int]]
    slow_latency: int
    alpha: float

    @property
    def layer_size(self) -> int:
        """Nodes per layer, ``s``."""
        return len(self.layers[0])

    @property
    def num_layers(self) -> int:
        """Number of layers, ``k``."""
        return len(self.layers)


def singleton_target(m: int, rng: random.Random) -> frozenset[tuple[int, int]]:
    """A single target pair chosen uniformly from ``[m] x [m]`` (Lemma 4's predicate)."""
    _check_m(m)
    return frozenset({(rng.randrange(m), rng.randrange(m))})


def random_target(m: int, p: float, rng: random.Random) -> frozenset[tuple[int, int]]:
    """Each of the ``m²`` pairs joins the target independently with probability ``p``.

    This is the paper's ``Random_p`` predicate (Lemma 5 / Theorem 7).
    """
    _check_m(m)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    return frozenset(
        (i, j) for i in range(m) for j in range(m) if rng.random() < p
    )


def guessing_gadget(
    m: int,
    target: frozenset[tuple[int, int]],
    symmetric: bool = False,
    fast_latency: int = 1,
    slow_latency: Optional[int] = None,
) -> GadgetNetwork:
    """Build the gadget ``G(P)`` (or ``Gsym(P)``) of Section 3.2 / Figure 1.

    Parameters
    ----------
    m:
        Size of each bipartition side; the gadget has ``2m`` nodes.
    target:
        The hidden target set of cross-edge index pairs.  Target edges get
        ``fast_latency``; all other cross edges get ``slow_latency``.
    symmetric:
        If ``True`` build ``Gsym(P)`` (latency-1 cliques on both sides),
        otherwise ``G(P)`` (clique on ``L`` only).
    fast_latency:
        Latency of target cross edges (the paper uses 1 or ``ℓ``).
    slow_latency:
        Latency of non-target cross edges; defaults to ``2m`` (the paper's
        ``n``).  Must exceed ``fast_latency``.
    """
    _check_m(m)
    slow = 2 * m if slow_latency is None else slow_latency
    if fast_latency < 1 or slow <= fast_latency:
        raise GraphError(
            f"need 1 <= fast_latency < slow_latency, got {fast_latency}, {slow}"
        )
    for i, j in target:
        if not (0 <= i < m and 0 <= j < m):
            raise GraphError(f"target pair {(i, j)} out of range for m={m}")
    left = list(range(m))
    right = list(range(m, 2 * m))
    graph = LatencyGraph(nodes=left + right)
    for a in range(m):
        for b in range(a + 1, m):
            graph.add_edge(left[a], left[b], 1)
            if symmetric:
                graph.add_edge(right[a], right[b], 1)
    for i in range(m):
        for j in range(m):
            latency = fast_latency if (i, j) in target else slow
            graph.add_edge(left[i], right[j], latency)
    return GadgetNetwork(
        graph=graph,
        left=left,
        right=right,
        target=frozenset(target),
        fast_latency=fast_latency,
        slow_latency=slow,
    )


def theorem6_network(
    n: int,
    delta: int,
    rng: random.Random,
) -> GadgetNetwork:
    """The Theorem 6 network: ``G(2Δ, |T| = 1)`` glued to an ``(n - 2Δ)``-clique.

    The resulting ``n``-node graph has weighted diameter ``O(1)`` w.r.t. its
    fast edges, constant unweighted conductance, and max degree ``Θ(Δ)``, yet
    local broadcast needs ``Ω(Δ)`` rounds because the single fast cross edge
    must be found by guessing.

    Parameters
    ----------
    n:
        Total number of nodes; must satisfy ``n >= 2 * delta``.
    delta:
        The ``Δ`` parameter (half the gadget size).
    rng:
        Source of randomness for the hidden target edge.
    """
    if delta < 1:
        raise GraphError(f"delta must be >= 1, got {delta}")
    if n < 2 * delta:
        raise GraphError(f"need n >= 2*delta, got n={n}, delta={delta}")
    gadget = guessing_gadget(delta, singleton_target(delta, rng), slow_latency=n)
    graph = gadget.graph
    extra = list(range(2 * delta, n))
    for node in extra:
        graph.add_node(node)
    for a_idx in range(len(extra)):
        for b_idx in range(a_idx + 1, len(extra)):
            graph.add_edge(extra[a_idx], extra[b_idx], 1)
    if extra:
        # One latency-1 attachment edge from the clique into the gadget.
        graph.add_edge(extra[0], gadget.left[0], 1)
    return dataclasses.replace(gadget, extra=tuple(extra))


def theorem7_network(
    n: int,
    phi: float,
    ell: int,
    rng: random.Random,
    slow_latency: Optional[int] = None,
) -> GadgetNetwork:
    """The Theorem 7 network ``G(Random_φ)`` on ``2n`` nodes.

    Each cross edge gets latency ``ell`` independently with probability
    ``phi`` (these form the target set) and ``slow_latency`` (default ``2n``)
    otherwise.  For ``phi = Ω(log n / n)`` the result has weighted diameter
    ``O(ell)`` and weighted conductance ``Θ(phi)`` w.h.p.
    """
    _check_m(n)
    if ell < 1:
        raise GraphError(f"ell must be >= 1, got {ell}")
    target = random_target(n, phi, rng)
    return guessing_gadget(
        n,
        target,
        symmetric=False,
        fast_latency=ell,
        slow_latency=2 * n if slow_latency is None else slow_latency,
    )


def theorem8_parameters(n: int, alpha: float) -> tuple[int, int, float]:
    """Compute the Theorem 8 ring parameters ``(layer_size s, num_layers k, c)``.

    The paper sets ``c = 3/4 + (1/4)·sqrt(9 - 8/(n α))``, layer size
    ``s = c·n·α`` and ``k = 2/(c·α)`` layers so the ring has ``2n`` nodes.
    We round ``s`` and ``k`` to integers (``k`` at least 3 so the ring is a
    ring) which perturbs sizes by at most one node per layer — irrelevant to
    the asymptotics the experiments measure.
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    if not 0 < alpha <= 1:
        raise GraphError(f"alpha must be in (0, 1], got {alpha}")
    discriminant = 9.0 - 8.0 / (n * alpha)
    if discriminant < 0:
        raise GraphError(f"alpha too small for n: n*alpha must be >= 8/9, got {n * alpha}")
    c = 0.75 + 0.25 * math.sqrt(discriminant)
    layer_size = max(2, round(c * n * alpha))
    num_layers = max(3, round(2.0 / (c * alpha)))
    return layer_size, num_layers, c


def theorem8_ring(
    layer_size: int,
    num_layers: int,
    slow_latency: int,
    rng: random.Random,
) -> RingNetwork:
    """Build the Theorem 8 ring of symmetric gadgets (Figure 2) directly.

    ``num_layers`` layers of ``layer_size`` nodes are wired in a ring: each
    layer is a latency-1 clique; each adjacent pair of layers is a complete
    bipartite graph whose cross edges all have latency ``slow_latency``
    except a single uniformly random fast (latency-1) edge — the hidden
    target of that pair's guessing-game gadget.

    Use :func:`theorem8_parameters` to derive ``layer_size``/``num_layers``
    from the paper's ``(n, α)`` parametrization.
    """
    if layer_size < 2:
        raise GraphError(f"layer_size must be >= 2, got {layer_size}")
    if num_layers < 3:
        raise GraphError(f"num_layers must be >= 3, got {num_layers}")
    if slow_latency < 2:
        raise GraphError(f"slow_latency must be >= 2, got {slow_latency}")
    layers = [
        list(range(i * layer_size, (i + 1) * layer_size)) for i in range(num_layers)
    ]
    graph = LatencyGraph(nodes=range(num_layers * layer_size))
    for members in layers:
        for a_idx in range(layer_size):
            for b_idx in range(a_idx + 1, layer_size):
                graph.add_edge(members[a_idx], members[b_idx], 1)
    fast_edges: dict[int, tuple[int, int]] = {}
    for i in range(num_layers):
        a, b = layers[i], layers[(i + 1) % num_layers]
        fast = (rng.choice(a), rng.choice(b))
        fast_edges[i] = fast
        for u in a:
            for v in b:
                graph.add_edge(u, v, 1 if (u, v) == fast else slow_latency)
    # The ring realizes alpha = s / (c n) with 2n = k s; report s*k/2 as n.
    alpha = 2.0 * layer_size / (layer_size * num_layers)
    return RingNetwork(
        graph=graph,
        layers=layers,
        fast_edges=fast_edges,
        slow_latency=slow_latency,
        alpha=alpha,
    )


def half_ring_cut(ring: RingNetwork) -> set[int]:
    """The cut ``C`` of Lemma 9: half the layers, cutting no intra-clique edge.

    Returns the node set of ``⌊k/2⌋`` consecutive layers.  For even ``k``
    this is exactly the paper's half-ring cut with ``φ_ℓ(C) = α``.
    """
    half = ring.num_layers // 2
    nodes: set[int] = set()
    for i in range(half):
        nodes.update(ring.layers[i])
    return nodes


def _check_m(m: int) -> None:
    if m < 1:
        raise GraphError(f"need side size >= 1, got {m}")
