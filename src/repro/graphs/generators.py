"""Standard topology generators with pluggable latency models.

Each generator returns a connected :class:`~repro.graphs.latency_graph.LatencyGraph`
whose nodes are the integers ``0..n-1``.  All randomness flows through an
explicit ``random.Random`` so every construction is reproducible from a seed.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Optional

from repro.errors import GraphError
from repro.graphs.latency_graph import LatencyGraph
from repro.graphs.latency_models import LatencyModel, resolve_model

__all__ = [
    "clique",
    "star",
    "path",
    "cycle",
    "grid",
    "torus",
    "hypercube",
    "binary_tree",
    "complete_bipartite",
    "erdos_renyi",
    "erdos_renyi_fast",
    "random_regular",
    "random_geometric",
    "watts_strogatz",
    "barabasi_albert",
    "dumbbell",
    "ring_of_cliques",
    "two_tier_datacenter",
]


def _assign(graph: LatencyGraph, u: int, v: int, model: LatencyModel, rng: random.Random) -> None:
    graph.add_edge(u, v, model(u, v, rng))


def clique(
    n: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Complete graph ``K_n``."""
    _check_n(n)
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for u, v in itertools.combinations(range(n), 2):
        _assign(graph, u, v, model, rng)
    return graph


def star(
    n: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Star with center ``0`` and ``n - 1`` leaves.

    The paper's footnote 2 uses the star to show push-only flooding needs
    ``Ω(nD)`` time, which makes it a useful worst case for degree effects.
    """
    _check_n(n)
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for leaf in range(1, n):
        _assign(graph, 0, leaf, model, rng)
    return graph


def path(
    n: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Path ``0 - 1 - ... - (n-1)``."""
    _check_n(n)
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for u in range(n - 1):
        _assign(graph, u, u + 1, model, rng)
    return graph


def cycle(
    n: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for u in range(n):
        _assign(graph, u, (u + 1) % n, model, rng)
    return graph


def grid(
    rows: int,
    cols: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """``rows x cols`` 4-neighbor grid; node ``(r, c)`` is ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                _assign(graph, node, node + 1, model, rng)
            if r + 1 < rows:
                _assign(graph, node, node + cols, model, rng)
    return graph


def torus(
    rows: int,
    cols: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """``rows x cols`` grid with wraparound (each node has degree 4).

    Requires ``rows, cols >= 3`` so wraparound edges are distinct.
    """
    if rows < 3 or cols < 3:
        raise GraphError(f"torus needs dimensions >= 3, got {rows}x{cols}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            _assign(graph, node, r * cols + (c + 1) % cols, model, rng)
            _assign(graph, node, ((r + 1) % rows) * cols + c, model, rng)
    return graph


def complete_bipartite(
    left_size: int,
    right_size: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """``K_{a,b}``: left nodes ``0..a-1``, right nodes ``a..a+b-1``."""
    _check_n(left_size)
    _check_n(right_size)
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(left_size + right_size))
    for u in range(left_size):
        for v in range(left_size, left_size + right_size):
            _assign(graph, u, v, model, rng)
    return graph


def hypercube(
    dimension: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` nodes."""
    if dimension < 1:
        raise GraphError(f"hypercube needs dimension >= 1, got {dimension}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    n = 1 << dimension
    graph = LatencyGraph(nodes=range(n))
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                _assign(graph, u, v, model, rng)
    return graph


def binary_tree(
    n: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Complete binary tree on ``n`` nodes (heap indexing, root ``0``)."""
    _check_n(n)
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for child in range(1, n):
        _assign(graph, (child - 1) // 2, child, model, rng)
    return graph


def erdos_renyi(
    n: int,
    p: float,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
    ensure_connected: bool = True,
) -> LatencyGraph:
    """Erdős–Rényi ``G(n, p)``.

    With ``ensure_connected=True`` (default) a random Hamiltonian backbone
    path is added first so the sample is always connected — appropriate for
    dissemination experiments where disconnected graphs are vacuous.
    """
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    if ensure_connected and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            _assign(graph, a, b, model, rng)
    for u, v in itertools.combinations(range(n), 2):
        if not graph.has_edge(u, v) and rng.random() < p:
            _assign(graph, u, v, model, rng)
    return graph


def erdos_renyi_fast(
    n: int,
    p: float,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
    ensure_connected: bool = True,
) -> LatencyGraph:
    """Erdős–Rényi ``G(n, p)`` sampled in ``O(m)`` instead of ``O(n²)``.

    :func:`erdos_renyi` flips a coin per node pair, which is infeasible at
    the ``n = 10^5`` scales the vector-engine benchmarks run at (5·10^9
    pairs).  This sampler draws the edge *count* ``m ~ Binomial(C(n,2), p)``
    and then ``m`` distinct pair indices uniformly from the triangular
    index space, so the work is proportional to the edges that exist.  The
    distribution over graphs is exactly ``G(n, p)``; the *sample* for a
    given seed differs from :func:`erdos_renyi`'s, so the two are not
    drop-in replacements for seeded expectations.

    As in :func:`erdos_renyi`, ``ensure_connected=True`` threads a random
    Hamiltonian backbone path through the nodes first; sampled pairs that
    collide with backbone edges are dropped (matching the slow sampler's
    skip-existing rule).
    """
    import numpy as np

    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    npr = np.random.default_rng(rng.getrandbits(64))
    graph = LatencyGraph(nodes=range(n))
    if ensure_connected and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            _assign(graph, a, b, model, rng)
    total = n * (n - 1) // 2
    if total == 0 or p == 0.0:
        return graph
    m = total if p == 1.0 else int(npr.binomial(total, p))
    if m == 0:
        return graph
    if m == total:
        idx = np.arange(total, dtype=np.int64)
    else:
        # Rejection-free-ish distinct sampling: draw, dedup, top up.
        idx = np.unique(npr.integers(0, total, size=m, dtype=np.int64))
        while idx.size < m:
            extra = npr.integers(0, total, size=m - idx.size, dtype=np.int64)
            idx = np.unique(np.concatenate([idx, extra]))
    # Invert the row-major triangular index exactly: pairs whose smaller
    # endpoint is u occupy [starts[u], starts[u+1]).
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(np.arange(n - 1, 0, -1, dtype=np.int64), out=starts[1:])
    us = np.searchsorted(starts, idx, side="right") - 1
    vs = idx - starts[us] + us + 1
    for u, v in zip(us.tolist(), vs.tolist()):
        if not graph.has_edge(u, v):
            _assign(graph, u, v, model, rng)
    return graph


def random_regular(
    n: int,
    degree: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
    max_attempts: int = 50,
) -> LatencyGraph:
    """Random connected ``degree``-regular graph.

    The regular pairing is sampled via networkx's pairing-with-repair
    algorithm (the plain configuration model rejects almost every pairing
    for degrees above ~4); we retry until the sample is connected, which
    happens almost surely for ``degree >= 3``.  Such graphs are expanders
    with high probability, giving a constant-conductance family.
    """
    import networkx as nx

    _check_n(n)
    if degree < 1 or degree >= n:
        raise GraphError(f"need 1 <= degree < n, got degree={degree}, n={n}")
    if n * degree % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    for _ in range(max_attempts):
        nxg = nx.random_regular_graph(degree, n, seed=rng.randrange(2**63))
        if not nx.is_connected(nxg):
            continue
        graph = LatencyGraph(nodes=range(n))
        for u, v in sorted((min(a, b), max(a, b)) for a, b in nxg.edges()):
            _assign(graph, u, v, model, rng)
        return graph
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes "
        f"after {max_attempts} attempts"
    )


def random_geometric(
    n: int,
    radius: float,
    latency_scale: float = 10.0,
    rng: Optional[random.Random] = None,
    ensure_connected: bool = True,
) -> LatencyGraph:
    """Random geometric graph on the unit square with distance-derived latencies.

    Nodes are placed uniformly at random; nodes within ``radius`` are joined
    and the edge latency is ``max(1, round(latency_scale * distance))``, the
    natural "latency grows with physical distance" model for sensor networks.
    If ``ensure_connected``, isolated components are stitched to their nearest
    neighbor (mirroring how deployments add relay links).
    """
    _check_n(n)
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    rng = rng or random.Random(0)
    positions = {v: (rng.random(), rng.random()) for v in range(n)}
    graph = LatencyGraph(nodes=range(n))

    def dist(u: int, v: int) -> float:
        (x1, y1), (x2, y2) = positions[u], positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def add(u: int, v: int) -> None:
        graph.add_edge(u, v, max(1, round(latency_scale * dist(u, v))))

    for u, v in itertools.combinations(range(n), 2):
        if dist(u, v) <= radius:
            add(u, v)
    if ensure_connected:
        components = _components(graph)
        while len(components) > 1:
            base = components[0]
            best = None
            for other in components[1:]:
                for u in base:
                    for v in other:
                        d = dist(u, v)
                        if best is None or d < best[0]:
                            best = (d, u, v)
            assert best is not None
            add(best[1], best[2])
            components = _components(graph)
    return graph


def watts_strogatz(
    n: int,
    k: int,
    rewire_probability: float,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Watts--Strogatz small-world graph (connected variant).

    Start from a ring lattice where each node connects to its ``k`` nearest
    neighbors (``k`` even), then rewire each edge's far endpoint with
    probability ``rewire_probability`` — avoiding self loops, duplicates,
    and disconnection (an edge whose removal would disconnect is kept).
    Small-world graphs model the "social network" setting of Doerr et al.
    that the related-work section contrasts with.
    """
    _check_n(n)
    if k < 2 or k % 2 != 0 or k >= n:
        raise GraphError(f"need even 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(f"rewire probability must be in [0, 1], got {rewire_probability}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if not graph.has_edge(u, v):
                _assign(graph, u, v, model, rng)
    for u, v, latency in list(graph.edges()):
        if rng.random() < rewire_probability:
            candidates = [
                w for w in range(n) if w != u and not graph.has_edge(u, w)
            ]
            if not candidates:
                continue
            w = rng.choice(candidates)
            graph.remove_edge(u, v)
            if graph.is_connected():
                graph.add_edge(u, w, latency)
            else:
                graph.add_edge(u, v, latency)  # keep: removal disconnects
    if not graph.is_connected():
        raise GraphError("watts_strogatz produced a disconnected graph (bug)")
    return graph


def barabasi_albert(
    n: int,
    attachments: int,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Barabási--Albert preferential attachment (scale-free, connected).

    Starts from a clique on ``attachments + 1`` nodes; each new node
    attaches to ``attachments`` distinct existing nodes chosen with
    probability proportional to degree.  Scale-free graphs have the
    high-degree hubs that make the Ω(Δ) lower bound territory interesting.
    """
    _check_n(n)
    if attachments < 1 or attachments >= n:
        raise GraphError(f"need 1 <= attachments < n, got {attachments}, n={n}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    graph = LatencyGraph(nodes=range(n))
    seed_size = attachments + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            _assign(graph, u, v, model, rng)
    # Endpoint pool: each node appears once per incident edge (degree-
    # proportional sampling by uniform choice from the pool).
    pool: list[int] = []
    for u, v, _ in graph.edges():
        pool.extend((u, v))
    for new in range(seed_size, n):
        targets: set[int] = set()
        while len(targets) < attachments:
            targets.add(rng.choice(pool))
        for target in targets:
            _assign(graph, new, target, model, rng)
            pool.extend((new, target))
    return graph


def dumbbell(
    clique_size: int,
    bridge_length: int = 1,
    bridge_latency: int = 1,
    latency_model: Optional[LatencyModel] = None,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """Two cliques joined by a path of ``bridge_length`` edges with ``bridge_latency``.

    The classic low-conductance topology: conductance is ``Θ(1/clique_size²)``
    through the bridge, making push--pull slow while the spanner route is fast.
    """
    _check_n(clique_size)
    if bridge_length < 1:
        raise GraphError(f"bridge_length must be >= 1, got {bridge_length}")
    rng = rng or random.Random(0)
    model = resolve_model(latency_model)
    left = list(range(clique_size))
    right = list(range(clique_size, 2 * clique_size))
    bridge = list(range(2 * clique_size, 2 * clique_size + bridge_length - 1))
    graph = LatencyGraph(nodes=left + right + bridge)
    for u, v in itertools.combinations(left, 2):
        _assign(graph, u, v, model, rng)
    for u, v in itertools.combinations(right, 2):
        _assign(graph, u, v, model, rng)
    chain = [left[-1]] + bridge + [right[0]]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b, bridge_latency)
    return graph


def ring_of_cliques(
    num_cliques: int,
    clique_size: int,
    intra_latency: int = 1,
    inter_latency: int = 1,
    links_per_pair: int = 1,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """``num_cliques`` cliques arranged in a ring, adjacent cliques linked.

    A simplified cousin of the paper's Theorem 8 ring construction: intra-
    clique edges have latency ``intra_latency`` and each adjacent pair of
    cliques is joined by ``links_per_pair`` random edges of latency
    ``inter_latency``.
    """
    if num_cliques < 3:
        raise GraphError(f"need at least 3 cliques, got {num_cliques}")
    _check_n(clique_size)
    if links_per_pair < 1 or links_per_pair > clique_size * clique_size:
        raise GraphError(f"links_per_pair out of range: {links_per_pair}")
    rng = rng or random.Random(0)
    n = num_cliques * clique_size
    graph = LatencyGraph(nodes=range(n))
    members = [
        list(range(i * clique_size, (i + 1) * clique_size)) for i in range(num_cliques)
    ]
    for group in members:
        for u, v in itertools.combinations(group, 2):
            graph.add_edge(u, v, intra_latency)
    for i in range(num_cliques):
        a, b = members[i], members[(i + 1) % num_cliques]
        chosen: set[tuple[int, int]] = set()
        while len(chosen) < links_per_pair:
            chosen.add((rng.choice(a), rng.choice(b)))
        for u, v in chosen:
            graph.add_edge(u, v, inter_latency)
    return graph


def two_tier_datacenter(
    num_racks: int,
    rack_size: int,
    intra_rack_latency: int = 1,
    inter_rack_latency: int = 10,
    rng: Optional[random.Random] = None,
) -> LatencyGraph:
    """A two-tier "datacenter": full cliques inside racks, complete fast/slow core.

    Every pair of servers in one rack is connected with latency
    ``intra_rack_latency``; every pair of rack *leaders* (node 0 of the rack)
    is connected with latency ``inter_rack_latency``.  This is the classic
    replication topology used in the examples.
    """
    if num_racks < 2:
        raise GraphError(f"need at least 2 racks, got {num_racks}")
    _check_n(rack_size)
    graph = LatencyGraph(nodes=range(num_racks * rack_size))
    leaders = []
    for r in range(num_racks):
        members = list(range(r * rack_size, (r + 1) * rack_size))
        leaders.append(members[0])
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v, intra_rack_latency)
    for u, v in itertools.combinations(leaders, 2):
        graph.add_edge(u, v, inter_rack_latency)
    return graph


def _components(graph: LatencyGraph) -> list[list[int]]:
    remaining = set(graph.nodes())
    components = []
    while remaining:
        start = next(iter(remaining))
        seen = set(graph.hop_distances(start))
        components.append(sorted(seen))
        remaining -= seen
    return components


def _check_n(n: int) -> None:
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
