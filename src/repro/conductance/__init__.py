"""Weighted conductance machinery (Definitions 1-2 and Eq. 3 of the paper)."""

from repro.conductance.edge_induced import StronglyEdgeInducedGraph
from repro.conductance.exact import (
    DEFAULT_EXACT_LIMIT,
    cut_conductance,
    exact_conductance_profile,
)
from repro.conductance.sweep import sweep_conductance, sweep_conductance_profile
from repro.conductance.weighted import (
    WeightedConductance,
    conductance_profile,
    weighted_conductance,
)

__all__ = [
    "DEFAULT_EXACT_LIMIT",
    "StronglyEdgeInducedGraph",
    "WeightedConductance",
    "conductance_profile",
    "cut_conductance",
    "exact_conductance_profile",
    "sweep_conductance",
    "sweep_conductance_profile",
    "weighted_conductance",
]
