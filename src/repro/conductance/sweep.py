"""Spectral sweep-cut approximation of weight-ℓ conductance.

For graphs too large for exact cut enumeration we approximate ``φ_ℓ(G)`` the
standard way: take the second eigenvector of the normalized Laplacian of the
*strongly edge-induced* graph ``G_ℓ`` (edges of latency ``<= ℓ`` plus
self-loops that preserve full-graph degrees, Eq. 3 of the paper), order
vertices by their eigenvector coordinate, and sweep prefixes.  By Cheeger's
inequality the best sweep cut ``φ̂`` satisfies ``φ_ℓ <= φ̂ <= 2 sqrt(φ_ℓ)``
— in particular it is always a valid *upper bound* witnessed by a concrete
cut, which is what the experiments need.

A handful of extra candidate cuts (random bisections, BFS balls, degree
prefixes) are thrown in for robustness on graphs where the spectral ordering
is degenerate (e.g. disconnected ``G_ℓ``).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConductanceError
from repro.graphs.latency_graph import LatencyGraph, Node

__all__ = ["sweep_conductance", "sweep_conductance_profile"]

_DENSE_EIG_LIMIT = 1200


def _fiedler_order(graph: LatencyGraph, max_latency: int) -> list[Node]:
    """Vertices ordered by the second eigenvector of the lazy-walk Laplacian of G_ℓ."""
    nodes = graph.nodes()
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}
    degrees = np.array([max(graph.degree(node), 1) for node in nodes], dtype=float)
    inv_sqrt = 1.0 / np.sqrt(degrees)

    rows, cols, vals = [], [], []
    loop_mass = degrees.copy()  # self-loop multiplicity |E_u| - |E_{u,ℓ}|
    for u, v, latency in graph.edges():
        if latency <= max_latency:
            ui, vi = index[u], index[v]
            rows.extend((ui, vi))
            cols.extend((vi, ui))
            vals.extend((1.0, 1.0))
            loop_mass[ui] -= 1.0
            loop_mass[vi] -= 1.0

    if n <= _DENSE_EIG_LIMIT:
        adjacency = np.zeros((n, n))
        for r, c, value in zip(rows, cols, vals):
            adjacency[r, c] += value
        adjacency[np.arange(n), np.arange(n)] += loop_mass
        normalized = inv_sqrt[:, None] * adjacency * inv_sqrt[None, :]
        _, eigenvectors = np.linalg.eigh(normalized)
        # Second-largest eigenvalue of the normalized adjacency == second
        # smallest of the normalized Laplacian.
        fiedler = eigenvectors[:, -2]
    else:
        from scipy.sparse import coo_matrix
        from scipy.sparse.linalg import eigsh

        diag_rows = list(range(n))
        all_rows = rows + diag_rows
        all_cols = cols + diag_rows
        all_vals = vals + list(loop_mass)
        adjacency = coo_matrix((all_vals, (all_rows, all_cols)), shape=(n, n)).tocsr()
        scale = coo_matrix((inv_sqrt, (diag_rows, diag_rows)), shape=(n, n)).tocsr()
        normalized = scale @ adjacency @ scale
        _, eigenvectors = eigsh(normalized, k=2, which="LA")
        fiedler = eigenvectors[:, 0]

    embedding = inv_sqrt * fiedler
    order = np.argsort(embedding, kind="stable")
    return [nodes[i] for i in order]


def _evaluate_prefixes(
    graph: LatencyGraph, order: Sequence[Node], max_latency: int
) -> float:
    """Best φ_ℓ over all prefixes of ``order`` (incremental cut maintenance)."""
    index = {node: i for i, node in enumerate(order)}
    total_volume = sum(graph.degree(node) for node in order)
    inside: set[Node] = set()
    vol_in = 0
    crossing = 0
    best = float("inf")
    for position, node in enumerate(order[:-1]):
        inside.add(node)
        vol_in += graph.degree(node)
        for neighbor, latency in graph.neighbor_latencies(node).items():
            if latency > max_latency:
                continue
            crossing += -1 if neighbor in inside else 1
        denom = min(vol_in, total_volume - vol_in)
        if denom > 0:
            best = min(best, crossing / denom)
    return best


def _candidate_orders(
    graph: LatencyGraph, max_latency: int, rng: random.Random, extra_candidates: int
) -> list[list[Node]]:
    orders = [_fiedler_order(graph, max_latency)]
    nodes = graph.nodes()
    # BFS-ball orderings capture "community" cuts the spectrum can miss.
    for _ in range(max(0, extra_candidates)):
        start = rng.choice(nodes)
        dist = graph.subgraph_leq(max_latency).hop_distances(start)
        reached = sorted(dist, key=lambda v: (dist[v], repr(v)))
        rest = [v for v in nodes if v not in dist]
        orders.append(reached + rest)
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        orders.append(shuffled)
    return orders


def sweep_conductance(
    graph: LatencyGraph,
    max_latency: int,
    rng: Optional[random.Random] = None,
    extra_candidates: int = 3,
) -> float:
    """Approximate ``φ_ℓ(G)`` for ``ℓ = max_latency`` (upper bound via real cuts).

    Parameters
    ----------
    graph:
        Graph with at least 2 nodes.
    max_latency:
        The latency threshold ``ℓ``.
    rng:
        Randomness for the extra candidate cuts (defaults to a fixed seed,
        so the function is deterministic unless told otherwise).
    extra_candidates:
        Number of BFS-ball/random orderings swept in addition to the
        spectral one.
    """
    if graph.num_nodes < 2:
        raise ConductanceError(f"conductance needs n >= 2, got {graph.num_nodes}")
    rng = rng or random.Random(0)
    best = float("inf")
    for order in _candidate_orders(graph, max_latency, rng, extra_candidates):
        best = min(best, _evaluate_prefixes(graph, order, max_latency))
    return 0.0 if best == float("inf") else max(best, 0.0)


def sweep_conductance_profile(
    graph: LatencyGraph,
    latencies: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    extra_candidates: int = 3,
) -> dict[int, float]:
    """Approximate ``{ℓ: φ_ℓ(G)}`` for each threshold via sweep cuts."""
    thresholds = sorted(set(latencies)) if latencies is not None else graph.distinct_latencies()
    if not thresholds:
        raise ConductanceError("no latency thresholds to evaluate (edgeless graph?)")
    rng = rng or random.Random(0)
    return {
        ell: sweep_conductance(graph, ell, rng=rng, extra_candidates=extra_candidates)
        for ell in thresholds
    }
