"""Spectral sweep-cut approximation of weight-ℓ conductance, vectorized.

For graphs too large for exact cut enumeration we approximate ``φ_ℓ(G)`` the
standard way: take the second eigenvector of the normalized Laplacian of the
*strongly edge-induced* graph ``G_ℓ`` (edges of latency ``<= ℓ`` plus
self-loops that preserve full-graph degrees, Eq. 3 of the paper), order
vertices by their eigenvector coordinate, and sweep prefixes.  By Cheeger's
inequality the best sweep cut ``φ̂`` satisfies ``φ_ℓ <= φ̂ <= 2 sqrt(φ_ℓ)``
— in particular it is always a valid *upper bound* witnessed by a concrete
cut, which is what the experiments need.  :func:`sweep_conductance_cut`
returns that witness, so oracle tests can re-score it with
:func:`repro.conductance.exact.cut_conductance` and demand exact agreement.

A handful of extra candidate cuts (random bisections, BFS balls) are thrown
in for robustness on graphs where the spectral ordering is degenerate
(e.g. disconnected ``G_ℓ``).

Data layout (see ``docs/PERFORMANCE.md``)
-----------------------------------------
Everything runs on dense node ids.  A :class:`_SweepContext` is built once
per graph and shared by every threshold of a profile:

* the edge arrays from :meth:`LatencyGraph.edge_arrays`, stably sorted by
  latency — because ``G_ℓ`` only ever *gains* edges as ``ℓ`` grows, the
  fast-edge set of any threshold is a prefix of the sorted arrays, found by
  one ``searchsorted`` instead of re-filtering all edges per threshold;
* the full-graph degree vector (Definition 1 volumes) and its
  ``D^{-1/2}`` scaling;
* for the sparse eigensolver path, one shared Fiedler embedding of the
  full graph (``ℓ = ℓ_max``) used as the warm-start vector for every
  threshold's solve — deterministic and independent of *which* thresholds
  a caller requests, so a profile restricted to a subset of thresholds
  reproduces the full profile's values exactly.

Prefix evaluation is a prefix-sum computation, not a per-node loop: an
edge with order positions ``a < b`` crosses exactly the prefixes of length
``a < t <= b``, so the per-prefix crossing counts are the cumulative sum of
a ``bincount`` difference array, and volumes are a cumulative sum of the
degree vector — all numpy, no Python per-node work.

Degree conventions (zero-degree vertices)
-----------------------------------------
Volumes always use raw full-graph degrees, exactly as Definition 1
prescribes (an isolated vertex contributes zero volume, and prefixes whose
smaller side has zero volume are skipped).  The spectral normalization maps
zero-degree vertices to embedding coordinate ``0`` instead of the previous
``max(degree, 1)`` patch — an isolated vertex carries no edges and no
volume, so its position in the sweep order cannot change any ``φ`` value,
and keeping it off the unit diagonal stops it from polluting the top of the
spectrum with spurious eigenvalue-1 indicator vectors.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConductanceError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.profile import span

__all__ = [
    "SweepCut",
    "sweep_conductance",
    "sweep_conductance_cut",
    "sweep_conductance_profile",
]

_DENSE_EIG_LIMIT = 1200


@dataclasses.dataclass(frozen=True)
class SweepCut:
    """A sweep result with its witnessing cut.

    Attributes
    ----------
    value:
        The best ``φ_ℓ`` over all candidate prefixes (an upper bound on
        the true ``φ_ℓ`` realized by ``cut``).
    cut:
        The witnessing subset ``U`` (node objects).  Empty iff no prefix
        had positive volume on both sides (degenerate graphs, e.g. no
        edges at all), in which case ``value`` is 0.
    """

    value: float
    cut: frozenset


class _ThresholdView:
    """The fast-edge arrays and (lazy) adjacency of one threshold ``ℓ``."""

    def __init__(self, ctx: "_SweepContext", max_latency: int) -> None:
        self.ctx = ctx
        # Monotonicity: edges are sorted by latency, so G_ℓ's edge set is
        # the prefix of length searchsorted(ℓ).
        count = int(np.searchsorted(ctx.sorted_latencies, max_latency, side="right"))
        self.fast_u = ctx.sorted_u[:count]
        self.fast_v = ctx.sorted_v[:count]
        self.fast_degrees = np.bincount(
            np.concatenate((self.fast_u, self.fast_v)), minlength=ctx.n
        )
        self._csr: Optional[tuple[np.ndarray, np.ndarray]] = None

    def adjacency_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style ``(indptr, neighbors)`` of G_ℓ, built once per threshold.

        Shared by every BFS-ball candidate at this threshold instead of
        rebuilding a ``subgraph_leq`` graph object per candidate.
        """
        if self._csr is None:
            n = self.ctx.n
            heads = np.concatenate((self.fast_u, self.fast_v))
            tails = np.concatenate((self.fast_v, self.fast_u))
            order = np.argsort(heads, kind="stable")
            neighbors = tails[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(heads, minlength=n), out=indptr[1:])
            self._csr = (indptr, neighbors)
        return self._csr

    def bfs_order(self, start: int) -> np.ndarray:
        """Level-order BFS ball order from ``start`` (within-level by id),
        followed by the unreached vertices in id order."""
        indptr, neighbors = self.adjacency_csr()
        n = self.ctx.n
        seen = np.zeros(n, dtype=bool)
        seen[start] = True
        chunks = [np.array([start], dtype=np.int64)]
        frontier = chunks[0]
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Ragged gather of every frontier node's neighbor slice.
            offsets = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            reached = neighbors[np.arange(total, dtype=np.int64) + offsets]
            frontier = np.unique(reached[~seen[reached]])
            if frontier.size == 0:
                break
            seen[frontier] = True
            chunks.append(frontier)
        rest = np.nonzero(~seen)[0]
        if rest.size:
            chunks.append(rest)
        return np.concatenate(chunks)


class _SweepContext:
    """Per-graph arrays shared across thresholds and candidate orders."""

    def __init__(self, graph: LatencyGraph) -> None:
        if graph.num_nodes < 2:
            raise ConductanceError(
                f"conductance needs n >= 2, got {graph.num_nodes}"
            )
        self.graph = graph
        self.n = graph.num_nodes
        us, vs, lats = graph.edge_arrays()
        order = np.argsort(lats, kind="stable")
        self.sorted_u = us[order]
        self.sorted_v = vs[order]
        self.sorted_latencies = lats[order]
        neighbors, _ = graph.adjacency_arrays()
        self.degrees = np.array([len(row) for row in neighbors], dtype=np.int64)
        self.total_volume = int(self.degrees.sum())
        # D^{-1/2} with the zero-degree convention documented above.
        self.inv_sqrt = np.zeros(self.n)
        positive = self.degrees > 0
        self.inv_sqrt[positive] = 1.0 / np.sqrt(self.degrees[positive])
        self._warm_start: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Spectral ordering
    # ------------------------------------------------------------------
    def _normalized_adjacency_dense(self, view: _ThresholdView) -> np.ndarray:
        n = self.n
        adjacency = np.zeros((n, n))
        np.add.at(adjacency, (view.fast_u, view.fast_v), 1.0)
        np.add.at(adjacency, (view.fast_v, view.fast_u), 1.0)
        loop_mass = (self.degrees - view.fast_degrees).astype(float)
        adjacency[np.arange(n), np.arange(n)] += loop_mass
        return self.inv_sqrt[:, None] * adjacency * self.inv_sqrt[None, :]

    def _fiedler_sparse(self, view: _ThresholdView) -> np.ndarray:
        from scipy.sparse import coo_matrix
        from scipy.sparse.linalg import eigsh

        n = self.n
        diag = np.arange(n)
        loop_mass = (self.degrees - view.fast_degrees).astype(float)
        rows = np.concatenate((view.fast_u, view.fast_v, diag))
        cols = np.concatenate((view.fast_v, view.fast_u, diag))
        vals = np.concatenate(
            (np.ones(view.fast_u.size), np.ones(view.fast_u.size), loop_mass)
        )
        # Fold D^{-1/2} into the entries instead of two sparse matmuls.
        vals = vals * self.inv_sqrt[rows] * self.inv_sqrt[cols]
        normalized = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        # The sweep only consumes the eigenvector *ordering*; 1e-8 is far
        # below any gap that could reorder coordinates meaningfully and
        # saves ARPACK iterations on near-degenerate spectra (disconnected
        # G_ℓ has eigenvalue 1 with multiplicity = #components).
        _, eigenvectors = eigsh(normalized, k=2, which="LA", v0=self._v0(), tol=1e-8)
        # k=2, which="LA": eigenvalues ascending, so column 0 is the
        # second-largest of the normalized adjacency == second smallest of
        # the normalized Laplacian.
        return eigenvectors[:, 0]

    def _v0(self) -> np.ndarray:
        """The shared warm-start vector for every sparse eigensolve.

        The Fiedler vector of the *full* graph (``ℓ = ℓ_max``), computed
        once per context from a fixed deterministic seed vector.  Using
        the same warm start for every threshold keeps each solve
        deterministic and independent of which other thresholds were
        requested, while still exploiting that adjacent ``G_ℓ`` differ by
        a few added edges (the full-graph embedding is close to all of
        them).
        """
        if self._warm_start is None:
            seed_vec = np.random.RandomState(0).standard_normal(self.n)
            self._warm_start = seed_vec
            full = _ThresholdView(self, int(self.sorted_latencies[-1]))
            self._warm_start = self._fiedler_sparse(full)
        return self._warm_start

    def fiedler_order(self, view: _ThresholdView) -> np.ndarray:
        if self.n <= _DENSE_EIG_LIMIT:
            normalized = self._normalized_adjacency_dense(view)
            _, eigenvectors = np.linalg.eigh(normalized)
            fiedler = eigenvectors[:, -2]
        else:
            fiedler = self._fiedler_sparse(view)
        embedding = self.inv_sqrt * fiedler
        return np.argsort(embedding, kind="stable")

    # ------------------------------------------------------------------
    # Prefix evaluation (vectorized cut maintenance)
    # ------------------------------------------------------------------
    def evaluate_order(
        self, order: np.ndarray, view: _ThresholdView
    ) -> tuple[float, int]:
        """Best ``φ_ℓ`` over all proper prefixes of ``order``.

        Returns ``(value, prefix_end)`` where the witnessing cut is
        ``order[: prefix_end + 1]``, or ``(inf, -1)`` if no prefix has
        positive volume on both sides.
        """
        n = self.n
        positions = np.empty(n, dtype=np.int64)
        positions[order] = np.arange(n)
        pu = positions[view.fast_u]
        pv = positions[view.fast_v]
        lo = np.minimum(pu, pv)
        hi = np.maximum(pu, pv)
        # Edge (a=lo, b=hi) crosses prefixes of length a < t <= b, i.e. it
        # is counted at prefix-end positions p with a <= p < b.
        delta = np.bincount(lo, minlength=n) - np.bincount(hi, minlength=n)
        crossing = np.cumsum(delta)[: n - 1]
        volumes = np.cumsum(self.degrees[order])[: n - 1]
        denominators = np.minimum(volumes, self.total_volume - volumes)
        valid = denominators > 0
        if not valid.any():
            return float("inf"), -1
        ratios = crossing[valid] / denominators[valid]
        best = int(np.argmin(ratios))
        return float(ratios[best]), int(np.nonzero(valid)[0][best])

    def candidate_orders(
        self, view: _ThresholdView, rng: random.Random, extra_candidates: int
    ) -> list[np.ndarray]:
        orders = [self.fiedler_order(view)]
        # BFS-ball orderings capture "community" cuts the spectrum can miss.
        # Random orders come from a numpy generator seeded off the caller's
        # rng — same determinism contract, ~100x cheaper than shuffling a
        # Python list at n=2000.
        for _ in range(max(0, extra_candidates)):
            orders.append(view.bfs_order(rng.randrange(self.n)))
            permuter = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
            orders.append(permuter.permutation(self.n).astype(np.int64))
        return orders

    def best_cut(
        self, max_latency: int, rng: random.Random, extra_candidates: int
    ) -> SweepCut:
        view = _ThresholdView(self, max_latency)
        best_value = float("inf")
        best_order: Optional[np.ndarray] = None
        best_end = -1
        for order in self.candidate_orders(view, rng, extra_candidates):
            value, end = self.evaluate_order(order, view)
            if value < best_value:
                best_value, best_order, best_end = value, order, end
        if best_order is None or best_end < 0:
            return SweepCut(value=0.0, cut=frozenset())
        node_at = self.graph.node_at
        witness = frozenset(node_at(int(i)) for i in best_order[: best_end + 1])
        return SweepCut(value=max(best_value, 0.0), cut=witness)


def sweep_conductance_cut(
    graph: LatencyGraph,
    max_latency: int,
    rng: Optional[random.Random] = None,
    extra_candidates: int = 3,
) -> SweepCut:
    """Like :func:`sweep_conductance` but also returns the witnessing cut."""
    with span("conductance.sweep"):
        context = _SweepContext(graph)
        return context.best_cut(max_latency, rng or random.Random(0), extra_candidates)


def sweep_conductance(
    graph: LatencyGraph,
    max_latency: int,
    rng: Optional[random.Random] = None,
    extra_candidates: int = 3,
) -> float:
    """Approximate ``φ_ℓ(G)`` for ``ℓ = max_latency`` (upper bound via real cuts).

    Parameters
    ----------
    graph:
        Graph with at least 2 nodes.
    max_latency:
        The latency threshold ``ℓ``.
    rng:
        Randomness for the extra candidate cuts (defaults to a fixed seed,
        so the function is deterministic unless told otherwise).
    extra_candidates:
        Number of BFS-ball/random orderings swept in addition to the
        spectral one.
    """
    return sweep_conductance_cut(
        graph, max_latency, rng=rng, extra_candidates=extra_candidates
    ).value


def sweep_conductance_profile(
    graph: LatencyGraph,
    latencies: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    extra_candidates: int = 3,
) -> dict[int, float]:
    """Approximate ``{ℓ: φ_ℓ(G)}`` for each threshold via sweep cuts.

    The per-graph arrays, the threshold edge prefixes, and (on the sparse
    eigensolver path) the warm-start embedding are computed once and
    shared across thresholds.  Each threshold draws its candidate cuts
    from its *own* RNG, derived from a stable base seed — so ``φ_ℓ`` for
    a given ``ℓ`` never depends on which other thresholds were requested,
    and a profile restricted to a subset of thresholds reproduces the
    full profile's values exactly.  A caller-supplied ``rng`` contributes
    exactly one draw (the base seed), keeping that property.
    """
    with span("conductance.profile"):
        context = _SweepContext(graph)
        if latencies is not None:
            thresholds = sorted(set(latencies))
        else:
            thresholds = [int(ell) for ell in np.unique(context.sorted_latencies)]
        if not thresholds:
            raise ConductanceError(
                "no latency thresholds to evaluate (edgeless graph?)"
            )
        base_seed = rng.randrange(2**32) if rng is not None else 0
        return {
            ell: context.best_cut(
                ell, random.Random(f"sweep:{base_seed}:{ell}"), extra_candidates
            ).value
            for ell in thresholds
        }
