"""Weighted conductance ``φ*`` and critical latency ``ℓ*`` (Definition 2).

Given the conductance profile ``Φ(G) = {φ_1, ..., φ_{ℓmax}}``, the paper
defines the weighted conductance as the ``φ_ℓ`` maximizing ``φ_ℓ / ℓ`` and
calls the maximizing ``ℓ`` the *critical latency* ``ℓ*``.  The quantity that
bounds dissemination time is the ratio ``ℓ*/φ*``.

Two facts make the computation finite:

* ``φ_ℓ`` is a step function of ``ℓ`` that only changes at latencies present
  in the graph (adding no edges cannot change any cut), and
* on an interval where ``φ_ℓ`` is constant, ``φ_ℓ / ℓ`` is maximized at the
  left endpoint — which is a latency present in the graph.

So it suffices to evaluate ``φ_ℓ`` at the distinct latencies of ``G``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence

from repro.conductance.exact import DEFAULT_EXACT_LIMIT, exact_conductance_profile
from repro.conductance.sweep import sweep_conductance_profile
from repro.errors import ConductanceError
from repro.graphs.latency_graph import LatencyGraph

__all__ = ["WeightedConductance", "conductance_profile", "weighted_conductance"]


@dataclasses.dataclass(frozen=True)
class WeightedConductance:
    """The result of a weighted-conductance computation.

    Attributes
    ----------
    phi_star:
        The weighted conductance ``φ*`` (a conductance value, not a ratio).
    critical_latency:
        The critical latency ``ℓ*`` realizing ``φ* = φ_{ℓ*}``.
    profile:
        The full profile ``{ℓ: φ_ℓ}`` over the distinct latencies evaluated.
    method:
        ``"exact"`` or ``"sweep"``.
    """

    phi_star: float
    critical_latency: int
    profile: dict[int, float]
    method: str

    @property
    def dissemination_bound(self) -> float:
        """The paper's connectivity term ``ℓ*/φ*`` (``inf`` if ``φ* = 0``)."""
        if self.phi_star == 0:
            return float("inf")
        return self.critical_latency / self.phi_star


def conductance_profile(
    graph: LatencyGraph,
    method: str = "auto",
    latencies: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> dict[int, float]:
    """The profile ``{ℓ: φ_ℓ(G)}`` over the distinct latencies of ``G``.

    Parameters
    ----------
    graph:
        A graph with at least one edge.
    method:
        ``"exact"`` (cut enumeration, small ``n`` only), ``"sweep"``
        (spectral approximation), or ``"auto"`` (exact when
        ``n <= exact_limit``, sweep otherwise).
    latencies:
        Optional explicit thresholds; defaults to the distinct latencies.
    rng:
        Randomness for the sweep's extra candidate cuts.
    exact_limit:
        The ``n`` cutoff used by ``"auto"``.
    """
    if method not in ("auto", "exact", "sweep"):
        raise ConductanceError(f"unknown method {method!r}")
    if method == "auto":
        method = "exact" if graph.num_nodes <= exact_limit else "sweep"
    if method == "exact":
        return exact_conductance_profile(graph, latencies=latencies, node_limit=max(
            exact_limit, graph.num_nodes))
    return sweep_conductance_profile(graph, latencies=latencies, rng=rng)


def weighted_conductance(
    graph: LatencyGraph,
    method: str = "auto",
    rng: Optional[random.Random] = None,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> WeightedConductance:
    """Compute ``φ*(G)`` and the critical latency ``ℓ*`` (Definition 2).

    Ties in ``φ_ℓ / ℓ`` are broken toward the smaller latency, which gives
    the smaller (hence stronger) ``ℓ*/φ*`` bound.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> result = weighted_conductance(generators.clique(6))
    >>> result.critical_latency
    1
    """
    resolved = "exact" if method == "auto" and graph.num_nodes <= exact_limit else (
        "sweep" if method == "auto" else method
    )
    profile = conductance_profile(
        graph, method=resolved, rng=rng, exact_limit=exact_limit
    )
    best_ell = None
    best_ratio = -1.0
    for ell in sorted(profile):
        ratio = profile[ell] / ell
        if ratio > best_ratio:
            best_ratio = ratio
            best_ell = ell
    if best_ell is None:
        raise ConductanceError("empty conductance profile")
    return WeightedConductance(
        phi_star=profile[best_ell],
        critical_latency=best_ell,
        profile=dict(profile),
        method=resolved,
    )
