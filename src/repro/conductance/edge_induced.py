"""The strongly edge-induced graph ``G_ℓ`` of Theorem 12 (Eq. 3 / Eq. 10).

Given ``G`` and a latency threshold ``ℓ``, the strongly edge-induced graph
``G_ℓ`` keeps the vertex set of ``G`` and has edge multiplicities

    µ(u, v) = 1                      if (u, v) ∈ E_ℓ
    µ(u, u) = |E_u| - |E_{u,ℓ}|      (self loops preserving full-graph degree)
    µ(u, v) = 0                      otherwise.

Its (unweighted, multigraph) conductance equals ``φ_ℓ(G)`` — the identity the
push--pull upper-bound proof rests on — and a push--pull step in ``G_ℓ``
picks each neighbor with exactly the probability the latency-restricted walk
in ``G`` does.  This module materializes ``G_ℓ`` so tests can check that
identity numerically and so the Markov-domination argument can be simulated.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ConductanceError
from repro.graphs.latency_graph import LatencyGraph, Node

__all__ = ["StronglyEdgeInducedGraph"]


class StronglyEdgeInducedGraph:
    """Materialized ``G_ℓ`` with the multiplicity function of Eq. 3.

    Parameters
    ----------
    graph:
        The underlying latency graph ``G``.
    max_latency:
        The threshold ``ℓ``.
    """

    def __init__(self, graph: LatencyGraph, max_latency: int) -> None:
        if max_latency < 1:
            raise ConductanceError(f"max_latency must be >= 1, got {max_latency}")
        self._graph = graph
        self._max_latency = max_latency
        self._real_neighbors: dict[Node, list[Node]] = {}
        self._loops: dict[Node, int] = {}
        for node in graph.nodes():
            fast = [
                neighbor
                for neighbor, latency in graph.neighbor_latencies(node).items()
                if latency <= max_latency
            ]
            self._real_neighbors[node] = fast
            self._loops[node] = graph.degree(node) - len(fast)

    @property
    def max_latency(self) -> int:
        """The threshold ``ℓ`` used to build this graph."""
        return self._max_latency

    def multiplicity(self, u: Node, v: Node) -> int:
        """The multiplicity ``µ(u, v)`` of Eq. 3."""
        if u == v:
            return self._loops.get(u, 0)
        if self._graph.has_edge(u, v) and self._graph.latency(u, v) <= self._max_latency:
            return 1
        return 0

    def degree(self, node: Node) -> int:
        """Multigraph degree (real fast edges plus self-loop multiplicity).

        By construction this equals the node's degree in the full graph
        ``G``, which is exactly why ``φ(G_ℓ) = φ_ℓ(G)``.
        """
        return len(self._real_neighbors[node]) + self._loops[node]

    def sample_contact(self, node: Node, rng: random.Random) -> Optional[Node]:
        """One push--pull contact draw in ``G_ℓ``.

        Returns a fast neighbor with probability ``|E_{u,ℓ}| / |E_u|`` and
        ``None`` (a self loop, i.e. a wasted round) otherwise — the exact
        distribution the domination argument of Theorem 12 compares against.
        """
        degree = self.degree(node)
        if degree == 0:
            return None
        pick = rng.randrange(degree)
        fast = self._real_neighbors[node]
        return fast[pick] if pick < len(fast) else None

    def volume(self, subset: Sequence[Node]) -> int:
        """Multigraph volume of ``U`` (self loops counted with multiplicity)."""
        return sum(self.degree(node) for node in set(subset))

    def conductance(self, subset: Sequence[Node]) -> float:
        """Multigraph cut conductance of ``U`` in ``G_ℓ``.

        Self loops never cross a cut, so the numerator counts only the real
        fast edges across ``(U, V \\ U)`` — hence this equals ``φ_ℓ(U)`` in
        ``G`` (Definition 1).
        """
        inside = set(subset)
        all_nodes = set(self._graph.nodes())
        if not inside or inside == all_nodes:
            raise ConductanceError("cut must be a proper nonempty subset of V")
        denom = min(self.volume(inside), self.volume(all_nodes - inside))
        if denom == 0:
            raise ConductanceError("cut has zero volume on one side")
        crossing = sum(
            1
            for node in inside
            for neighbor in self._real_neighbors[node]
            if neighbor not in inside
        )
        return crossing / denom
