"""Closed-form conductance values for the library's canonical topologies.

For the graph families with known extremal cuts, the weight-ℓ conductance
has a short closed form; these serve as independent ground truth for the
exact enumerator and the sweep approximation (the cross-checks live in the
test suite), and let experiments use exact ``φ*`` values on instances far
beyond the enumeration limit.

All formulas assume the *generator defaults* of :mod:`repro.graphs`
(e.g. a clique has all ``n(n-1)/2`` edges; a dumbbell has two equal
cliques and a unit bridge path).
"""

from __future__ import annotations

import math

from repro.errors import ConductanceError

__all__ = [
    "clique_conductance",
    "star_conductance",
    "path_conductance",
    "cycle_conductance",
    "dumbbell_conductance",
    "ring_of_cliques_conductance",
    "theorem8_ring_conductance",
]


def clique_conductance(n: int) -> float:
    """``φ(K_n)``: the half split minimizes — ``⌈n/2⌉·⌊n/2⌋ / (⌊n/2⌋·(n-1))``.

    For unit latencies this is also ``φ*`` with ``ℓ* = 1``.
    """
    _check(n, 2)
    small = n // 2
    large = n - small
    return small * large / (small * (n - 1))


def star_conductance(n: int) -> float:
    """``φ(S_n)`` (center + ``n-1`` leaves): any leaf set ``U`` has φ = 1.

    Every cut either isolates leaves (crossing = |U| = Vol(U)) or separates
    the center with ``k`` leaves from the rest (crossing = n-1-k, smaller
    volume side also n-1-k), so the conductance is exactly 1.
    """
    _check(n, 2)
    return 1.0


def path_conductance(n: int) -> float:
    """``φ(P_n)``: the middle cut — ``1 / (2·⌊n/2⌋ - 1)``.

    Splitting at the midpoint gives one crossing edge over the smaller
    volume ``2·⌊n/2⌋ - 1`` (the half with ⌊n/2⌋ nodes has that many edge
    endpoints).
    """
    _check(n, 2)
    return 1.0 / (2 * (n // 2) - 1)


def cycle_conductance(n: int) -> float:
    """``φ(C_n)``: a half arc — ``2 / (2·⌊n/2⌋) = 1/⌊n/2⌋``."""
    _check(n, 3)
    return 2.0 / (2 * (n // 2))


def dumbbell_conductance(clique_size: int, bridge_length: int = 1) -> float:
    """``φ`` of two ``s``-cliques joined by a ``bridge_length``-edge path.

    The extremal cut slices the bridge at its midpoint: one crossing edge
    over the smaller side's volume ``s(s-1) + 1 + 2·⌊(bridge_length-1)/2⌋``
    (the clique's internal endpoints, its boundary node's bridge endpoint,
    and two endpoints per bridge node kept on this side).
    """
    _check(clique_size, 2)
    if bridge_length < 1:
        raise ConductanceError(f"bridge_length must be >= 1, got {bridge_length}")
    s = clique_size
    return 1.0 / (s * (s - 1) + 1 + 2 * ((bridge_length - 1) // 2))


def ring_of_cliques_conductance(
    num_cliques: int, clique_size: int, links_per_pair: int = 1
) -> float:
    """``φ_ℓmax`` of a ring of ``k`` ``s``-cliques with ``c`` links per pair.

    The extremal cut takes ``⌊k/2⌋`` consecutive cliques: ``2c`` crossing
    links over a volume of ``⌊k/2⌋·(s(s-1) + 2c)`` edge endpoints (each
    clique contributes its internal endpoints plus its share of inter-
    clique endpoints; boundary asymmetries shift this by O(c), which we
    ignore — the formula is exact when the cut's cliques carry exactly
    ``2c`` external endpoints each, i.e. for the generator's layout).
    """
    if num_cliques < 3:
        raise ConductanceError(f"need >= 3 cliques, got {num_cliques}")
    _check(clique_size, 2)
    if links_per_pair < 1:
        raise ConductanceError(f"links_per_pair must be >= 1, got {links_per_pair}")
    k, s, c = num_cliques, clique_size, links_per_pair
    half = k // 2
    volume = half * (s * (s - 1) + 2 * c)
    return 2 * c / volume


def theorem8_ring_conductance(layer_size: int, num_layers: int) -> float:
    """``φ_ℓ`` of the Theorem 8 ring: the Lemma 9 half cut.

    With ``s``-node layers the graph is ``(3s-1)``-regular (Observation
    23); the half cut crosses ``2s²`` edges over a volume of
    ``⌊k/2⌋·s·(3s-1)``.
    """
    _check(layer_size, 2)
    if num_layers < 3:
        raise ConductanceError(f"need >= 3 layers, got {num_layers}")
    s, k = layer_size, num_layers
    half = k // 2
    return 2 * s * s / (half * s * (3 * s - 1))


def _check(n: int, minimum: int) -> None:
    if n < minimum:
        raise ConductanceError(f"need n >= {minimum}, got {n}")
