"""Exact weighted-conductance computation by cut enumeration.

Definition 1 of the paper: for ``U ⊆ V`` and integer ``ℓ``,

    φ_ℓ(U) = |E_ℓ(U, V \\ U)| / min(Vol(U), Vol(V \\ U))

where ``E_ℓ`` keeps only edges of latency ``<= ℓ`` and ``Vol`` counts edge
endpoints **in the full graph** ``G`` (not in ``G_ℓ``).  The weight-ℓ
conductance is the minimum over all cuts.

The enumeration is exponential (``2^{n-1} - 1`` cuts) and therefore gated to
small graphs; it exists to ground-truth the sweep approximation and the
lower-bound gadget audits, where ``n`` is small by design.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConductanceError
from repro.graphs.latency_graph import LatencyGraph, Node

__all__ = ["cut_conductance", "exact_conductance_profile", "DEFAULT_EXACT_LIMIT"]

DEFAULT_EXACT_LIMIT = 18
"""Largest ``n`` for which exact enumeration is attempted by default."""


def cut_conductance(
    graph: LatencyGraph, subset: Sequence[Node], max_latency: Optional[int] = None
) -> float:
    """``φ_ℓ(U)`` for one cut ``U`` (``ℓ = max_latency``; ``None`` means all edges).

    Raises
    ------
    ConductanceError
        If ``U`` is empty, the whole vertex set, or has zero volume on the
        smaller side (the ratio would be undefined).
    """
    inside = set(subset)
    all_nodes = set(graph.nodes())
    if not inside or inside == all_nodes:
        raise ConductanceError("cut must be a proper nonempty subset of V")
    if not inside <= all_nodes:
        raise ConductanceError("cut contains nodes outside the graph")
    vol_in = graph.volume(inside)
    vol_out = graph.volume(all_nodes - inside)
    denom = min(vol_in, vol_out)
    if denom == 0:
        raise ConductanceError("cut has zero volume on one side")
    crossing = len(graph.cut_edges(inside, max_latency=max_latency))
    return crossing / denom


def exact_conductance_profile(
    graph: LatencyGraph,
    latencies: Optional[Sequence[int]] = None,
    node_limit: int = DEFAULT_EXACT_LIMIT,
) -> dict[int, float]:
    """Exact ``{ℓ: φ_ℓ(G)}`` for each requested latency threshold.

    Parameters
    ----------
    graph:
        The graph; must have ``2 <= n <= node_limit`` nodes.
    latencies:
        Thresholds to evaluate.  Defaults to the distinct latencies present
        in the graph (φ_ℓ only changes at those values).
    node_limit:
        Safety cap on ``n``; enumeration is ``O(2^n · m)``.

    Notes
    -----
    A single pass over all cuts evaluates every threshold simultaneously:
    for each cut we bucket crossing edges by latency and update all running
    minima, so the cost is ``O(2^n (m + t))`` rather than ``O(t · 2^n · m)``.
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n < 2:
        raise ConductanceError(f"conductance needs n >= 2, got {n}")
    if n > node_limit:
        raise ConductanceError(
            f"exact enumeration limited to n <= {node_limit}, got {n}; "
            "use the sweep approximation instead"
        )
    thresholds = sorted(set(latencies)) if latencies is not None else graph.distinct_latencies()
    if not thresholds:
        raise ConductanceError("no latency thresholds to evaluate (edgeless graph?)")

    from bisect import bisect_left

    index = {node: i for i, node in enumerate(nodes)}
    degrees = [graph.degree(node) for node in nodes]
    total_volume = sum(degrees)
    num_thresholds = len(thresholds)
    # Each edge contributes to every threshold >= its latency; remember the
    # first such threshold index (or num_thresholds if none).
    edges = [
        (index[u], index[v], bisect_left(thresholds, latency))
        for u, v, latency in graph.edges()
    ]

    best = [float("inf")] * num_thresholds
    # Fix node 0 to one side so each cut is enumerated exactly once: the
    # subset always contains node 0 and never all of V (mask all-ones would
    # be the full vertex set, which is not a cut).
    for mask in range(0, (1 << (n - 1)) - 1):
        subset_mask = mask << 1 | 1
        vol_in = sum(degrees[i] for i in range(n) if subset_mask >> i & 1)
        denom = min(vol_in, total_volume - vol_in)
        if denom == 0:
            continue
        counts = [0] * (num_thresholds + 1)
        for ui, vi, tidx in edges:
            if (subset_mask >> ui & 1) != (subset_mask >> vi & 1):
                counts[tidx] += 1
        crossing = 0
        for tidx in range(num_thresholds):
            crossing += counts[tidx]
            value = crossing / denom
            if value < best[tidx]:
                best[tidx] = value
    return {
        ell: (0.0 if best[tidx] == float("inf") else best[tidx])
        for tidx, ell in enumerate(thresholds)
    }
