"""Efficient Information Dissemination — EID, Termination Check, General EID.

This module implements the known-latency algorithms of Section 5:

* :func:`run_eid` — **EID(D)** (Algorithm 3): ``O(log n)`` repetitions of
  D-DTG to gather multi-hop neighborhoods, a Baswana--Sen directed spanner
  built from that information, and an RR Broadcast over the spanner.  Total
  time ``O(D log³ n)`` (Lemma 17).
* :func:`run_termination_check` — **Termination Check(k)** (Algorithm 1):
  each node publishes a fingerprint of its rumor set and an error flag
  (set when some neighbor's rumor is missing); a broadcast round spreads
  them; any mismatch or raised flag fails the check, and a second broadcast
  spreads the failure so *all* nodes reach the same verdict (Lemma 18).
* :func:`run_general_eid` — **General EID** (Algorithm 4): guess-and-double
  on the unknown diameter, running EID(k) + Termination Check(k) for
  ``k = 1, 2, 4, ...`` until the check passes.  Total time ``O(D log³ n)``
  by the geometric sum (Theorem 19).

The per-node *decisions* of the spanner construction are executed centrally
(zero charged rounds) exactly as the paper charges them — "all computations
are done locally" after the DTG phases paid for neighborhood discovery.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Optional

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.recorder import Recorder
from repro.obs.telemetry import PhaseTiming
from repro.sim.state import NetworkState
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.rr_broadcast import rr_broadcast_factory
from repro.protocols.spanner import DirectedSpanner, baswana_sen_spanner

__all__ = [
    "EIDReport",
    "TerminationCheckReport",
    "GeneralEIDReport",
    "run_eid",
    "run_termination_check",
    "run_general_eid",
]


@dataclasses.dataclass(frozen=True)
class EIDReport:
    """Outcome of one EID(k) execution.

    Attributes
    ----------
    rounds:
        Rounds charged for this execution (DTG phases + RR broadcast).
    exchanges:
        Exchanges initiated.
    spanner:
        The directed spanner built for this execution.
    diameter_estimate:
        The ``k`` this execution ran with.
    phases:
        Per-phase round/exchange/wall-clock timings
        (:class:`~repro.obs.telemetry.PhaseTiming`), in execution order.
        Wall clock is environment noise, so the field is excluded from
        equality.
    """

    rounds: int
    exchanges: int
    spanner: DirectedSpanner
    diameter_estimate: int
    phases: tuple[PhaseTiming, ...] = dataclasses.field(default=(), compare=False)


@dataclasses.dataclass(frozen=True)
class TerminationCheckReport:
    """Outcome of one Termination Check(k).

    Attributes
    ----------
    verdicts:
        ``{node: passed}`` — each node's local verdict.
    passed:
        Whether every node passed.
    unanimous:
        Whether all verdicts agree (Lemma 18 says they must).
    rounds:
        Rounds charged for the check's two broadcasts.
    """

    verdicts: dict[Node, bool]
    passed: bool
    unanimous: bool
    rounds: int


@dataclasses.dataclass(frozen=True)
class GeneralEIDReport:
    """Outcome of a General EID run (unknown diameter).

    Attributes
    ----------
    rounds:
        Total rounds over all guess-and-double iterations.
    exchanges:
        Total exchanges.
    final_estimate:
        The diameter estimate ``k`` at which the check passed.
    iterations:
        Number of guess-and-double iterations executed.
    first_complete_round:
        Cumulative round at which all-to-all dissemination actually held
        (before the protocol could *know* it held).
    phases:
        Per-phase timings across every guess-and-double iteration
        (``compare=False`` — wall clock is environment noise).
    """

    rounds: int
    exchanges: int
    final_estimate: int
    iterations: int
    first_complete_round: Optional[int]
    phases: tuple[PhaseTiming, ...] = dataclasses.field(default=(), compare=False)


def _node_rumor_fingerprint(state: NetworkState, node: Node, universe: set) -> int:
    """Order-independent fingerprint of the node-id rumors ``node`` knows."""
    relevant = frozenset(r for r in state.rumors(node) if r in universe)
    return hash(relevant)


def spanner_iterations(n_hat: int) -> int:
    """The paper's ``k = log n̂`` Baswana--Sen iteration count (at least 2)."""
    return max(2, math.ceil(math.log2(max(2, n_hat))))


def _eid_phases(
    runner: PhaseRunner,
    graph: LatencyGraph,
    diameter_estimate: int,
    n_hat: int,
    rng: random.Random,
    tag: str,
    max_rounds: int,
) -> tuple[DirectedSpanner, int]:
    """Run EID(k)'s phases on ``runner``; returns (spanner, exchanges_before)."""
    k = diameter_estimate
    repetitions = spanner_iterations(n_hat)
    for repetition in range(repetitions):
        runner.run_phase(
            ldtg_factory(graph, k, run_tag=f"{tag}:dtg{repetition}"),
            latencies_known=True,
            max_rounds=max_rounds,
            name=f"EID({k}) {k}-DTG #{repetition}",
        )
    # Spanner on G_k: the local computation is free, per the paper.
    subgraph = graph.subgraph_leq(k)
    spanner = baswana_sen_spanner(subgraph, spanner_iterations(n_hat), rng, n_hat=n_hat)
    stretch_bound = 2 * spanner.k - 1
    rr_parameter = k * stretch_bound
    runner.run_phase(
        rr_broadcast_factory(spanner, rr_parameter),
        latencies_known=True,
        max_rounds=max_rounds,
        name=f"EID({k}) RR Broadcast",
    )
    return spanner, rr_parameter


def run_eid(
    graph: LatencyGraph,
    diameter: int,
    seed: int = 0,
    n_hat: Optional[int] = None,
    state: Optional[NetworkState] = None,
    runner: Optional[PhaseRunner] = None,
    max_rounds: int = 5_000_000,
    engine_factory=None,
    recorder: Optional[Recorder] = None,
    backend: Optional[str] = None,
) -> EIDReport:
    """Run EID(D) — Algorithm 3 — for a known diameter (estimate).

    Parameters
    ----------
    graph:
        The network; latencies are known to nodes in this model.
    diameter:
        The (estimated) weighted diameter ``D``.
    seed:
        Randomness for the spanner's cluster sampling.
    n_hat:
        Polynomial upper bound on ``n`` known to nodes (defaults to ``n``).
    state, runner:
        Optional shared knowledge / phase runner for composition.
    engine_factory:
        Engine constructor for the phases (ignored when ``runner`` is
        given); see :class:`~repro.protocols.base.PhaseRunner`.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder` for the phases'
        engines (ignored when ``runner`` is given — pass it to the runner
        instead).
    backend:
        Engine backend name for the phases (ignored when ``runner`` or
        ``engine_factory`` is given); under ``"vector"`` the ℓ-DTG
        measurement phases fall back to the scalar engine while the
        RR Broadcast phases ride the array fast path.
    """
    if diameter < 1:
        raise ProtocolError(f"diameter must be >= 1, got {diameter}")
    if runner is None:
        runner = PhaseRunner(
            graph,
            state=state,
            engine_factory=engine_factory,
            recorder=recorder,
            backend=backend,
        )
    n_hat = n_hat if n_hat is not None else graph.num_nodes
    rounds_before = runner.total_rounds
    exchanges_before = runner.total_exchanges
    phases_before = len(runner.phases)
    spanner, _ = _eid_phases(
        runner,
        graph,
        diameter,
        n_hat,
        random.Random(seed),
        tag=f"eid:{seed}:{diameter}",
        max_rounds=max_rounds,
    )
    return EIDReport(
        rounds=runner.total_rounds - rounds_before,
        exchanges=runner.total_exchanges - exchanges_before,
        spanner=spanner,
        diameter_estimate=diameter,
        phases=tuple(runner.phases[phases_before:]),
    )


def run_termination_check(
    runner: PhaseRunner,
    graph: LatencyGraph,
    k: int,
    broadcast_phase: Callable[[str], None],
    iteration_tag: str,
) -> TerminationCheckReport:
    """Run Termination Check(k) — Algorithm 1 — over ``runner``'s state.

    Parameters
    ----------
    runner:
        The phase runner whose state holds current rumor sets.
    graph:
        The network.
    k:
        The current distance estimate.
    broadcast_phase:
        Callable running one broadcast over the runner's state (RR Broadcast
        for General EID, the ``T(k)`` sequence for Path Discovery); called
        twice — once to spread fingerprints/flags, once to spread failures.
    iteration_tag:
        Unique tag distinguishing this check's notes from earlier ones.
    """
    state = runner.state
    nodes = graph.nodes()
    universe = set(nodes)
    rounds_before = runner.total_rounds

    # Step 1-3: compute flags and publish (fingerprint, flag).
    fingerprints: dict[Node, int] = {}
    for node in nodes:
        known = state.rumors(node)
        flag = any(neighbor not in known for neighbor in graph.neighbors(node))
        fingerprints[node] = _node_rumor_fingerprint(state, node, universe)
        state.publish_note(
            node, check=iteration_tag, fingerprint=fingerprints[node], flag=flag
        )

    # Step 4: broadcast and gather within the k-neighborhood.
    broadcast_phase(f"{iteration_tag}:gather")

    # Step 5-6: each node inspects every note it saw for this check.
    failed: dict[Node, bool] = {}
    for node in nodes:
        own = _node_rumor_fingerprint(state, node, universe)
        node_failed = False
        for origin in state.known_note_origins(node):
            note = state.note_of(node, origin)
            if note is None or note.get("check") != iteration_tag:
                continue
            if note.get("flag") or note.get("fingerprint") != own:
                node_failed = True
                break
        failed[node] = node_failed

    # Step 7-9: broadcast "failed" so everyone agrees.
    for node in nodes:
        state.publish_note(
            node,
            check=f"{iteration_tag}:status",
            failed=failed[node],
        )
    broadcast_phase(f"{iteration_tag}:spread-status")
    verdicts: dict[Node, bool] = {}
    for node in nodes:
        saw_failure = failed[node]
        for origin in state.known_note_origins(node):
            note = state.note_of(node, origin)
            if note is None or note.get("check") != f"{iteration_tag}:status":
                continue
            if note.get("failed"):
                saw_failure = True
                break
        verdicts[node] = not saw_failure

    values = set(verdicts.values())
    return TerminationCheckReport(
        verdicts=verdicts,
        passed=values == {True},
        unanimous=len(values) == 1,
        rounds=runner.total_rounds - rounds_before,
    )


def run_general_eid(
    graph: LatencyGraph,
    seed: int = 0,
    n_hat: Optional[int] = None,
    max_rounds: int = 5_000_000,
    require_unanimous: bool = True,
    engine_factory=None,
    recorder: Optional[Recorder] = None,
    backend: Optional[str] = None,
) -> GeneralEIDReport:
    """Run General EID — Algorithm 4 — with an unknown diameter (Theorem 19).

    Starts with diameter estimate ``k = 1``; runs EID(k) then Termination
    Check(k); doubles ``k`` on failure.  Also validates Lemma 18: all nodes
    must reach the same verdict each iteration.

    Raises
    ------
    ProtocolError
        If ``require_unanimous`` and a check produced disagreeing verdicts.
    SimulationError
        If ``k`` exceeds every possible diameter (protocol bug guard).
    """
    nodes = graph.nodes()
    universe = set(nodes)
    n_hat = n_hat if n_hat is not None else graph.num_nodes
    rng = random.Random(seed)

    def all_to_all_done(state: NetworkState) -> bool:
        # O(n) bitset check on states that support it (all vector layouts
        # and NetworkState do); the per-node set comparison is the
        # fallback for exotic state substitutes.
        knows_every = getattr(state, "knows_every", None)
        if knows_every is not None:
            return knows_every(nodes, universe)
        return all(universe <= state.rumors(node) for node in nodes)

    runner = PhaseRunner(
        graph,
        watch=all_to_all_done,
        engine_factory=engine_factory,
        recorder=recorder,
        backend=backend,
    )
    # Hard cap: the diameter is at most (n - 1) * ℓ_max.
    absolute_cap = 4 * max(1, (graph.num_nodes - 1) * max(1, graph.max_latency()))
    k = 1
    iterations = 0
    while True:
        iterations += 1
        tag = f"geid:{seed}:{k}"
        spanner, rr_parameter = _eid_phases(
            runner, graph, k, n_hat, rng, tag=tag, max_rounds=max_rounds
        )

        def broadcast(phase_tag: str) -> None:
            runner.run_phase(
                rr_broadcast_factory(spanner, rr_parameter),
                latencies_known=True,
                max_rounds=max_rounds,
                name=f"check broadcast {phase_tag}",
            )

        check = run_termination_check(runner, graph, k, broadcast, iteration_tag=tag)
        if require_unanimous and not check.unanimous:
            raise ProtocolError(
                f"termination check verdicts disagree at k={k} "
                "(violates Lemma 18)"
            )
        if check.passed:
            break
        k *= 2
        if k > absolute_cap:
            raise SimulationError(
                f"General EID estimate k={k} exceeded the diameter cap "
                f"{absolute_cap} without passing the termination check"
            )
    return GeneralEIDReport(
        rounds=runner.total_rounds,
        exchanges=runner.total_exchanges,
        final_estimate=k,
        iterations=iterations,
        first_complete_round=runner.first_complete_round,
        phases=tuple(runner.phases),
    )
