"""The ``T(k)`` schedule and Path Discovery algorithm (Appendix E).

The alternative all-to-all algorithm needs no global knowledge (not even a
polynomial bound on ``n``).  It invokes ℓ-DTG with latencies following the
recursively defined pattern

    T(1) = 1-DTG
    T(k) = T(k/2) · k-DTG · T(k/2)

i.e. the ruler sequence ``1, 2, 1, 4, 1, 2, 1, 8, ...``.  Lemma 24 shows by
induction that after executing ``T(k)`` every pair of nodes at weighted
distance ``<= k`` has exchanged rumors; Lemma 25 gives the total time
``O(k log² n log k)``.

:func:`run_path_discovery` wraps ``T(k)`` in the same guess-and-double +
Termination Check loop as General EID (Algorithm 6), using another ``T(k)``
as the check's broadcast primitive, for total time ``O(D log² n log D)``
(Lemma 26).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph
from repro.obs.recorder import Recorder
from repro.obs.telemetry import PhaseTiming
from repro.sim.state import NetworkState
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.eid import run_termination_check

__all__ = ["t_sequence", "run_t_sequence", "PathDiscoveryReport", "run_path_discovery"]


def t_sequence(k: int) -> list[int]:
    """The ℓ-parameters of ``T(k)``: ``T(k) = T(k/2) · k · T(k/2)``.

    ``k`` must be a power of two.  The length is ``2^{log k + 1} - 1``.
    """
    if k < 1 or k & (k - 1) != 0:
        raise ProtocolError(f"T(k) requires k to be a positive power of two, got {k}")
    if k == 1:
        return [1]
    half = t_sequence(k // 2)
    return half + [k] + half


def run_t_sequence(
    runner: PhaseRunner,
    graph: LatencyGraph,
    k: int,
    tag: str,
    max_rounds: int = 5_000_000,
) -> int:
    """Execute the ``T(k)`` schedule of ℓ-DTG phases; returns rounds charged."""
    rounds_before = runner.total_rounds
    for step, ell in enumerate(t_sequence(k)):
        runner.run_phase(
            ldtg_factory(graph, ell, run_tag=f"{tag}:step{step}:ell{ell}"),
            latencies_known=True,
            max_rounds=max_rounds,
            name=f"T({k}) step {step}: {ell}-DTG",
        )
    return runner.total_rounds - rounds_before


@dataclasses.dataclass(frozen=True)
class PathDiscoveryReport:
    """Outcome of a Path Discovery run.

    Attributes mirror :class:`~repro.protocols.eid.GeneralEIDReport`,
    including the ``compare=False`` per-phase timings.
    """

    rounds: int
    exchanges: int
    final_estimate: int
    iterations: int
    first_complete_round: Optional[int]
    phases: tuple[PhaseTiming, ...] = dataclasses.field(default=(), compare=False)


def run_path_discovery(
    graph: LatencyGraph,
    max_rounds: int = 5_000_000,
    require_unanimous: bool = True,
    engine_factory=None,
    recorder: Optional[Recorder] = None,
    backend: Optional[str] = None,
) -> PathDiscoveryReport:
    """Run Path Discovery — Algorithm 6 — solving all-to-all dissemination.

    No knowledge of ``n`` or ``D`` is required; the ``T(k)`` schedule is
    repeated with doubling ``k`` until the Termination Check passes.
    """
    nodes = graph.nodes()
    universe = set(nodes)

    def all_to_all_done(state: NetworkState) -> bool:
        knows_every = getattr(state, "knows_every", None)
        if knows_every is not None:
            return knows_every(nodes, universe)
        return all(universe <= state.rumors(node) for node in nodes)

    runner = PhaseRunner(
        graph,
        watch=all_to_all_done,
        engine_factory=engine_factory,
        recorder=recorder,
        backend=backend,
    )
    absolute_cap = 4 * max(1, (graph.num_nodes - 1) * max(1, graph.max_latency()))
    k = 1
    iterations = 0
    while True:
        iterations += 1
        tag = f"pathdisc:{k}"
        run_t_sequence(runner, graph, k, tag=tag, max_rounds=max_rounds)

        def broadcast(phase_tag: str) -> None:
            run_t_sequence(
                runner, graph, k, tag=f"{tag}:{phase_tag}", max_rounds=max_rounds
            )

        check = run_termination_check(runner, graph, k, broadcast, iteration_tag=tag)
        if require_unanimous and not check.unanimous:
            raise ProtocolError(
                f"termination check verdicts disagree at k={k} (violates Lemma 18)"
            )
        if check.passed:
            break
        k *= 2
        if k > absolute_cap:
            raise SimulationError(
                f"Path Discovery estimate k={k} exceeded the diameter cap "
                f"{absolute_cap} without passing the termination check"
            )
    return PathDiscoveryReport(
        rounds=runner.total_rounds,
        exchanges=runner.total_exchanges,
        final_estimate=k,
        iterations=iterations,
        first_complete_round=runner.first_complete_round,
        phases=tuple(runner.phases),
    )
