"""Latency discovery for the unknown-latency model (Section 4.2).

When nodes do not know their adjacent latencies, they can *measure* them:
"for Δ rounds, each node broadcasts a request to each neighbor
(sequentially) and then waits up to D rounds for a response".  An exchange
initiated in round ``t`` that delivers in round ``t'`` reveals the edge
latency ``t' - t``; edges that never respond within the window have latency
``> D`` and are useless anyway (Section 5.1 discards them).

:func:`run_latency_discovery` executes this as a real protocol phase and
returns the per-node measured latency tables, ready to feed the known-
latency algorithms (via ``ldtg_factory(..., measured=...)``).  With unknown
``Δ``/``D``, :func:`run_general_eid_unknown_latencies` wraps the whole
pipeline in the usual guess-and-double loop, realizing the
``O((D + Δ) log³ n)`` branch of Theorem 20.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Iterator, Optional

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import NodeContext
from repro.sim.programs import Command, ProgramProtocol, contact, wait
from repro.sim.state import NetworkState
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.eid import (
    run_termination_check,
    spanner_iterations,
)
from repro.protocols.rr_broadcast import rr_broadcast_factory
from repro.protocols.spanner import baswana_sen_spanner

__all__ = [
    "LatencyDiscoveryProtocol",
    "run_latency_discovery",
    "UnknownLatencyReport",
    "run_general_eid_unknown_latencies",
]


class LatencyDiscoveryProtocol(ProgramProtocol):
    """Probe every neighbor once, then wait out the response window.

    Parameters
    ----------
    wait_rounds:
        How long to wait after the last probe (the ``D`` estimate); edges
        whose response has not arrived by then are treated as slower than
        the window.

    Probes are request/ack pings (``sends_payload = False``): they measure
    latency without disseminating rumors, so discovery over slow edges
    cannot shortcut the dissemination the termination check later audits.
    """

    sends_payload = False

    def __init__(self, wait_rounds: int) -> None:
        super().__init__()
        if wait_rounds < 1:
            raise ProtocolError(f"wait_rounds must be >= 1, got {wait_rounds}")
        self._wait_rounds = wait_rounds

    def program(self, ctx: NodeContext) -> Iterator[Command]:
        for neighbor in sorted(ctx.neighbors(), key=repr):
            yield contact(neighbor)
        yield wait(self._wait_rounds)


def run_latency_discovery(
    graph: LatencyGraph,
    window: int,
    state: Optional[NetworkState] = None,
    runner: Optional[PhaseRunner] = None,
) -> dict[Node, dict[Node, int]]:
    """Measure adjacent latencies at every node (Section 4.2).

    Runs one discovery phase (``Δ`` probe rounds + ``window`` wait rounds,
    charged to the shared ``runner`` if given) and returns
    ``{node: {neighbor: measured latency}}`` containing exactly the edges
    whose latency is at most ``window`` (up to in-flight stragglers, which
    are also included — knowing *more* latencies never hurts).
    """
    if runner is None:
        runner = PhaseRunner(graph, state=state)
    engine = runner.run_phase(
        lambda node: LatencyDiscoveryProtocol(window),
        latencies_known=False,
        name=f"latency discovery (window={window})",
    )
    measured: dict[Node, dict[Node, int]] = {}
    for node in graph.nodes():
        protocol = engine.protocol(node)
        assert isinstance(protocol, LatencyDiscoveryProtocol)
        measured[node] = dict(protocol.measured_latencies)
    return measured


@dataclasses.dataclass(frozen=True)
class UnknownLatencyReport:
    """Outcome of the discover-then-EID pipeline with unknown latencies."""

    rounds: int
    exchanges: int
    final_estimate: int
    iterations: int
    first_complete_round: Optional[int]


def run_general_eid_unknown_latencies(
    graph: LatencyGraph,
    seed: int = 0,
    n_hat: Optional[int] = None,
    max_rounds: int = 5_000_000,
    engine_factory=None,
) -> UnknownLatencyReport:
    """Guess-and-double EID where latencies must first be measured.

    Each iteration with estimate ``k``: (1) probe all neighbors and wait
    ``k`` rounds, measuring every adjacent latency ``<= k``; (2) run the
    EID(k) phases using only *measured* fast edges; (3) Termination
    Check(k).  Realizes the ``O((D + Δ) log³ n)`` bound of Section 4.2 /
    Theorem 20 without ever reading the latency oracle.
    """
    nodes = graph.nodes()
    universe = set(nodes)
    n_hat = n_hat if n_hat is not None else graph.num_nodes
    rng = random.Random(seed)

    def all_to_all_done(state: NetworkState) -> bool:
        return all(universe <= state.rumors(node) for node in nodes)

    runner = PhaseRunner(graph, watch=all_to_all_done, engine_factory=engine_factory)
    absolute_cap = 4 * max(1, (graph.num_nodes - 1) * max(1, graph.max_latency()))
    k = 1
    iterations = 0
    while True:
        iterations += 1
        tag = f"ueid:{seed}:{k}"
        measured = run_latency_discovery(graph, window=k, runner=runner)
        repetitions = spanner_iterations(n_hat)
        for repetition in range(repetitions):
            runner.run_phase(
                ldtg_factory(
                    graph, k, measured=measured, run_tag=f"{tag}:dtg{repetition}"
                ),
                latencies_known=False,
                max_rounds=max_rounds,
                name=f"unknown-lat EID({k}) {k}-DTG #{repetition}",
            )
        # Build the spanner from the *measured* fast edges only.
        known_subgraph = LatencyGraph(nodes=nodes)
        for node, table in measured.items():
            for neighbor, latency in table.items():
                if latency <= k and not known_subgraph.has_edge(node, neighbor):
                    known_subgraph.add_edge(node, neighbor, latency)
        spanner = baswana_sen_spanner(
            known_subgraph, spanner_iterations(n_hat), rng, n_hat=n_hat
        )
        rr_parameter = k * (2 * spanner.k - 1)

        def broadcast(phase_tag: str) -> None:
            runner.run_phase(
                rr_broadcast_factory(spanner, rr_parameter),
                latencies_known=False,
                max_rounds=max_rounds,
                name=f"unknown-lat check broadcast {phase_tag}",
            )

        broadcast("main")
        check = run_termination_check(runner, graph, k, broadcast, iteration_tag=tag)
        if check.passed:
            break
        k *= 2
        if k > absolute_cap:
            raise SimulationError(
                f"unknown-latency EID estimate k={k} exceeded the diameter cap "
                f"{absolute_cap} without passing the termination check"
            )
    return UnknownLatencyReport(
        rounds=runner.total_rounds,
        exchanges=runner.total_exchanges,
        final_estimate=k,
        iterations=iterations,
        first_complete_round=runner.first_complete_round,
    )
