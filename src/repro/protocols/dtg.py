"""The ℓ-DTG local broadcast protocol (Algorithm 5 / Appendix C).

Haeupler's Deterministic Tree Gossip solves *local broadcast* — every node
exchanges rumors with all of its neighbors — in ``O(log² n)`` rounds on
unweighted graphs.  The paper adapts it to latency graphs as **ℓ-DTG**:
ignore all edges of latency greater than ``ℓ`` and charge every DTG step a
uniform wait of ``ℓ`` rounds, so one DTG round is simulated as ``ℓ`` network
rounds and the total time becomes ``O(ℓ log² n)``.

Per iteration ``i`` an active node links one new ℓ-neighbor it has not heard
from yet and then performs the PUSH / PULL / PULL / PUSH sequences of
Algorithm 5 over its ``i`` linked neighbors (4·i exchanges of ``ℓ`` rounds
each).  All active nodes are always in the same iteration — each has linked
exactly one neighbor per iteration since round 0 — which preserves the
lockstep the binomial *i-tree* analysis needs.  A node goes inactive once it
knows the rumor of every ℓ-neighbor; inactive nodes still answer exchanges.

Implementation note: Algorithm 5 pipelines the fresh working sets ``R'`` and
``R''``; we ship the node's full rumor set instead.  The round structure
(who contacts whom, and when) is identical, and shipping supersets can only
make rumor sets grow faster, so the ``O(ℓ log² n)`` bound is preserved while
the code stays close to the engine's one-payload-per-exchange model.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ProtocolError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import NodeContext
from repro.sim.metrics import DisseminationResult
from repro.sim.programs import Command, ProgramProtocol, contact_and_wait
from repro.sim.runner import local_broadcast_complete
from repro.sim.state import NetworkState
from repro.protocols.base import PhaseRunner, per_node_rng_factory

__all__ = ["LDTGProtocol", "ldtg_factory", "run_ldtg"]


class LDTGProtocol(ProgramProtocol):
    """One node's ℓ-DTG program.

    Parameters
    ----------
    max_latency:
        The ``ℓ`` parameter: edges above this latency are ignored and every
        exchange step waits exactly ``ℓ`` rounds.
    fast_neighbors:
        The node's neighbors over edges of latency ``<= ℓ``.  Pass ``None``
        to read them from the engine (requires ``latencies_known=True``);
        pass an explicit list when latencies were *measured* instead
        (Section 4.2's discover-then-run pipeline).
    run_tag:
        Algorithm 5's set ``R`` contains the ids heard from *during this
        run*.  With a ``run_tag`` each node starts the run by seeding the
        token ``(run_tag, node)`` and the loop condition counts only tagged
        tokens — so a repeated invocation performs a full fresh local
        broadcast (relaying whatever global rumors were learned meanwhile)
        instead of terminating immediately.  ``None`` uses plain node ids,
        which is equivalent for a single stand-alone run.
    selection:
        How "link to any new neighbor" picks its neighbor. ``"rotate"``
        (default, deterministic): the id order rotated past the node's own
        id.  ``"random"``: uniform among unheard neighbors — the
        randomized flavor of the Superstep local broadcast the paper cites
        alongside DTG; requires ``rng``.  Both satisfy Algorithm 5's
        "any new neighbor"; the ablation benchmark compares them.
    rng:
        Randomness for ``selection="random"``.
    """

    def __init__(
        self,
        max_latency: int,
        fast_neighbors: Optional[Sequence[Node]] = None,
        run_tag: Optional[str] = None,
        selection: str = "rotate",
        rng=None,
    ) -> None:
        super().__init__()
        if max_latency < 1:
            raise ProtocolError(f"max_latency must be >= 1, got {max_latency}")
        if selection not in ("rotate", "random"):
            raise ProtocolError(f"unknown selection {selection!r}")
        if selection == "random" and rng is None:
            raise ProtocolError("selection='random' requires an rng")
        self._ell = max_latency
        self._fast_neighbors = list(fast_neighbors) if fast_neighbors is not None else None
        self._run_tag = run_tag
        self._selection = selection
        self._rng = rng
        self.iterations_used = 0

    def _token(self, node: Node):
        return node if self._run_tag is None else (self._run_tag, node)

    def setup(self, ctx: NodeContext) -> None:
        # Seed this run's token before round 0 so the very first snapshots
        # taken of this node already carry it.
        ctx.state.add_rumor(ctx.node, self._token(ctx.node))
        super().setup(ctx)

    def program(self, ctx: NodeContext) -> Iterator[Command]:
        ell = self._ell
        if self._fast_neighbors is not None:
            fast = sorted(self._fast_neighbors, key=repr)
        else:
            fast = sorted(
                (v for v, latency in ctx.known_latencies().items() if latency <= ell),
                key=repr,
            )
        # Rotate the deterministic order to start just past this node's own
        # id.  "Link any new neighbor" is arbitrary in Algorithm 5, but if
        # every node picked the globally smallest id they would all funnel
        # through one accidental hub, hiding the binomial-tree dynamics the
        # analysis (and Figure 4) is about.
        own = repr(ctx.node)
        pivot = next((i for i, v in enumerate(fast) if repr(v) > own), 0)
        fast = fast[pivot:] + fast[:pivot]
        linked: list[Node] = []
        while True:
            known = ctx.state.rumors(ctx.node)
            if all(self._token(neighbor) in known for neighbor in fast):
                return
            fresh = [
                v for v in fast if self._token(v) not in known and v not in linked
            ]
            if fresh:
                new = self._rng.choice(fresh) if self._selection == "random" else fresh[0]
            else:
                # Everyone unheard-from is already linked; re-run the
                # sequences over the linked set until their tokens arrive.
                new = next(v for v in fast if self._token(v) not in known)
            if new not in linked:
                linked.append(new)
            self.iterations_used += 1
            i = len(linked)
            # PUSH: j = i downto 1.
            for j in range(i, 0, -1):
                yield contact_and_wait(linked[j - 1], rounds=ell)
            # PULL: j = 1 to i.
            for j in range(1, i + 1):
                yield contact_and_wait(linked[j - 1], rounds=ell)
            # Second PULL then PUSH (symmetry sequence with R'').
            for j in range(1, i + 1):
                yield contact_and_wait(linked[j - 1], rounds=ell)
            for j in range(i, 0, -1):
                yield contact_and_wait(linked[j - 1], rounds=ell)


def ldtg_factory(
    graph: LatencyGraph,
    max_latency: int,
    measured: Optional[dict[Node, dict[Node, int]]] = None,
    run_tag: Optional[str] = None,
    selection: str = "rotate",
    seed: int = 0,
) -> Callable[[Node], LDTGProtocol]:
    """Factory building one :class:`LDTGProtocol` per node.

    Parameters
    ----------
    graph:
        The network (used only to enumerate neighbors when ``measured`` is
        given).
    max_latency:
        The ``ℓ`` parameter.
    measured:
        Optional per-node measured latencies, ``{node: {neighbor: latency}}``
        — when given, each node's fast-neighbor list comes from its own
        measurements rather than from the omniscient graph.
    run_tag:
        Fresh-token tag for repeated invocations (see :class:`LDTGProtocol`).
    selection, seed:
        Neighbor-selection mode; ``"random"`` derives one RNG stream per
        node from ``seed``.
    """
    make_rng = per_node_rng_factory(seed) if selection == "random" else None

    def make(node: Node) -> LDTGProtocol:
        rng = make_rng(node) if make_rng is not None else None
        if measured is None:
            return LDTGProtocol(
                max_latency, run_tag=run_tag, selection=selection, rng=rng
            )
        fast = [
            neighbor
            for neighbor, latency in measured.get(node, {}).items()
            if latency <= max_latency
        ]
        return LDTGProtocol(
            max_latency,
            fast_neighbors=fast,
            run_tag=run_tag,
            selection=selection,
            rng=rng,
        )

    return make


def run_ldtg(
    graph: LatencyGraph,
    max_latency: int,
    state: Optional[NetworkState] = None,
    max_rounds: int = 1_000_000,
    engine_factory=None,
    backend: Optional[str] = None,
) -> DisseminationResult:
    """Run one full ℓ-DTG phase and verify ℓ-local broadcast completed.

    Returns a result whose ``rounds`` is the phase length (all nodes
    terminated); completeness is checked against the ℓ-local broadcast
    predicate.  ℓ-DTG is adaptive (its walks react to deliveries), so a
    ``backend="vector"`` run dispatches the phase to the scalar engine —
    the knob exists so composite callers can thread one backend choice
    through uniformly.
    """
    runner = PhaseRunner(
        graph, state=state, engine_factory=engine_factory, backend=backend
    )
    runner.run_phase(
        ldtg_factory(graph, max_latency),
        latencies_known=True,
        max_rounds=max_rounds,
        name=f"{max_latency}-DTG",
    )
    complete = local_broadcast_complete(max_latency)(
        _StateView(graph, runner.state)
    )
    return DisseminationResult(
        rounds=runner.total_rounds,
        complete=complete,
        exchanges=runner.total_exchanges,
        messages=runner.total_messages,
        protocol=f"{max_latency}-DTG",
    )


class _StateView:
    """Minimal engine-like view for reusing runner predicates on raw state."""

    def __init__(self, graph: LatencyGraph, state: NetworkState) -> None:
        self.graph = graph
        self.state = state
