"""Classical push--pull gossip (the random phone call protocol).

In every round every node initiates an exchange with a uniformly random
neighbor; the exchange is bidirectional, so information both pushes to and
pulls from the contacted node.  Theorem 12 of the paper shows that on a
latency graph this completes one-to-all broadcast w.h.p. within
``O((ℓ*/φ*) · log n)`` rounds, where ``φ*`` is the weighted conductance and
``ℓ*`` the critical latency.

The protocol needs no knowledge of latencies, the diameter, or ``n`` — it is
the "unknown everything" workhorse of Section 4.1.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from typing import Callable, Optional

from typing import Hashable

from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.recorder import Recorder
from repro.sim.engine import Engine, NodeContext, NodeProtocol
from repro.sim.metrics import DisseminationResult
from repro.sim.runner import (
    all_to_all_complete,
    broadcast_complete,
    local_broadcast_complete,
    run_until_complete,
)
from repro.sim.state import NetworkState
from repro.sim.vector import (
    VectorProgram,
    resolve_engine_backend,
    state_budget,
)
from repro.protocols.base import per_node_rng_factory

__all__ = ["PushPullProtocol", "PushProtocol", "PullProtocol", "run_push_pull"]


class PushPullProtocol(NodeProtocol):
    """One node's push--pull behaviour: contact a uniform random neighbor."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._neighbors: list[Node] = []

    def setup(self, ctx: NodeContext) -> None:
        self._neighbors = sorted(ctx.neighbors(), key=repr)

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        if not self._neighbors:
            return None
        return self._rng.choice(self._neighbors)

    def vector_program(self) -> VectorProgram:
        """Oblivious: a uniform random neighbor, every round, no gate."""
        return VectorProgram(kind="random", rng=self._rng)


class PushProtocol(PushPullProtocol):
    """Push-only gossip: only nodes already knowing ``rumor`` initiate.

    The exchange itself stays bidirectional (responding is automatic in
    the model), but uninformed nodes never spend their initiation — the
    spread is driven purely by informed nodes pushing outward.
    """

    def __init__(self, rng: random.Random, rumor: Hashable) -> None:
        super().__init__(rng)
        self._rumor = rumor

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        if not self._neighbors:
            return None
        if not ctx.state.knows(ctx.node, self._rumor):
            return None
        return self._rng.choice(self._neighbors)

    def vector_program(self) -> VectorProgram:
        """Oblivious with a knows-gate: informed nodes pick randomly."""
        return VectorProgram(
            kind="random", rng=self._rng, gate=("knows", self._rumor)
        )


class PullProtocol(PushPullProtocol):
    """Pull-only gossip: only nodes *not* knowing ``rumor`` initiate.

    Uninformed nodes keep asking random neighbors until the rumor
    arrives, then go quiet — the mirror image of :class:`PushProtocol`.
    """

    def __init__(self, rng: random.Random, rumor: Hashable) -> None:
        super().__init__(rng)
        self._rumor = rumor

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        if not self._neighbors:
            return None
        if ctx.state.knows(ctx.node, self._rumor):
            return None
        return self._rng.choice(self._neighbors)

    def vector_program(self) -> VectorProgram:
        """Oblivious with a not-knows-gate: uninformed nodes pick randomly."""
        return VectorProgram(
            kind="random", rng=self._rng, gate=("not_knows", self._rumor)
        )


def run_push_pull(
    graph: LatencyGraph,
    source: Optional[Node] = None,
    mode: str = "broadcast",
    seed: int = 0,
    max_rounds: int = 1_000_000,
    max_latency: Optional[int] = None,
    track_progress: bool = False,
    allow_incomplete: bool = False,
    fresh_snapshots: bool = False,
    telemetry: bool = False,
    recorder: Optional[Recorder] = None,
    variant: str = "push-pull",
    backend: Optional[str] = None,
    max_state_bytes: Optional[int] = None,
) -> DisseminationResult:
    """Run push--pull to completion and report the time.

    Parameters
    ----------
    graph:
        The network.
    source:
        Source node for ``mode="broadcast"`` (defaults to the first node).
    mode:
        ``"broadcast"`` (one-to-all), ``"all_to_all"``, or ``"local"``
        (every node's rumor reaches its (ℓ-)neighbors).
    seed:
        Seed for the per-node random contact choices.
    max_rounds:
        Round budget (generous by default; the bound is ``O((ℓ*/φ*) log n)``).
    max_latency:
        For ``mode="local"``: only neighbors over edges of latency
        ``<= max_latency`` must be reached.
    track_progress:
        Record the informed-node count per round (broadcast mode only).
    allow_incomplete:
        Return an incomplete result instead of raising when the budget runs
        out.
    fresh_snapshots:
        Snapshot-semantics ablation flag (see :class:`~repro.sim.Engine`).
    telemetry:
        Attach per-round series (coverage + in-flight curves) to the
        result — see :func:`~repro.sim.runner.run_until_complete`.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder` receiving the
        engine's typed event stream.  Neither flag perturbs the run: the
        returned result compares equal to a plain run of the same seed.
    variant:
        ``"push-pull"`` (default: everyone initiates), ``"push"`` (only
        informed nodes initiate), or ``"pull"`` (only uninformed nodes
        initiate).  The gated variants need a single target rumor, so
        they require ``mode="broadcast"``.
    backend:
        Engine backend name (``"scalar"`` or ``"vector"``).  ``None``
        defers to the ambient :func:`~repro.sim.vector.engine_backend`
        scope (scalar by default); both backends are result-identical
        for the same seed.
    max_state_bytes:
        Bound on the vector backend's state-layout allocations (see
        :func:`~repro.sim.vector.state_budget`); ``None`` defers to the
        ambient budget scope.
    """
    state = NetworkState(graph.nodes())
    progress = None
    if mode == "broadcast":
        if source is None:
            source = graph.nodes()[0]
        rumor = ("rumor", source)
        state.add_rumor(source, rumor)
        predicate = broadcast_complete(rumor)
        if track_progress:
            def progress(engine: Engine) -> int:
                return engine.state.count_knowing(rumor)
    elif mode == "all_to_all":
        state.seed_self_rumors()
        predicate = all_to_all_complete()
    elif mode == "local":
        state.seed_self_rumors()
        predicate = local_broadcast_complete(max_latency)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    make_rng = per_node_rng_factory(seed)
    if variant == "push-pull":
        factory = lambda node: PushPullProtocol(make_rng(node))  # noqa: E731
    elif variant in ("push", "pull"):
        if mode != "broadcast":
            raise ValueError(
                f"variant {variant!r} needs a single target rumor; "
                'only mode="broadcast" is supported'
            )
        cls = PushProtocol if variant == "push" else PullProtocol
        factory = lambda node: cls(make_rng(node), rumor)  # noqa: E731
    else:
        raise ValueError(f"unknown variant {variant!r}")
    budget = (
        state_budget(max_state_bytes)
        if max_state_bytes is not None
        else nullcontext()
    )
    with budget:
        engine = resolve_engine_backend(backend)(
            graph,
            factory,
            state=state,
            latencies_known=False,
            fresh_snapshots=fresh_snapshots,
            recorder=recorder,
        )
    return run_until_complete(
        engine,
        predicate,
        protocol_name=f"{variant}[{mode}]",
        max_rounds=max_rounds,
        track_progress=progress,
        allow_incomplete=allow_incomplete,
        telemetry=telemetry,
    )
