"""Fault-tolerance runners (the paper's conclusion, made executable).

"Finally, we do not take into account the possibility of node or link
failures.  Again, push--pull is relatively robust to failures, while our
other approaches are not."  This module lets that claim be measured:

* :func:`run_push_pull_under_failures` — classical push--pull with a
  failure model; reports when (or whether) every *surviving* node learned
  the rumor.
* :func:`run_spanner_pipeline_under_failures` — the known-latency route:
  a Baswana--Sen spanner computed on the pre-failure graph, then RR
  Broadcast over it with its Lemma 15 budget.  The spanner is sparse, so
  crashed nodes sever its routing trees: coverage among survivors drops,
  while push--pull routes around failures through any of the dense graph's
  remaining edges.

Both runners measure **coverage**: the fraction of surviving nodes that
hold the source's rumor when the protocol ends (or the budget expires) —
restricted to survivors still *reachable* from the source in the
survivor-induced graph, because a survivor cut off by the crashes is
unreachable for every protocol and says nothing about robustness.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Engine
from repro.sim.failures import CrashSchedule, FailureModel
from repro.sim.state import NetworkState
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.rr_broadcast import rr_broadcast_factory
from repro.protocols.spanner import baswana_sen_spanner

__all__ = [
    "RobustnessResult",
    "run_push_pull_under_failures",
    "run_spanner_pipeline_under_failures",
    "spanner_cut_crashes",
]


@dataclasses.dataclass(frozen=True)
class RobustnessResult:
    """Outcome of one dissemination run under failures.

    Attributes
    ----------
    rounds:
        Rounds executed (until full survivor coverage, or the budget).
    coverage:
        Fraction of *reachable* surviving nodes holding the rumor at the
        end (reachable = connected to the source through non-crashed
        nodes).
    complete:
        Whether every reachable survivor was covered.
    survivors:
        Number of non-crashed nodes at the final round.
    reachable:
        Number of survivors reachable from the source among survivors.
    lost_exchanges:
        Exchanges voided by the failure model.
    protocol:
        Label of the protocol measured.
    """

    rounds: int
    coverage: float
    complete: bool
    survivors: int
    reachable: int
    lost_exchanges: int
    protocol: str


def _survivors(
    graph: LatencyGraph, failures: Optional[FailureModel], round_number: int
) -> list[Node]:
    if failures is None:
        return graph.nodes()
    return [
        node
        for node in graph.nodes()
        if not failures.node_crashed(node, round_number)
    ]


def _reachable_survivors(
    graph: LatencyGraph, survivors: list[Node], source: Node
) -> list[Node]:
    alive = set(survivors)
    if source not in alive:
        return []
    seen = {source}
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor in alive and neighbor not in seen:
                    seen.add(neighbor)
                    nxt.append(neighbor)
        frontier = nxt
    return sorted(seen, key=repr)


def _coverage(state: NetworkState, rumor, targets: list[Node]) -> float:
    if not targets:
        return 1.0
    return sum(1 for node in targets if state.knows(node, rumor)) / len(targets)


def run_push_pull_under_failures(
    graph: LatencyGraph,
    failures: Optional[FailureModel],
    source: Optional[Node] = None,
    seed: int = 0,
    max_rounds: int = 100_000,
) -> RobustnessResult:
    """Push--pull broadcast under a failure model.

    Runs until every surviving node knows the source's rumor or
    ``max_rounds`` expire (a crashed source trivially completes nothing;
    pick a source the model protects for meaningful sweeps).
    """
    if source is None:
        source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    make_rng = per_node_rng_factory(seed)
    engine = Engine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
        failure_model=failures,
    )

    def covered() -> bool:
        survivors = _survivors(graph, failures, engine.round)
        return all(
            state.knows(node, rumor)
            for node in _reachable_survivors(graph, survivors, source)
        )

    while not covered() and engine.round < max_rounds:
        engine.step()
    survivors = _survivors(graph, failures, engine.round)
    reachable = _reachable_survivors(graph, survivors, source)
    coverage = _coverage(state, rumor, reachable)
    return RobustnessResult(
        rounds=engine.round,
        coverage=coverage,
        complete=coverage == 1.0,
        survivors=len(survivors),
        reachable=len(reachable),
        lost_exchanges=engine.metrics.lost_exchanges,
        protocol="push-pull",
    )


def _pipeline_spanner(graph: LatencyGraph, seed: int):
    """The spanner :func:`run_spanner_pipeline_under_failures` will build."""
    k_spanner = max(2, math.ceil(math.log2(max(2, graph.num_nodes))))
    return baswana_sen_spanner(graph, k_spanner, random.Random(seed))


def spanner_cut_crashes(
    graph: LatencyGraph,
    seed: int,
    source: Node,
    crash_round: int = 0,
) -> tuple[CrashSchedule, Node, int]:
    """An adversarial crash set that severs one node from the spanner.

    Random crashes rarely hurt the spanner (it has Ω(n log n) edges and RR
    exchanges are bidirectional).  The sharp statement behind "our other
    approaches are not robust" is *worst-case*: because the spanner is
    sparse, some node's entire spanner neighborhood is a small set, and
    crashing exactly those nodes makes the victim unreachable over the
    spanner while it remains richly connected in ``G`` — push--pull still
    reaches it, the pipeline cannot.

    Builds the same spanner the pipeline (with the same ``seed``) will
    build, picks the victim with the smallest spanner neighborhood
    (excluding the source and nodes spanner-adjacent to it), and returns
    ``(schedule, victim, crash_count)``.
    """
    spanner = _pipeline_spanner(graph, seed)
    adjacency: dict[Node, set[Node]] = {node: set() for node in graph.nodes()}
    for tail, head in spanner.undirected_edges():
        adjacency[tail].add(head)
        adjacency[head].add(tail)
    candidates = [
        node
        for node in graph.nodes()
        if node != source and source not in adjacency[node]
    ]
    if not candidates:
        # Dense spanner: every node touches the source. Fall back to the
        # weakest node overall; the source is never crashed, so such a
        # victim stays pipeline-reachable and the demonstration degrades
        # gracefully (coverage stays 1.0).
        candidates = [node for node in graph.nodes() if node != source]
    victim = min(candidates, key=lambda node: (len(adjacency[node]), repr(node)))
    crash_set = adjacency[victim] - {source}
    schedule = CrashSchedule({node: crash_round for node in crash_set})
    return schedule, victim, len(crash_set)


def run_spanner_pipeline_under_failures(
    graph: LatencyGraph,
    failures: Optional[FailureModel],
    source: Optional[Node] = None,
    seed: int = 0,
    budget_factor: float = 1.0,
) -> RobustnessResult:
    """Spanner + RR Broadcast under a failure model.

    The spanner is computed on the intact graph (as EID would have built
    it before the failures hit), then RR Broadcast runs for
    ``budget_factor`` times its Lemma 15 budget.  Crashed nodes take their
    spanner subtrees with them; there is no re-routing.
    """
    if source is None:
        source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    spanner = _pipeline_spanner(graph, seed)
    k_rr = graph.weighted_diameter() * (2 * spanner.k - 1)
    restricted = spanner.restrict(k_rr)
    duration = int(
        budget_factor * (k_rr * restricted.max_out_degree() + k_rr)
    )
    factory = rr_broadcast_factory(spanner, k_rr, duration=duration)
    engine = Engine(
        graph,
        factory,
        state=state,
        latencies_known=True,
        failure_model=failures,
    )

    def covered() -> bool:
        survivors = _survivors(graph, failures, engine.round)
        return all(
            state.knows(node, rumor)
            for node in _reachable_survivors(graph, survivors, source)
        )

    while not engine.all_done():
        engine.step()
        if covered():
            break
    survivors = _survivors(graph, failures, engine.round)
    reachable = _reachable_survivors(graph, survivors, source)
    coverage = _coverage(state, rumor, reachable)
    return RobustnessResult(
        rounds=engine.round,
        coverage=coverage,
        complete=coverage == 1.0,
        survivors=len(survivors),
        reachable=len(reachable),
        lost_exchanges=engine.metrics.lost_exchanges,
        protocol="spanner+RR",
    )
