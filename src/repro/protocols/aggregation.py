"""Gossip-based aggregation: the paper's motivating application, built.

The introduction motivates dissemination with "distributed database
replication, sensor network data aggregation, ... nodes in the network have
information that they want to share/aggregate/reconcile with others".  This
module closes that loop: every node starts with a value; values spread as
rumors via a chosen dissemination protocol; once a node holds all values it
folds them with the aggregate operator.  Because the protocols below solve
*all-to-all* dissemination, every node ends with the identical aggregate —
exact aggregation, not the approximate averaging of the gossip-averaging
literature.

Supported backends:

* ``"push-pull"`` — no knowledge needed; runs until all values spread (the
  caller sees completion; the nodes themselves cannot detect it);
* ``"general-eid"`` — known latencies, unknown diameter; self-terminating;
* ``"path-discovery"`` — no global knowledge at all; self-terminating.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Union

from repro.errors import ProtocolError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Engine
from repro.sim.state import NetworkState
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol

__all__ = ["AggregateReport", "AGGREGATE_OPS", "run_aggregate"]

Aggregator = Callable[[list], Any]

AGGREGATE_OPS: dict[str, Aggregator] = {
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
    "mean": lambda values: sum(values) / len(values),
}


@dataclasses.dataclass(frozen=True)
class AggregateReport:
    """Outcome of one aggregation run.

    Attributes
    ----------
    value:
        The aggregate every node computed.
    per_node:
        ``{node: aggregate}`` — all equal when ``consistent`` is true.
    consistent:
        Whether every node derived the same aggregate (must hold; exposed
        so tests can assert it rather than trust it).
    rounds:
        Rounds the underlying dissemination took.
    protocol:
        The backend used.
    """

    value: Any
    per_node: dict[Node, Any]
    consistent: bool
    rounds: int
    protocol: str


def _value_token(node: Node, value: Any) -> tuple:
    return ("value", node, value)


def _fold(state: NetworkState, node: Node, op: Aggregator) -> Any:
    values = [
        token[2]
        for token in state.rumors(node)
        if isinstance(token, tuple) and len(token) == 3 and token[0] == "value"
    ]
    return op(values)


def run_aggregate(
    graph: LatencyGraph,
    values: Mapping[Node, Any],
    op: Union[str, Aggregator] = "min",
    protocol: str = "push-pull",
    seed: int = 0,
    max_rounds: int = 1_000_000,
) -> AggregateReport:
    """Aggregate one value per node across the whole network.

    Parameters
    ----------
    graph:
        The network.
    values:
        One starting value per node (every node must appear).
    op:
        A name from :data:`AGGREGATE_OPS` or any callable folding a list.
    protocol:
        ``"push-pull"``, ``"general-eid"``, or ``"path-discovery"``.
    seed:
        Seed for the randomized backends.
    """
    nodes = graph.nodes()
    missing = [node for node in nodes if node not in values]
    if missing:
        raise ProtocolError(f"missing values for nodes: {missing[:5]}")
    aggregator: Aggregator = AGGREGATE_OPS[op] if isinstance(op, str) else op

    state = NetworkState(nodes)
    state.seed_self_rumors()
    for node in nodes:
        state.add_rumor(node, _value_token(node, values[node]))

    tokens = {_value_token(node, values[node]) for node in nodes}

    def all_values_everywhere() -> bool:
        return all(tokens <= state.rumors(node) for node in nodes)

    if protocol == "push-pull":
        make_rng = per_node_rng_factory(seed)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            state=state,
        )
        while not all_values_everywhere():
            if engine.round >= max_rounds:
                raise ProtocolError(
                    f"aggregation exceeded max_rounds={max_rounds}"
                )
            engine.step()
        rounds = engine.round
    elif protocol == "general-eid":
        from repro.protocols.base import PhaseRunner
        from repro.protocols.eid import _eid_phases, run_termination_check
        from repro.protocols.rr_broadcast import rr_broadcast_factory
        import random as _random

        runner = PhaseRunner(graph, state=state)
        rng = _random.Random(seed)
        n_hat = graph.num_nodes
        cap = 4 * max(1, (graph.num_nodes - 1) * max(1, graph.max_latency()))
        k = 1
        while True:
            tag = f"agg:{seed}:{k}"
            spanner, rr_parameter = _eid_phases(
                runner, graph, k, n_hat, rng, tag=tag, max_rounds=max_rounds
            )

            def broadcast(phase_tag: str) -> None:
                runner.run_phase(
                    rr_broadcast_factory(spanner, rr_parameter),
                    latencies_known=True,
                    max_rounds=max_rounds,
                    name=f"aggregate check {phase_tag}",
                )

            check = run_termination_check(
                runner, graph, k, broadcast, iteration_tag=tag
            )
            if check.passed:
                break
            k *= 2
            if k > cap:
                raise ProtocolError("aggregation failed to terminate")
        rounds = runner.total_rounds
    elif protocol == "path-discovery":
        from repro.protocols.base import PhaseRunner
        from repro.protocols.eid import run_termination_check
        from repro.protocols.path_discovery import run_t_sequence

        runner = PhaseRunner(graph, state=state)
        cap = 4 * max(1, (graph.num_nodes - 1) * max(1, graph.max_latency()))
        k = 1
        while True:
            tag = f"aggpd:{k}"
            run_t_sequence(runner, graph, k, tag=tag, max_rounds=max_rounds)

            def broadcast(phase_tag: str) -> None:
                run_t_sequence(
                    runner, graph, k, tag=f"{tag}:{phase_tag}", max_rounds=max_rounds
                )

            check = run_termination_check(
                runner, graph, k, broadcast, iteration_tag=tag
            )
            if check.passed:
                break
            k *= 2
            if k > cap:
                raise ProtocolError("aggregation failed to terminate")
        rounds = runner.total_rounds
    else:
        raise ProtocolError(f"unknown aggregation protocol {protocol!r}")

    per_node = {node: _fold(state, node, aggregator) for node in nodes}
    reference = per_node[nodes[0]]
    consistent = all(result == reference for result in per_node.values())
    return AggregateReport(
        value=reference,
        per_node=per_node,
        consistent=consistent,
        rounds=rounds,
        protocol=protocol,
    )
