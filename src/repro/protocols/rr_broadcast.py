"""RR Broadcast: round-robin dissemination over a directed spanner (Algorithm 2).

Given the directed spanner and a distance parameter ``k``, every node cycles
through its out-edges of latency ``<= k``, initiating one (non-blocking)
exchange per round, for ``k·Δ_out + k`` rounds.  Lemma 15 shows that any two
nodes at weighted distance ``<= k`` in ``G`` have then exchanged rumors:
along a shortest path, each hop waits at most ``Δ_out`` rounds for its edge's
turn plus the hop latency, and the hop count and latency sum are both
``<= k``.

On the ``O(log n)``-stretch spanner with ``Δ_out = O(log n)`` this gives the
``O(D log² n)`` broadcast step of Corollary 16.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProtocolError
from repro.graphs.latency_graph import Node
from repro.sim.engine import NodeContext, NodeProtocol
from repro.sim.vector import VectorProgram
from repro.protocols.spanner import DirectedSpanner

__all__ = ["RRBroadcastProtocol", "rr_broadcast_factory", "rr_broadcast_duration"]


def rr_broadcast_duration(k: int, max_out_degree: int) -> int:
    """The Lemma 15 round budget ``k·Δ_out + k``."""
    return k * max_out_degree + k


class RRBroadcastProtocol(NodeProtocol):
    """One node's RR Broadcast behaviour: cycle out-edges for a fixed budget."""

    def __init__(self, out_neighbors: list[Node], duration: int) -> None:
        if duration < 0:
            raise ProtocolError(f"duration must be >= 0, got {duration}")
        self._out_neighbors = out_neighbors
        self._duration = duration
        self._next = 0
        self._rounds_run = 0

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        self._rounds_run += 1
        if not self._out_neighbors:
            return None
        target = self._out_neighbors[self._next % len(self._out_neighbors)]
        self._next += 1
        return target

    def is_done(self, ctx: NodeContext) -> bool:
        return self._rounds_run >= self._duration

    def vector_program(self) -> VectorProgram:
        """Oblivious: cycle the fixed out-edge list for a fixed budget.

        A live node initiates exactly in its first ``duration`` scans
        (``on_round`` runs only while ``is_done`` is false), so the
        remaining budget at adoption time is ``duration - rounds_run``.
        """
        return VectorProgram(
            kind="round_robin",
            targets=tuple(self._out_neighbors),
            duration=max(self._duration - self._rounds_run, 0),
            start=self._next,
        )


def rr_broadcast_factory(
    spanner: DirectedSpanner,
    k: int,
    duration: Optional[int] = None,
) -> Callable[[Node], RRBroadcastProtocol]:
    """Factory for one RR Broadcast phase with parameter ``k``.

    Out-edges are restricted to latency ``<= k`` (the ``G_k`` view of the
    spanner); the default duration is Lemma 15's ``k·Δ_out + k`` computed
    from the restricted spanner's max out-degree.
    """
    if k < 1:
        raise ProtocolError(f"k must be >= 1, got {k}")
    restricted = spanner.restrict(k)
    budget = (
        duration
        if duration is not None
        else rr_broadcast_duration(k, restricted.max_out_degree())
    )

    def make(node: Node) -> RRBroadcastProtocol:
        return RRBroadcastProtocol(list(restricted.out_edges.get(node, [])), budget)

    return make
