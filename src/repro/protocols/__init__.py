"""All dissemination protocols from the paper (Sections 4-5, Appendices B-E)."""

from repro.protocols.aggregation import AGGREGATE_OPS, AggregateReport, run_aggregate
from repro.protocols.base import PhaseRunner, per_node_rng_factory
from repro.protocols.discovery import (
    LatencyDiscoveryProtocol,
    UnknownLatencyReport,
    run_general_eid_unknown_latencies,
    run_latency_discovery,
)
from repro.protocols.dtg import LDTGProtocol, ldtg_factory, run_ldtg
from repro.protocols.eid import (
    EIDReport,
    GeneralEIDReport,
    TerminationCheckReport,
    run_eid,
    run_general_eid,
    run_termination_check,
)
from repro.protocols.flooding import FloodingProtocol, run_flooding
from repro.protocols.path_discovery import (
    PathDiscoveryReport,
    run_path_discovery,
    run_t_sequence,
    t_sequence,
)
from repro.protocols.push_pull import (
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
    run_push_pull,
)
from repro.protocols.robustness import (
    RobustnessResult,
    run_push_pull_under_failures,
    run_spanner_pipeline_under_failures,
    spanner_cut_crashes,
)
from repro.protocols.rr_broadcast import (
    RRBroadcastProtocol,
    rr_broadcast_duration,
    rr_broadcast_factory,
)
from repro.protocols.spanner import DirectedSpanner, baswana_sen_spanner
from repro.protocols.unified import UnifiedReport, run_unified

__all__ = [
    "AGGREGATE_OPS",
    "AggregateReport",
    "DirectedSpanner",
    "EIDReport",
    "FloodingProtocol",
    "GeneralEIDReport",
    "LDTGProtocol",
    "LatencyDiscoveryProtocol",
    "PathDiscoveryReport",
    "PhaseRunner",
    "PullProtocol",
    "PushProtocol",
    "PushPullProtocol",
    "RRBroadcastProtocol",
    "RobustnessResult",
    "TerminationCheckReport",
    "UnifiedReport",
    "UnknownLatencyReport",
    "baswana_sen_spanner",
    "ldtg_factory",
    "per_node_rng_factory",
    "rr_broadcast_duration",
    "rr_broadcast_factory",
    "run_aggregate",
    "run_eid",
    "run_flooding",
    "run_general_eid",
    "run_general_eid_unknown_latencies",
    "run_latency_discovery",
    "run_ldtg",
    "run_path_discovery",
    "run_push_pull",
    "run_push_pull_under_failures",
    "run_spanner_pipeline_under_failures",
    "run_t_sequence",
    "run_termination_check",
    "run_unified",
    "spanner_cut_crashes",
    "t_sequence",
]
