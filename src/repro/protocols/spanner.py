"""Directed Baswana--Sen spanner construction (Appendix D, Lemma 13).

The known-latency algorithm of Section 5 routes all communication over a
sparse **(2k-1)-spanner** computed by the randomized clustering algorithm of
Baswana and Sen, modified as in the paper:

* every edge a node adds to the spanner is **oriented away** from that node,
  and the out-degree of every node is ``O(n^{1/k} log n)`` w.h.p.
  (``O(n^{c/k} log n)`` when only an estimate ``n̂ <= n^c`` is known,
  Lemma 13);
* edge weights are made distinct by breaking latency ties with node ids.

In the paper the algorithm runs in the LOCAL model after each node gathers
its ``k``-hop neighborhood via repeated D-DTG (Theorem 14); the decisions of
each node depend only on that neighborhood.  We implement the per-node rules
exactly but execute them centrally — the message-passing *cost* of gathering
the neighborhoods is charged separately by the EID protocol, mirroring the
paper's "all computations are done locally" accounting.

The construction is over the latency-weighted graph: cluster joins follow
least-*latency* edges, so the spanner approximates weighted distances
(stretch ``2k - 1`` on every edge, hence on every path).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.errors import ProtocolError
from repro.graphs.latency_graph import LatencyGraph, Node, edge_key
from repro.obs.profile import span

__all__ = ["DirectedSpanner", "baswana_sen_spanner"]

_WeightKey = tuple[int, str, str]


def _weight(graph: LatencyGraph, u: Node, v: Node) -> _WeightKey:
    """Distinct total order on edges: latency first, node-id tiebreak."""
    a, b = edge_key(u, v)
    return (graph.latency(u, v), repr(a), repr(b))


@dataclasses.dataclass
class DirectedSpanner:
    """A spanner subgraph with an orientation bounding out-degrees.

    Attributes
    ----------
    graph:
        The underlying network the spanner was built from.
    out_edges:
        ``out_edges[v]`` is the list of heads of ``v``'s outgoing spanner
        edges (sorted for determinism).
    k:
        The Baswana--Sen parameter; the undirected stretch is ``2k - 1``.
    """

    graph: LatencyGraph
    out_edges: dict[Node, list[Node]]
    k: int

    @property
    def num_edges(self) -> int:
        """Number of (undirected) spanner edges."""
        return len(self.undirected_edges())

    def undirected_edges(self) -> set[tuple[Node, Node]]:
        """The spanner's edge set, canonically ordered."""
        return {
            edge_key(tail, head)
            for tail, heads in self.out_edges.items()
            for head in heads
        }

    def max_out_degree(self) -> int:
        """The maximum out-degree Δ_out over all nodes."""
        if not self.out_edges:
            return 0
        return max(len(heads) for heads in self.out_edges.values())

    def to_latency_graph(self) -> LatencyGraph:
        """The undirected spanner as a :class:`LatencyGraph` (latencies copied)."""
        spanner = LatencyGraph(nodes=self.graph.nodes())
        for u, v in self.undirected_edges():
            spanner.add_edge(u, v, self.graph.latency(u, v))
        return spanner

    def restrict(self, max_latency: int) -> "DirectedSpanner":
        """Keep only spanner edges of latency ``<= max_latency`` (the ``G_k`` view)."""
        restricted = {
            tail: [h for h in heads if self.graph.latency(tail, h) <= max_latency]
            for tail, heads in self.out_edges.items()
        }
        return DirectedSpanner(graph=self.graph, out_edges=restricted, k=self.k)

    def measured_stretch(
        self, num_pairs: int = 50, rng: Optional[random.Random] = None
    ) -> float:
        """Empirical stretch: max over sampled pairs of d_spanner / d_G.

        Exact over all pairs when ``num_pairs`` exceeds ``n``; otherwise
        sampled from ``num_pairs`` random sources.
        """
        rng = rng or random.Random(0)
        spanner_graph = self.to_latency_graph()
        nodes = self.graph.nodes()
        sources = nodes if num_pairs >= len(nodes) else rng.sample(nodes, num_pairs)
        worst = 1.0
        for source in sources:
            original = self.graph.weighted_distances(source)
            routed = spanner_graph.weighted_distances(source)
            for target, d in original.items():
                if target == source or d == 0:
                    continue
                if target not in routed:
                    return math.inf
                worst = max(worst, routed[target] / d)
        return worst


def baswana_sen_spanner(
    graph: LatencyGraph,
    k: int,
    rng: random.Random,
    n_hat: Optional[int] = None,
) -> DirectedSpanner:
    """Compute a directed ``(2k-1)``-spanner by Baswana--Sen clustering.

    Parameters
    ----------
    graph:
        A connected latency graph.
    k:
        Number of clustering iterations; stretch is ``2k - 1`` and expected
        size ``O(k · n^{1 + 1/k})``.  ``k = ceil(log2 n)`` gives the paper's
        ``O(log n)``-spanner with ``O(n log n)`` edges.
    rng:
        Randomness for cluster sampling.
    n_hat:
        The (polynomial) upper bound on ``n`` the nodes actually know; the
        sampling probability is ``n̂^{-1/k}``.  Defaults to the true ``n``.

    Returns
    -------
    DirectedSpanner
        Spanner with per-node out-edge lists.
    """
    with span("spanner.baswana_sen"):
        return _baswana_sen_spanner(graph, k, rng, n_hat)


def _baswana_sen_spanner(
    graph: LatencyGraph,
    k: int,
    rng: random.Random,
    n_hat: Optional[int],
) -> DirectedSpanner:
    if k < 1:
        raise ProtocolError(f"k must be >= 1, got {k}")
    nodes = graph.nodes()
    n = len(nodes)
    if n_hat is None:
        n_hat = n
    if n_hat < n:
        raise ProtocolError(f"n_hat must be >= n, got n_hat={n_hat}, n={n}")
    sample_probability = n_hat ** (-1.0 / k) if n_hat > 1 else 1.0

    out_edges: dict[Node, set[Node]] = {node: set() for node in nodes}
    # Clustering state: center of each still-clustered node.
    center: dict[Node, Node] = {node: node for node in nodes}
    # Unresolved edges, per node: neighbor -> weight key.
    unresolved: dict[Node, dict[Node, _WeightKey]] = {
        node: {
            neighbor: _weight(graph, node, neighbor)
            for neighbor in graph.neighbors(node)
        }
        for node in nodes
    }

    def discard(u: Node, v: Node) -> None:
        unresolved[u].pop(v, None)
        unresolved[v].pop(u, None)

    def add_out(tail: Node, head: Node) -> None:
        out_edges[tail].add(head)

    for _iteration in range(1, k):
        current_centers = sorted(set(center.values()), key=repr)
        sampled = {c for c in current_centers if rng.random() < sample_probability}
        new_center: dict[Node, Node] = {
            node: c for node, c in center.items() if c in sampled
        }
        for node in nodes:
            if node not in center or center[node] in sampled:
                continue  # unclustered already settled; sampled members stay put
            # Group this node's unresolved edges by the neighbor's cluster.
            by_cluster: dict[Node, tuple[_WeightKey, Node]] = {}
            members: dict[Node, list[Node]] = {}
            for neighbor, weight in list(unresolved[node].items()):
                neighbor_center = center.get(neighbor)
                if neighbor_center is None or neighbor_center == center[node]:
                    continue  # intra-cluster or settled: never joins the spanner
                members.setdefault(neighbor_center, []).append(neighbor)
                best = by_cluster.get(neighbor_center)
                if best is None or (weight, repr(neighbor)) < (best[0], repr(best[1])):
                    by_cluster[neighbor_center] = (weight, neighbor)
            sampled_adjacent = [c for c in by_cluster if c in sampled]
            if not sampled_adjacent:
                # Rule 1: settle — one least-weight edge per adjacent cluster.
                for cluster, (_, best_neighbor) in by_cluster.items():
                    add_out(node, best_neighbor)
                    for neighbor in members[cluster]:
                        discard(node, neighbor)
                # Also drop intra-cluster and settled-neighbor edges.
                for neighbor in list(unresolved[node]):
                    discard(node, neighbor)
            else:
                # Rule 2: join the sampled cluster with the lightest edge.
                join_cluster = min(
                    sampled_adjacent, key=lambda c: (by_cluster[c][0], repr(c))
                )
                join_weight, join_neighbor = by_cluster[join_cluster]
                add_out(node, join_neighbor)
                new_center[node] = join_cluster
                for neighbor in members[join_cluster]:
                    discard(node, neighbor)
                for cluster, (weight, best_neighbor) in by_cluster.items():
                    if cluster == join_cluster:
                        continue
                    if weight < join_weight:
                        add_out(node, best_neighbor)
                        for neighbor in members[cluster]:
                            discard(node, neighbor)
        center = new_center

    # Phase 2 (iteration k): one least-weight edge to every adjacent cluster.
    for node in nodes:
        by_cluster: dict[Node, tuple[_WeightKey, Node]] = {}
        for neighbor, weight in unresolved[node].items():
            neighbor_center = center.get(neighbor)
            if neighbor_center is None or neighbor_center == center.get(node):
                continue
            best = by_cluster.get(neighbor_center)
            if best is None or (weight, repr(neighbor)) < (best[0], repr(best[1])):
                by_cluster[neighbor_center] = (weight, neighbor)
        for _, best_neighbor in by_cluster.values():
            add_out(node, best_neighbor)

    return DirectedSpanner(
        graph=graph,
        out_edges={node: sorted(heads, key=repr) for node, heads in out_edges.items()},
        k=k,
    )
