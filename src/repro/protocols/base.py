"""Shared protocol plumbing: per-node RNG streams and multi-phase execution.

Composite algorithms (EID, General EID, Path Discovery) run several protocol
*phases* back to back over the same :class:`~repro.sim.state.NetworkState` —
for example "log n rounds of D-DTG, then RR Broadcast on the spanner".
:class:`PhaseRunner` owns that state, accumulates the total round count
across phases, and (optionally) watches for the first round at which a
completion predicate holds so benchmarks can report *time to completion*
separately from *time to protocol termination*.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.profile import span
from repro.obs.recorder import Recorder
from repro.obs.telemetry import PhaseTiming
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.state import NetworkState
from repro.sim.vector import resolve_engine_backend

__all__ = ["per_node_rng_factory", "PhaseRunner"]


def per_node_rng_factory(seed: int) -> Callable[[Node], random.Random]:
    """Deterministic independent RNG streams, one per node.

    Each node's stream is seeded from ``(seed, repr(node))`` so results do
    not depend on node iteration order.
    """

    def make(node: Node) -> random.Random:
        return random.Random(f"{seed}:{node!r}")

    return make


class PhaseRunner:
    """Runs protocol phases sequentially over one shared network state.

    Parameters
    ----------
    graph:
        The network.
    state:
        Shared knowledge; a fresh one is created (and self-rumors seeded)
        when omitted.
    watch:
        Optional predicate over the state; :attr:`first_complete_round` is
        the cumulative round count when it first held.
    engine_factory:
        Engine constructor used for every phase; defaults to the engine
        backend named by ``backend``.  Differential tests substitute
        :class:`~repro.testing.reference.ReferenceEngine` here to run
        whole composite protocols against the naive model.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder` threaded into every
        phase's engine.  Passed as an extra ``recorder=`` keyword only
        when set, so factories that do not know about recording (e.g. the
        reference engine) keep working untouched.
    backend:
        Engine backend name used when ``engine_factory`` is omitted;
        ``None`` defers to the ambient
        :func:`~repro.sim.vector.engine_backend` scope (scalar by
        default).  Note the vector backend only accepts oblivious
        protocols, so phase-structured composites need the scalar one.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        state: Optional[NetworkState] = None,
        watch: Optional[Callable[[NetworkState], bool]] = None,
        engine_factory: Optional[Callable[..., Engine]] = None,
        recorder: Optional[Recorder] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.engine_factory = (
            engine_factory
            if engine_factory is not None
            else resolve_engine_backend(backend)
        )
        self.recorder = recorder
        if state is None:
            state = NetworkState(graph.nodes())
            state.seed_self_rumors()
        self.state = state
        self.total_rounds = 0
        self.total_exchanges = 0
        self.total_messages = 0
        #: Per-phase logical cost and wall clock, in execution order.
        self.phases: list[PhaseTiming] = []
        self.first_complete_round: Optional[int] = None
        self._watch = watch
        if watch is not None and watch(self.state):
            self.first_complete_round = 0

    def run_phase(
        self,
        protocol_factory: Callable[[Node], NodeProtocol],
        latencies_known: bool = True,
        max_rounds: int = 1_000_000,
        name: str = "phase",
    ) -> Engine:
        """Run one phase until every node's protocol is done.

        Returns the finished engine so callers can inspect protocol
        instances (e.g. collect measured latencies after discovery).
        """
        extra = {} if self.recorder is None else {"recorder": self.recorder}
        engine = self.engine_factory(
            self.graph,
            protocol_factory,
            state=self.state,
            latencies_known=latencies_known,
            **extra,
        )
        # The vector backend adopts a converted copy of a plain
        # NetworkState; follow it so the watch predicate and later phases
        # see the state the engine actually mutates.
        engine_state = getattr(engine, "state", None)
        if engine_state is not None and engine_state is not self.state:
            self.state = engine_state
        with span(f"phase.{name}") as timer:
            while not engine.all_done():
                if engine.round >= max_rounds:
                    raise SimulationError(
                        f"{name} exceeded max_rounds={max_rounds} within one phase"
                    )
                engine.step()
                self.total_rounds += 1
                if (
                    self._watch is not None
                    and self.first_complete_round is None
                    and self._watch(self.state)
                ):
                    self.first_complete_round = self.total_rounds
        self.phases.append(
            PhaseTiming(
                name=name,
                rounds=engine.round,
                exchanges=engine.metrics.exchanges,
                seconds=timer.seconds,
            )
        )
        self.total_exchanges += engine.metrics.exchanges
        self.total_messages += engine.metrics.messages
        # Last look for any attached invariant checkers before the phase's
        # engine is retired (duck-typed: ReferenceEngine has a no-op).
        finish = getattr(engine, "finish_checks", None)
        if finish is not None:
            finish()
        return engine
