"""Shared protocol plumbing: per-node RNG streams and multi-phase execution.

Composite algorithms (EID, General EID, Path Discovery) run several protocol
*phases* back to back over the same :class:`~repro.sim.state.NetworkState` —
for example "log n rounds of D-DTG, then RR Broadcast on the spanner".
:class:`PhaseRunner` owns that state, accumulates the total round count
across phases, and (optionally) watches for the first round at which a
completion predicate holds so benchmarks can report *time to completion*
separately from *time to protocol termination*.

Phase-chained vector execution
------------------------------
When the runner resolves to the ``vector`` backend (and no explicit
``engine_factory`` overrides it), each phase is dispatched independently:
a probe protocol instance is asked
:func:`~repro.sim.vector.vector_ineligibility`, and

* eligible phases run on :class:`~repro.sim.vector.VectorEngine` — the
  rumor state stays in its :class:`~repro.sim.vector.VectorState` layout
  between phases (re-picked via ``to_layout()`` when a scalar phase grew
  the rumor universe), never densifying back to a scalar state;
* ineligible phases (adaptive protocols like ℓ-DTG's measurement walks)
  fall back to the scalar :class:`~repro.sim.engine.Engine` *over the
  same layout state*, which implements the full
  :class:`~repro.sim.state.NetworkState` API — the handoff is
  bit-identical in both directions.

Every phase's backend is attributed in :attr:`PhaseRunner.phases`
(``PhaseTiming.backend``), :attr:`PhaseRunner.phase_fallbacks`, and the
``sim_phase_backend`` labeled counter, so mixed runs are diagnosable from
``repro profile`` / ``repro report``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.metrics import default_registry
from repro.obs.profile import span
from repro.obs.recorder import Recorder
from repro.obs.telemetry import PhaseTiming
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.state import NetworkState
from repro.sim.vector import (
    VectorEngine,
    VectorState,
    current_engine_backend,
    resolve_engine_backend,
    vector_ineligibility,
)

__all__ = ["per_node_rng_factory", "PhaseRunner"]


def per_node_rng_factory(seed: int) -> Callable[[Node], random.Random]:
    """Deterministic independent RNG streams, one per node.

    Each node's stream is seeded from ``(seed, repr(node))`` so results do
    not depend on node iteration order.
    """

    def make(node: Node) -> random.Random:
        return random.Random(f"{seed}:{node!r}")

    return make


def _fallback_slug(reason: Optional[str]) -> str:
    """Compress an ineligibility reason into a bounded metric label."""
    if reason is None:
        return "eligible"
    if "declares no vector_program()" in reason:
        return "no-vector-program"
    if "ping-only" in reason:
        return "ping-only"
    if "on_deliver" in reason:
        return "on-deliver-callback"
    if "is_done" in reason:
        return "adaptive-termination"
    return "ineligible"


class PhaseRunner:
    """Runs protocol phases sequentially over one shared network state.

    Parameters
    ----------
    graph:
        The network.
    state:
        Shared knowledge; a fresh one is created (and self-rumors seeded)
        when omitted.
    watch:
        Optional predicate over the state; :attr:`first_complete_round` is
        the cumulative round count when it first held.
    engine_factory:
        Engine constructor used for every phase; defaults to the engine
        backend named by ``backend``.  Differential tests substitute
        :class:`~repro.testing.reference.ReferenceEngine` here to run
        whole composite protocols against the naive model.  An explicit
        factory disables per-phase backend dispatch.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder` threaded into every
        phase's engine.  Passed as an extra ``recorder=`` keyword only
        when set, so factories that do not know about recording (e.g. the
        reference engine) keep working untouched.
    backend:
        Engine backend name used when ``engine_factory`` is omitted;
        ``None`` defers to the ambient
        :func:`~repro.sim.vector.engine_backend` scope (scalar by
        default).  Under the ``vector`` backend each phase is dispatched
        independently: vector-eligible protocols run on
        :class:`~repro.sim.vector.VectorEngine`, anything else falls back
        to the scalar engine over the same state (see module docstring).
    engine_kwargs:
        Extra keyword arguments (e.g. ``failure_model``,
        ``max_incoming_per_round``) forwarded to every phase's engine
        construction.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        state: Optional[NetworkState] = None,
        watch: Optional[Callable[[NetworkState], bool]] = None,
        engine_factory: Optional[Callable[..., Engine]] = None,
        recorder: Optional[Recorder] = None,
        backend: Optional[str] = None,
        engine_kwargs: Optional[dict] = None,
    ) -> None:
        self.graph = graph
        resolved = backend if backend is not None else current_engine_backend()
        #: Per-phase backend dispatch is on only for vector-resolved runs
        #: without an explicit engine factory; everything else keeps the
        #: single-factory behavior.
        self._dispatch = engine_factory is None and resolved == "vector"
        self.engine_factory = (
            engine_factory
            if engine_factory is not None
            else resolve_engine_backend(backend)
        )
        self.recorder = recorder
        self.engine_kwargs = dict(engine_kwargs) if engine_kwargs else {}
        if state is None:
            state = NetworkState(graph.nodes())
            state.seed_self_rumors()
        self.state = state
        self.total_rounds = 0
        self.total_exchanges = 0
        self.total_messages = 0
        #: Per-phase logical cost and wall clock, in execution order.
        self.phases: list[PhaseTiming] = []
        #: Per-phase vector-ineligibility reason (``None`` for phases that
        #: ran on the vector fast path or were not dispatched), parallel
        #: to :attr:`phases`.
        self.phase_fallbacks: list[Optional[str]] = []
        self.first_complete_round: Optional[int] = None
        self._watch = watch
        if watch is not None and watch(self.state):
            self.first_complete_round = 0

    def _dispatch_phase(
        self, protocol_factory: Callable[[Node], NodeProtocol]
    ) -> tuple[Callable[..., Any], str, Optional[str]]:
        """Pick this phase's engine: ``(factory, backend label, reason)``.

        A single probe instance (never ``setup()``-ed, never run) answers
        the same eligibility questions the vector engine would raise on —
        so ineligible phases fall back to the scalar engine instead of
        aborting the composite run.
        """
        if not self._dispatch:
            label = (
                "vector" if self.engine_factory is VectorEngine else "scalar"
            )
            return self.engine_factory, label, None
        nodes = self.graph.nodes()
        if not nodes:
            return VectorEngine, "vector", None
        reason = vector_ineligibility(protocol_factory(nodes[0]))
        if reason is None:
            return VectorEngine, "vector", None
        return Engine, "scalar-fallback", reason

    def run_phase(
        self,
        protocol_factory: Callable[[Node], NodeProtocol],
        latencies_known: bool = True,
        max_rounds: int = 1_000_000,
        name: str = "phase",
        until: Optional[Callable[[NetworkState], bool]] = None,
    ) -> Engine:
        """Run one phase until every node's protocol is done.

        ``until`` is an optional completion gate over the shared state —
        e.g. "every node knows ≥ m rumors" via
        :func:`~repro.sim.runner.min_rumors_complete` — that ends the
        phase early, checked between rounds exactly like the scalar
        loop would (a phase may park on its round budget first).

        Returns the finished engine so callers can inspect protocol
        instances (e.g. collect measured latencies after discovery).
        """
        factory, backend_label, reason = self._dispatch_phase(protocol_factory)
        if factory is VectorEngine and isinstance(self.state, VectorState):
            # A preceding scalar phase may have grown the rumor universe
            # past what this layout was picked for: re-pick (no-op when
            # the layout is already right, a words-matrix copy otherwise).
            self.state = self.state.to_layout()
        extra = dict(self.engine_kwargs)
        if self.recorder is not None:
            extra["recorder"] = self.recorder
        engine = factory(
            self.graph,
            protocol_factory,
            state=self.state,
            latencies_known=latencies_known,
            **extra,
        )
        # The vector backend adopts a converted copy of a plain
        # NetworkState; follow it so the watch predicate and later phases
        # see the state the engine actually mutates.
        engine_state = getattr(engine, "state", None)
        if engine_state is not None and engine_state is not self.state:
            self.state = engine_state
        with span(f"phase.{name}") as timer:
            while not engine.all_done():
                if until is not None and until(self.state):
                    break
                if engine.round >= max_rounds:
                    raise SimulationError(
                        f"{name} exceeded max_rounds={max_rounds} within one phase"
                    )
                engine.step()
                self.total_rounds += 1
                if (
                    self._watch is not None
                    and self.first_complete_round is None
                    and self._watch(self.state)
                ):
                    self.first_complete_round = self.total_rounds
        self.phases.append(
            PhaseTiming(
                name=name,
                rounds=engine.round,
                exchanges=engine.metrics.exchanges,
                seconds=timer.seconds,
                backend=backend_label,
            )
        )
        self.phase_fallbacks.append(reason)
        nodes = self.graph.nodes()
        lookup = getattr(engine, "protocol", None)
        protocol_name = (
            type(lookup(nodes[0])).__name__
            if nodes and lookup is not None
            else "unknown"
        )
        default_registry().counter(
            "sim_phase_backend",
            "protocol phases executed per engine backend (with fallback reason)",
        ).inc(
            backend=backend_label,
            protocol=protocol_name,
            reason=_fallback_slug(reason),
        )
        self.total_exchanges += engine.metrics.exchanges
        self.total_messages += engine.metrics.messages
        # Last look for any attached invariant checkers before the phase's
        # engine is retired (duck-typed: ReferenceEngine has a no-op).
        finish = getattr(engine, "finish_checks", None)
        if finish is not None:
            finish()
        return engine
