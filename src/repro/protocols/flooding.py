"""Round-robin flooding baselines.

Two variants:

* **push--pull flooding** — every node cycles through its neighbors
  round-robin, always initiating.  A natural deterministic baseline.
* **push-only flooding** — only nodes that already know the target rumor
  initiate.  Footnote 2 of the paper observes that without the ability to
  pull, information exchange takes ``Ω(nD)`` time on a star: the center can
  push to only one leaf per round.  This variant exists to demonstrate that
  separation (see the ablation benchmark).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Hashable, Optional

from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Engine, NodeContext, NodeProtocol
from repro.sim.metrics import DisseminationResult
from repro.sim.runner import broadcast_complete, run_until_complete
from repro.sim.state import NetworkState
from repro.sim.vector import (
    VectorProgram,
    resolve_engine_backend,
    state_budget,
)

__all__ = ["FloodingProtocol", "run_flooding"]


class FloodingProtocol(NodeProtocol):
    """Cycle deterministically through neighbors, one initiation per round.

    Parameters
    ----------
    push_only_rumor:
        If given, the node only initiates while it knows this rumor
        (push-only flooding); pulls by uninformed nodes are suppressed.
    """

    def __init__(self, push_only_rumor: Optional[Hashable] = None) -> None:
        self._push_only_rumor = push_only_rumor
        self._neighbors: list[Node] = []
        self._next = 0

    def setup(self, ctx: NodeContext) -> None:
        self._neighbors = sorted(ctx.neighbors(), key=repr)

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        if not self._neighbors:
            return None
        if self._push_only_rumor is not None and not ctx.state.knows(
            ctx.node, self._push_only_rumor
        ):
            return None
        target = self._neighbors[self._next % len(self._neighbors)]
        self._next += 1
        return target

    def vector_program(self) -> VectorProgram:
        """Oblivious: deterministic round-robin, optionally knows-gated."""
        gate = (
            ("knows", self._push_only_rumor)
            if self._push_only_rumor is not None
            else None
        )
        return VectorProgram(kind="round_robin", gate=gate, start=self._next)


def run_flooding(
    graph: LatencyGraph,
    source: Optional[Node] = None,
    push_only: bool = False,
    max_rounds: int = 1_000_000,
    allow_incomplete: bool = False,
    backend: Optional[str] = None,
    max_state_bytes: Optional[int] = None,
) -> DisseminationResult:
    """Broadcast one rumor from ``source`` by round-robin flooding.

    ``backend`` selects the engine implementation (``"scalar"`` or
    ``"vector"``); ``None`` defers to the ambient
    :func:`~repro.sim.vector.engine_backend` scope.  ``max_state_bytes``
    bounds the vector backend's state-layout allocations (see
    :func:`~repro.sim.vector.state_budget`); ``None`` defers to the
    ambient budget scope.
    """
    if source is None:
        source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    budget = (
        state_budget(max_state_bytes)
        if max_state_bytes is not None
        else nullcontext()
    )
    with budget:
        engine = resolve_engine_backend(backend)(
            graph,
            lambda node: FloodingProtocol(rumor if push_only else None),
            state=state,
            latencies_known=False,
        )
    name = "flooding[push-only]" if push_only else "flooding[push-pull]"
    return run_until_complete(
        engine,
        broadcast_complete(rumor),
        protocol_name=name,
        max_rounds=max_rounds,
        allow_incomplete=allow_incomplete,
    )
