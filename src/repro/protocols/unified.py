"""Unified upper bound: push--pull and the spanner algorithm in parallel.

Theorem 20: running classical push--pull and the (discover +) spanner
algorithm side by side solves all-to-all dissemination in

* ``O(min((D + Δ) log³ n, (ℓ*/φ*) log n))`` when latencies are unknown, and
* ``O(min(D log³ n, (ℓ*/φ*) log n))`` when latencies are known.

The paper's parallel composition interleaves the two protocols on odd/even
rounds (each node still initiates at most one exchange per round), which
slows each component down by exactly a factor of two.  We simulate the two
components independently and report ``min(2·t_pushpull, 2·t_spanner)`` —
the same quantity, without having to thread two protocols through one
engine.  The report says which component won, which is the crossover datum
the Theorem 8 experiments care about.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.discovery import run_general_eid_unknown_latencies
from repro.protocols.eid import run_general_eid
from repro.protocols.push_pull import run_push_pull

__all__ = ["UnifiedReport", "run_unified"]


@dataclasses.dataclass(frozen=True)
class UnifiedReport:
    """Outcome of the parallel composition.

    Attributes
    ----------
    rounds:
        Completion time of the composition (winner's time, doubled for the
        odd/even interleaving).
    winner:
        ``"push-pull"`` or ``"spanner"``.
    push_pull_rounds, spanner_rounds:
        Stand-alone completion times of the two components (undoubled).
    """

    rounds: int
    winner: str
    push_pull_rounds: int
    spanner_rounds: int


def run_unified(
    graph: LatencyGraph,
    latencies_known: bool,
    seed: int = 0,
    max_rounds: int = 5_000_000,
) -> UnifiedReport:
    """Run both components and report the parallel composition's time.

    Parameters
    ----------
    graph:
        The network.
    latencies_known:
        Selects the spanner component: General EID (known) or the
        discover-then-EID pipeline (unknown).  Push--pull never needs
        latencies.
    seed:
        Seed shared by both components.
    """
    push_pull = run_push_pull(
        graph,
        mode="all_to_all",
        seed=seed,
        max_rounds=max_rounds,
        allow_incomplete=True,
    )
    push_pull_rounds = push_pull.rounds if push_pull.complete else max_rounds

    if latencies_known:
        spanner_report = run_general_eid(graph, seed=seed, max_rounds=max_rounds)
    else:
        spanner_report = run_general_eid_unknown_latencies(
            graph, seed=seed, max_rounds=max_rounds
        )
    # The spanner component has *completed* dissemination at
    # first_complete_round; the remaining rounds are termination detection.
    spanner_rounds = (
        spanner_report.first_complete_round
        if spanner_report.first_complete_round is not None
        else spanner_report.rounds
    )

    if push_pull_rounds <= spanner_rounds:
        winner = "push-pull"
        rounds = 2 * push_pull_rounds
    else:
        winner = "spanner"
        rounds = 2 * spanner_rounds
    return UnifiedReport(
        rounds=rounds,
        winner=winner,
        push_pull_rounds=push_pull_rounds,
        spanner_rounds=spanner_rounds,
    )
