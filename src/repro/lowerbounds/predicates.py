"""Target-set predicates for the guessing game.

A predicate is a callable ``(m, rng) -> frozenset[Pair]`` producing the
oracle's initial target in game coordinates (``a ∈ [0, m)``,
``b ∈ [m, 2m)``).  The two predicates the paper's lower bounds use:

* :func:`singleton_predicate` — ``|T| = 1``, one uniformly random pair
  (Lemma 4 / Theorem 6);
* :func:`random_predicate` — each pair joins independently with
  probability ``p`` (``Random_p``, Lemma 5 / Theorem 7).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import GameError
from repro.lowerbounds.game import Pair

__all__ = ["Predicate", "singleton_predicate", "random_predicate", "fixed_predicate"]

Predicate = Callable[[int, random.Random], frozenset]


def singleton_predicate() -> Predicate:
    """``|T| = 1``: a single pair chosen uniformly at random."""

    def predicate(m: int, rng: random.Random) -> frozenset:
        return frozenset({(rng.randrange(m), m + rng.randrange(m))})

    return predicate


def random_predicate(p: float) -> Predicate:
    """``Random_p``: each of the ``m²`` pairs joins independently w.p. ``p``."""
    if not 0.0 <= p <= 1.0:
        raise GameError(f"p must be in [0, 1], got {p}")

    def predicate(m: int, rng: random.Random) -> frozenset:
        return frozenset(
            (a, m + b)
            for a in range(m)
            for b in range(m)
            if rng.random() < p
        )

    return predicate


def fixed_predicate(target: frozenset) -> Predicate:
    """A predicate returning a pre-chosen target (for deterministic tests)."""

    def predicate(_m: int, _rng: random.Random) -> frozenset:
        return target

    return predicate
