"""The deferred-decision oracle behind Lemma 5's analysis.

The proof of Lemma 5 observes that for the ``Random_p`` predicate, "we can
assume that the target membership of an edge e is determined only at the
point when Alice submits e as a guess."  This module implements that
*lazy* oracle: each pair's membership coin is flipped the first time
anyone needs it — usually when Alice guesses the pair, or when the oracle
must answer whether the game is over (it then resolves the still-unflipped
coins of unhit columns).  Because the coins are independent, flipping them
earlier or later never changes the joint distribution, so a lazy game with
the same coin stream is *behaviourally equivalent* to an eager game whose
target was sampled up front — a property the test suite verifies by
coupling.

What the lazy form buys:

* the geometric structure of the proof is directly visible —
  :attr:`LazyGuessingGame.fresh_pair_guesses` counts exactly the trials of
  the proof's ``Z_j`` variables, each succeeding with probability ``p``;
* huge ``m`` becomes cheap: the eager oracle materializes ``m²`` coins,
  the lazy one only those actually touched.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import GameError
from repro.lowerbounds.game import Pair

__all__ = ["LazyGuessingGame"]


class LazyGuessingGame:
    """``Guessing(2m, Random_p)`` with membership decided on demand.

    Parameters
    ----------
    m:
        Side size; Alice may guess at most ``2m`` pairs per round.
    p:
        The ``Random_p`` membership probability.
    seed:
        The oracle's private randomness.  Each pair's coin is derived from
        ``(seed, pair)`` independently, so the membership function does not
        depend on the order coins are flipped — :meth:`eager_target` can
        materialize the exact same target an eager oracle would see, which
        is how the coupling test verifies equivalence.
    """

    def __init__(self, m: int, p: float, seed: int) -> None:
        if m < 1:
            raise GameError(f"m must be >= 1, got {m}")
        if not 0.0 <= p <= 1.0:
            raise GameError(f"p must be in [0, 1], got {p}")
        self.m = m
        self.p = p
        self._seed = seed
        self._membership: dict[Pair, bool] = {}
        self._guessed: set[Pair] = set()
        self._hit_columns: set[int] = set()
        self.rounds = 0
        self.total_guesses = 0
        self.fresh_pair_guesses = 0
        self.coins_flipped = 0

    # ------------------------------------------------------------------
    def _flip(self, pair: Pair) -> bool:
        if pair not in self._membership:
            coin = random.Random(f"{self._seed}:{pair[0]}:{pair[1]}").random()
            self._membership[pair] = coin < self.p
            self.coins_flipped += 1
        return self._membership[pair]

    def eager_target(self) -> frozenset[Pair]:
        """The full target an eager oracle with the same seed would sample.

        Flips every remaining coin; exists for the coupling equivalence
        test and for post-hoc analysis.
        """
        for a in range(self.m):
            for b in range(self.m, 2 * self.m):
                self._flip((a, b))
        return self.revealed_target()

    def _column_has_unhit_target(self, b: int) -> bool:
        if b in self._hit_columns:
            return False
        return any(self._flip((a, b)) for a in range(self.m))

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the (lazily resolved) target set has emptied.

        Querying this may flip remaining coins of unhit columns — which is
        distribution-preserving, since the coins are independent.
        """
        return not any(
            self._column_has_unhit_target(b) for b in range(self.m, 2 * self.m)
        )

    def revealed_target(self) -> frozenset[Pair]:
        """Pairs whose membership coin has come up 'target' so far."""
        return frozenset(pair for pair, member in self._membership.items() if member)

    # ------------------------------------------------------------------
    def guess(self, guesses: Iterable[Pair]) -> frozenset[Pair]:
        """Submit one round of guesses; returns the hits.

        A guess hits when its membership coin is 'target' and its column
        has not already been eliminated by an earlier hit.
        """
        guess_set = set(guesses)
        if len(guess_set) > 2 * self.m:
            raise GameError(
                f"at most {2 * self.m} guesses per round, got {len(guess_set)}"
            )
        self.rounds += 1
        self.total_guesses += len(guess_set)
        hits = set()
        for pair in sorted(guess_set):
            a, b = pair
            if not (0 <= a < self.m and self.m <= b < 2 * self.m):
                raise GameError(f"guess {pair} outside A x B for m={self.m}")
            if pair not in self._guessed:
                self._guessed.add(pair)
                self.fresh_pair_guesses += 1
            if self._flip(pair) and b not in self._hit_columns:
                hits.add(pair)
        for _, b in hits:
            self._hit_columns.add(b)
        return frozenset(hits)
