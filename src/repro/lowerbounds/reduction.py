"""The gossip → guessing-game reduction (Lemma 3).

Lemma 3: if a gossip algorithm solves local broadcast on the gadget network
``G(P)`` (or ``Gsym(P)``) in ``t`` rounds, then Alice can solve
``Guessing(2m, P)`` in at most ``t`` rounds — she simulates the algorithm,
and whenever the simulation activates a cross edge she submits that edge's
id pair as a guess (the oracle's answer reveals the edge's latency).

:func:`simulate_gossip_as_guessing` *executes* that reduction: it runs a
real protocol on a built gadget while feeding every round's cross-edge
activations into a live :class:`~repro.lowerbounds.game.GuessingGame`
with the gadget's own target, then verifies the lemma's conclusion — by the
round local broadcast completes, the game is solved.  Because each of the
``2m`` gadget nodes initiates at most one exchange per round, Alice's
per-round guess budget of ``2m`` is respected automatically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.errors import GameError
from repro.graphs.gadgets import GadgetNetwork
from repro.graphs.latency_graph import Node
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.runner import local_broadcast_complete
from repro.sim.state import NetworkState
from repro.lowerbounds.game import GuessingGame, target_from_gadget

__all__ = ["ReductionOutcome", "simulate_gossip_as_guessing"]


@dataclasses.dataclass(frozen=True)
class ReductionOutcome:
    """What happened when a gossip run was replayed as a guessing game.

    Attributes
    ----------
    gossip_rounds:
        Rounds until the gossip algorithm completed local broadcast (or the
        budget ran out).
    game_rounds:
        Round at which the game's target emptied (``None`` if it never did).
    gossip_complete:
        Whether local broadcast completed within the budget.
    lemma3_holds:
        Lemma 3's conclusion: gossip completion implies the game was solved
        by the same round.
    guesses_submitted:
        Total cross-edge guesses Alice submitted.
    """

    gossip_rounds: int
    game_rounds: Optional[int]
    gossip_complete: bool
    lemma3_holds: bool
    guesses_submitted: int


def simulate_gossip_as_guessing(
    gadget: GadgetNetwork,
    protocol_factory: Callable[[Node], NodeProtocol],
    max_rounds: int = 200_000,
    local_max_latency: Optional[int] = None,
) -> ReductionOutcome:
    """Run the Lemma 3 reduction on a concrete gadget and protocol.

    Parameters
    ----------
    gadget:
        A gadget network (its ``target`` becomes the game's target).
    protocol_factory:
        Per-node protocol, e.g. push--pull with per-node RNGs.
    max_rounds:
        Round budget for the gossip run.
    local_max_latency:
        The ℓ-local-broadcast threshold used as the completion condition;
        defaults to the gadget's fast latency — only fast edges can carry a
        right-side node's first rumor, which is what the reduction exploits.
    """
    m = len(gadget.left)
    game = GuessingGame(m, target_from_gadget(m, gadget.target))
    left_index = {node: i for i, node in enumerate(gadget.left)}
    right_index = {node: m + j for j, node in enumerate(gadget.right)}

    state = NetworkState(gadget.graph.nodes())
    state.seed_self_rumors()
    engine = Engine(gadget.graph, protocol_factory, state=state, latencies_known=False)
    threshold = (
        local_max_latency if local_max_latency is not None else gadget.fast_latency
    )
    done = local_broadcast_complete(threshold)
    game_rounds: Optional[int] = None
    guesses_submitted = 0

    while not done(engine) and engine.round < max_rounds:
        engine.step()
        guesses = set()
        for u, v in engine.last_initiations:
            if u in left_index and v in right_index:
                guesses.add((left_index[u], right_index[v]))
            elif v in left_index and u in right_index:
                guesses.add((left_index[v], right_index[u]))
        if len(guesses) > 2 * m:
            raise GameError(
                "reduction produced more cross activations than the guess budget"
            )
        if not game.done:
            game.guess(guesses)
            guesses_submitted += len(guesses)
            if game.done and game_rounds is None:
                game_rounds = engine.round
        elif game_rounds is None:
            game_rounds = engine.round

    gossip_complete = done(engine)
    lemma3_holds = (not gossip_complete) or (
        game_rounds is not None and game_rounds <= engine.round
    )
    return ReductionOutcome(
        gossip_rounds=engine.round,
        game_rounds=game_rounds,
        gossip_complete=gossip_complete,
        lemma3_holds=lemma3_holds,
        guesses_submitted=guesses_submitted,
    )
