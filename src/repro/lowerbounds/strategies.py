"""Alice strategies for the guessing game (Lemmas 4-5).

Three strategies, matching the cases the paper analyzes:

* :func:`random_guessing_strategy` — the *oblivious* strategy of Lemma 5's
  second part: every round, one uniformly random ``b`` for each ``a ∈ A``
  and one uniformly random ``a`` for each ``b ∈ B`` (2m guesses).  This is
  exactly what push--pull gossip induces under the Lemma 3 reduction, and
  it needs ``Ω(log(m)/p)`` rounds in expectation — a ``log m`` factor worse
  than adaptive play (the coupon-collector tail over the columns of ``B``).
* :func:`fresh_pair_strategy` — the adaptive strategy behind Lemma 5's
  general ``Ω(1/p)`` bound: never repeat a guess, never guess an already
  eliminated column.  Each guess hits with probability ``p`` fresh.
* :func:`systematic_sweep_strategy` — deterministic row-major sweep; the
  natural deterministic baseline for Lemma 4's ``Ω(m)`` singleton bound.

A strategy is a callable ``(game, rng) -> None`` that submits one round of
guesses; :func:`play_game` drives one to completion and returns the round
count.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import GameError
from repro.lowerbounds.game import GuessingGame, Pair

__all__ = [
    "Strategy",
    "random_guessing_strategy",
    "fresh_pair_strategy",
    "systematic_sweep_strategy",
    "play_game",
]

Strategy = Callable[[GuessingGame, random.Random], None]


def random_guessing_strategy() -> Strategy:
    """Oblivious random guessing (the push--pull analogue)."""

    def step(game: GuessingGame, rng: random.Random) -> None:
        m = game.m
        guesses = set()
        for a in range(m):
            guesses.add((a, m + rng.randrange(m)))
        for b in range(m, 2 * m):
            guesses.add((rng.randrange(m), b))
        game.guess(guesses)

    return step


def fresh_pair_strategy() -> Strategy:
    """Adaptive: guess fresh pairs in random order, skipping cleared columns.

    Columns are *cleared* when some pair in them was hit (the oracle's
    update removes them from the target); Alice observes her hits, so she
    never wastes guesses there.
    """
    state: dict[int, object] = {}

    def step(game: GuessingGame, rng: random.Random) -> None:
        if "order" not in state:
            m = game.m
            order = [(a, m + b) for a in range(m) for b in range(m)]
            rng.shuffle(order)
            state["order"] = iter(order)
            state["cleared"] = set()
            state["budget"] = 2 * m
        cleared: set = state["cleared"]  # type: ignore[assignment]
        guesses: list[Pair] = []
        for pair in state["order"]:  # type: ignore[union-attr]
            if pair[1] in cleared:
                continue
            guesses.append(pair)
            if len(guesses) >= state["budget"]:  # type: ignore[operator]
                break
        if not guesses:
            # Every pair has been guessed, so every target pair was hit and
            # the game must already be over.
            raise GameError("fresh-pair strategy exhausted with a nonempty target")
        hits = game.guess(guesses)
        cleared.update(b for _, b in hits)

    return step


def systematic_sweep_strategy() -> Strategy:
    """Deterministic row-major sweep over all ``m²`` pairs, 2m per round."""
    state = {"position": 0}

    def step(game: GuessingGame, rng: random.Random) -> None:
        m = game.m
        total = m * m
        guesses = []
        while len(guesses) < 2 * m and state["position"] < total:
            a, b = divmod(state["position"], m)
            guesses.append((a, m + b))
            state["position"] += 1
        if not guesses:
            # Sweep exhausted without emptying the target — should be
            # impossible, since sweeping everything hits every target pair.
            raise GameError("systematic sweep exhausted with a nonempty target")
        game.guess(guesses)

    return step


def play_game(
    game: GuessingGame,
    strategy_factory: Callable[[], Strategy],
    rng: random.Random,
    max_rounds: int = 1_000_000,
) -> int:
    """Drive ``strategy`` until the target empties; returns rounds used."""
    strategy = strategy_factory()
    while not game.done:
        if game.rounds >= max_rounds:
            raise GameError(f"game exceeded max_rounds={max_rounds}")
        strategy(game, rng)
    return game.rounds
