"""The combinatorial guessing game of Section 3.1.

Alice plays against an oracle on the complete bipartite pair set ``A x B``
with ``|A| = |B| = m``.  The oracle fixes a hidden *target set*
``T ⊆ A x B`` drawn from a predicate.  Each round Alice submits at most
``2m`` guesses; the oracle reveals the hits, and every target pair sharing a
B-component with a *hit* is removed from the target.  The game ends when the
target is empty — i.e. when every ``b ∈ T^B`` has been hit at least once.

Note on Eq. (2): read literally, the paper's update rule removes pairs whose
B-component was merely *guessed* (``X_r^B``); the surrounding prose ("if any
edge (u, v) in the target set is guessed ... all adjacent edges (x, v) in
the target set are removed") and the winning condition ("for every
``b ∈ T_1^B`` there was some ``(a', b) ∈ X_r ∩ T_r``") make clear that only
B-components of actual **hits** eliminate — otherwise Alice could clear the
whole game in one round by guessing one pair per column.  We implement the
prose semantics.

Concretely ``A = {0, ..., m-1}`` and ``B = {m, ..., 2m-1}``; a *pair* is a
tuple ``(a, b)`` with ``a ∈ A`` and ``b ∈ B``.  Predicates in
:mod:`repro.lowerbounds.predicates` produce targets in this coordinate
system (note: :mod:`repro.graphs.gadgets` indexes both sides from 0; use
:func:`target_from_gadget` to convert).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GameError

__all__ = ["Pair", "GuessingGame", "target_from_gadget"]

Pair = tuple[int, int]


def target_from_gadget(m: int, gadget_target: Iterable[tuple[int, int]]) -> frozenset[Pair]:
    """Convert a gadget target (both sides 0-indexed) to game coordinates.

    The gadget modules use ``(i, j)`` with ``i, j ∈ [0, m)``; the game uses
    ``(i, m + j)``.
    """
    return frozenset((i, m + j) for i, j in gadget_target)


class GuessingGame:
    """One playable instance of ``Guessing(2m, P)``.

    Parameters
    ----------
    m:
        Side size; Alice may guess at most ``2m`` pairs per round.
    target:
        The oracle's initial target set ``T_1`` in game coordinates
        (``a ∈ [0, m)``, ``b ∈ [m, 2m)``).
    """

    def __init__(self, m: int, target: frozenset[Pair]) -> None:
        if m < 1:
            raise GameError(f"m must be >= 1, got {m}")
        self.m = m
        for a, b in target:
            if not (0 <= a < m and m <= b < 2 * m):
                raise GameError(f"target pair {(a, b)} outside A x B for m={m}")
        self.initial_target = frozenset(target)
        self._target = set(target)
        self.rounds = 0
        self.total_guesses = 0
        self.hits: set[Pair] = set()

    @property
    def remaining_target(self) -> frozenset[Pair]:
        """The current target set ``T_r`` (the oracle's private state)."""
        return frozenset(self._target)

    @property
    def done(self) -> bool:
        """Whether the target set is empty (the oracle would answer *halt*)."""
        return not self._target

    def guess(self, guesses: Iterable[Pair]) -> frozenset[Pair]:
        """Submit one round of guesses; returns the hits ``X_r ∩ T_r``.

        Raises
        ------
        GameError
            If more than ``2m`` distinct guesses are submitted or a guess
            lies outside ``A x B``.
        """
        guess_set = set(guesses)
        if len(guess_set) > 2 * self.m:
            raise GameError(
                f"at most {2 * self.m} guesses per round, got {len(guess_set)}"
            )
        for a, b in guess_set:
            if not (0 <= a < self.m and self.m <= b < 2 * self.m):
                raise GameError(f"guess {(a, b)} outside A x B for m={self.m}")
        self.rounds += 1
        self.total_guesses += len(guess_set)
        round_hits = frozenset(guess_set & self._target)
        hit_b = {b for _, b in round_hits}
        if hit_b:
            self._target = {(a, b) for a, b in self._target if b not in hit_b}
        self.hits |= round_hits
        return round_hits
