"""Lower-bound machinery: the guessing game, Alice strategies, and Lemma 3."""

from repro.lowerbounds.game import GuessingGame, Pair, target_from_gadget
from repro.lowerbounds.predicates import (
    Predicate,
    fixed_predicate,
    random_predicate,
    singleton_predicate,
)
from repro.lowerbounds.reduction import ReductionOutcome, simulate_gossip_as_guessing
from repro.lowerbounds.strategies import (
    Strategy,
    fresh_pair_strategy,
    play_game,
    random_guessing_strategy,
    systematic_sweep_strategy,
)

__all__ = [
    "GuessingGame",
    "Pair",
    "Predicate",
    "ReductionOutcome",
    "Strategy",
    "fixed_predicate",
    "fresh_pair_strategy",
    "play_game",
    "random_guessing_strategy",
    "random_predicate",
    "simulate_gossip_as_guessing",
    "singleton_predicate",
    "systematic_sweep_strategy",
    "target_from_gadget",
]
