"""Analytic bound calculators: the paper's predicted running times.

For a concrete graph these compute the quantities appearing in the paper's
theorem statements so experiments can compare measured times against them:

* ``D`` — weighted diameter, ``Δ`` — max degree;
* ``ℓ*/φ*`` — the weighted-conductance term (Theorem 12);
* the lower-bound envelope ``min(D + Δ, ℓ*/φ*)`` (Theorems 6-8);
* the upper-bound envelopes of Theorem 20.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.conductance.weighted import WeightedConductance, weighted_conductance
from repro.graphs.latency_graph import LatencyGraph

__all__ = ["GraphBounds", "compute_bounds"]


@dataclasses.dataclass(frozen=True)
class GraphBounds:
    """Every quantity from the paper's bound statements, for one graph.

    Attributes
    ----------
    n, diameter, max_degree:
        Basic graph parameters (``diameter`` is latency-weighted).
    conductance:
        The weighted-conductance computation (``φ*``, ``ℓ*``, profile).
    """

    n: int
    diameter: int
    max_degree: int
    conductance: WeightedConductance

    @property
    def log_n(self) -> float:
        """``log₂ n`` (at least 1)."""
        return max(1.0, math.log2(self.n))

    @property
    def connectivity_term(self) -> float:
        """``ℓ*/φ*`` — the weighted-conductance dissemination term."""
        return self.conductance.dissemination_bound

    @property
    def lower_bound_envelope(self) -> float:
        """``min(D + Δ, ℓ*/φ*)`` — the paper's lower bound (up to constants)."""
        return min(self.diameter + self.max_degree, self.connectivity_term)

    @property
    def push_pull_bound(self) -> float:
        """``(ℓ*/φ*)·log n`` — Theorem 12's push--pull upper bound."""
        return self.connectivity_term * self.log_n

    @property
    def known_latency_bound(self) -> float:
        """``min(D log³ n, (ℓ*/φ*) log n)`` — Theorem 20, known latencies."""
        return min(self.diameter * self.log_n**3, self.push_pull_bound)

    @property
    def unknown_latency_bound(self) -> float:
        """``min((D + Δ) log³ n, (ℓ*/φ*) log n)`` — Theorem 20, unknown."""
        return min(
            (self.diameter + self.max_degree) * self.log_n**3, self.push_pull_bound
        )


def compute_bounds(
    graph: LatencyGraph,
    conductance_method: str = "auto",
    diameter_samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> GraphBounds:
    """Compute :class:`GraphBounds` for ``graph``.

    Parameters
    ----------
    graph:
        A connected latency graph.
    conductance_method:
        Passed to :func:`~repro.conductance.weighted.weighted_conductance`.
    diameter_samples:
        If given, the diameter is estimated from this many Dijkstra sources
        (needed for large graphs); ``rng`` must then be provided.
    """
    return GraphBounds(
        n=graph.num_nodes,
        diameter=graph.weighted_diameter(sample_sources=diameter_samples, rng=rng),
        max_degree=graph.max_degree(),
        conductance=weighted_conductance(graph, method=conductance_method, rng=rng),
    )
