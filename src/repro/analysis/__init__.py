"""Analysis helpers: statistics, scaling fits, and analytic bound calculators."""

from repro.analysis.bounds import GraphBounds, compute_bounds
from repro.analysis.curves import (
    growth_phases,
    max_growth_factor,
    sparkline,
    time_to_fraction,
)
from repro.analysis.scaling import correlation, linear_fit, loglog_slope
from repro.analysis.stats import Summary, repeat, summarize

__all__ = [
    "GraphBounds",
    "Summary",
    "compute_bounds",
    "correlation",
    "growth_phases",
    "linear_fit",
    "loglog_slope",
    "max_growth_factor",
    "repeat",
    "sparkline",
    "summarize",
    "time_to_fraction",
]
