"""Repetition statistics for randomized runs.

Every experiment in this library repeats a randomized measurement over a
seed ladder and summarizes it.  :class:`Summary` keeps the usual robust
statistics; :func:`repeat` runs a measurement callable over seeds.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Callable, Sequence

from repro.errors import ExperimentError

__all__ = ["Summary", "summarize", "repeat", "bootstrap_ci"]


@dataclasses.dataclass(frozen=True)
class Summary:
    """Summary statistics of a repeated measurement.

    Attributes
    ----------
    values:
        The raw per-seed observations.
    mean, median, stdev, minimum, maximum:
        The obvious statistics (``stdev`` is 0 for a single observation).
    ci95_half_width:
        Half-width of the normal-approximation 95% confidence interval of
        the mean.
    """

    values: tuple[float, ...]
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    ci95_half_width: float

    @property
    def n(self) -> int:
        """Number of observations."""
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci95_half_width:.1f} (median {self.median:.1f}, n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from raw observations."""
    if not values:
        raise ExperimentError("cannot summarize zero observations")
    data = tuple(float(v) for v in values)
    stdev = statistics.stdev(data) if len(data) > 1 else 0.0
    return Summary(
        values=data,
        mean=statistics.fmean(data),
        median=statistics.median(data),
        stdev=stdev,
        minimum=min(data),
        maximum=max(data),
        ci95_half_width=1.96 * stdev / math.sqrt(len(data)) if len(data) > 1 else 0.0,
    )


def repeat(measure: Callable[[int], float], seeds: Sequence[int]) -> Summary:
    """Run ``measure(seed)`` for each seed and summarize the results."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    return summarize([measure(seed) for seed in seeds])


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = statistics.fmean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for any statistic.

    The normal approximation in :class:`Summary` is fine for means of many
    repetitions; scaling-fit slopes and medians of few, skewed round counts
    want a distribution-free interval.

    Parameters
    ----------
    values:
        The observations (at least 2).
    statistic:
        Callable mapping a sample to a number (default: mean).
    confidence:
        Interval mass, e.g. ``0.95``.
    resamples:
        Bootstrap resamples.
    seed:
        Resampling randomness.

    Returns
    -------
    (low, high):
        The percentile interval.
    """
    import random as _random

    if len(values) < 2:
        raise ExperimentError("bootstrap needs at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ExperimentError(f"resamples must be >= 10, got {resamples}")
    rng = _random.Random(seed)
    data = list(values)
    n = len(data)
    replicates = sorted(
        statistic([data[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = int(tail * (resamples - 1))
    high_index = int((1.0 - tail) * (resamples - 1))
    return replicates[low_index], replicates[high_index]
