"""Informed-curve analysis: how a rumor's reach grows round by round.

Push--pull's classical behaviour has three phases — slow start, exponential
growth while the informed set is small, and a coupon-collector tail — and
the conductance bounds are really statements about the growth phase.  These
helpers turn a recorded ``informed_history`` (see
:func:`repro.protocols.push_pull.run_push_pull` with ``track_progress``)
into the quantities experiments and examples report:

* times to reach fixed fractions of the network,
* the maximum per-round growth factor (the "spread rate"),
* a terminal-friendly sparkline for quick inspection.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExperimentError

__all__ = [
    "time_to_fraction",
    "growth_phases",
    "max_growth_factor",
    "sparkline",
]

_BARS = "▁▂▃▄▅▆▇█"


def _validate(history: Sequence[int], total: int) -> None:
    if not history:
        raise ExperimentError("empty informed history")
    if total < 1:
        raise ExperimentError(f"total must be >= 1, got {total}")
    if any(b < a for a, b in zip(history, history[1:])):
        raise ExperimentError("informed history must be non-decreasing")
    if history[-1] > total:
        raise ExperimentError(
            f"history exceeds the network size: {history[-1]} > {total}"
        )


def time_to_fraction(
    history: Sequence[int], total: int, fraction: float
) -> Optional[int]:
    """First round at which at least ``fraction`` of ``total`` nodes know.

    Returns ``None`` if the history never reaches the fraction.
    """
    _validate(history, total)
    if not 0.0 < fraction <= 1.0:
        raise ExperimentError(f"fraction must be in (0, 1], got {fraction}")
    threshold = fraction * total
    for round_number, informed in enumerate(history):
        if informed >= threshold:
            return round_number
    return None


def growth_phases(history: Sequence[int], total: int) -> dict[str, Optional[int]]:
    """Round indices for the classic 10% / 50% / 90% / 100% milestones."""
    _validate(history, total)
    return {
        "t10": time_to_fraction(history, total, 0.10),
        "t50": time_to_fraction(history, total, 0.50),
        "t90": time_to_fraction(history, total, 0.90),
        "t100": time_to_fraction(history, total, 1.0),
    }


def max_growth_factor(history: Sequence[int], total: int) -> float:
    """The largest per-round multiplicative growth of the informed set.

    For well-connected graphs this approaches 2 (every informed node
    recruits another); low conductance caps it near 1.
    """
    _validate(history, total)
    best = 1.0
    for before, after in zip(history, history[1:]):
        if before > 0:
            best = max(best, after / before)
    return best


def sparkline(history: Sequence[int], total: int, width: int = 40) -> str:
    """A one-line unicode sparkline of the informed fraction over time."""
    _validate(history, total)
    if width < 1:
        raise ExperimentError(f"width must be >= 1, got {width}")
    if len(history) <= width:
        samples = list(history)
    else:
        step = (len(history) - 1) / (width - 1) if width > 1 else 0
        samples = [history[round(i * step)] for i in range(width)]
    chars = []
    for value in samples:
        level = min(len(_BARS) - 1, int(value / total * (len(_BARS) - 1) + 1e-9))
        chars.append(_BARS[level])
    return "".join(chars)
