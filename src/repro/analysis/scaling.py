"""Scaling-law fits for validating asymptotic bounds empirically.

The paper's results are asymptotic (``Ω``/``O``); our experiments validate
their *shape* on finite size ladders.  Two fits cover every case:

* :func:`loglog_slope` — ordinary least squares on ``log y`` vs ``log x``;
  a bound of the form ``y = Θ(x^α)`` shows up as slope ``≈ α``.
* :func:`correlation` — Pearson correlation between a measured series and a
  predicted series (e.g. measured time vs ``(ℓ*/φ*)·log n``); a bound that
  tracks the predictor gives a correlation near 1.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ExperimentError

__all__ = ["loglog_slope", "linear_fit", "correlation"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares ``(slope, intercept)`` of ``ys`` against ``xs``."""
    if len(xs) != len(ys):
        raise ExperimentError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ExperimentError("need at least two points to fit a line")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ExperimentError("degenerate fit: all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The exponent ``α`` in the best power-law fit ``y ≈ c · x^α``."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ExperimentError("log-log fit requires strictly positive data")
    slope, _ = linear_fit([math.log(x) for x in xs], [math.log(y) for y in ys])
    return slope


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two series."""
    if len(xs) != len(ys):
        raise ExperimentError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ExperimentError("need at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        raise ExperimentError("degenerate correlation: a series is constant")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)
