"""Microbenchmarks: the wall-clock trajectory of the hot paths.

This module defines small, stable sets of workloads and a runner that
times them and writes JSON reports under ``benchmarks/results/``.  Four
suites exist:

* ``engine`` — the simulation core (push--pull dissemination, raw
  :class:`~repro.sim.state.NetworkState` churn, done-node scheduling
  overhead); writes ``BENCH_engine.json``.
* ``engine_vector`` — scalar vs vector engine backends on the same
  graphs, plus vector-only scale runs up to ``n = 10^5`` and beyond;
  writes ``BENCH_engine_vector.json``.
* ``engine_scale`` — mega-scale vector-backend runs (``n = 10^5`` quick,
  ``n = 10^6`` full) recording peak rumor-state bytes and the layout
  chosen, so the memory story is gated like the timing story; writes
  ``BENCH_engine_scale.json``.
* ``conductance`` — the analysis pipeline (the ``φ_ℓ`` sweep-cut profile
  behind Definitions 1-2, single-threshold sweeps, ``φ*``/``ℓ*``);
  writes ``BENCH_conductance.json``.

Every workload entry additionally records ``peak_rss_kb`` — the
process-wide resident-set high-water mark (``getrusage``) after the
workload ran — as a schema-compatible additive field.

The workloads use only the public library API, so the same definitions
can time any revision — that is how before/after numbers for a
performance PR are produced:

* ``python -m repro.benchmarking --suite conductance --profile full
  --write-baseline`` on the old revision captures
  ``BENCH_conductance_baseline.json``;
* the same command without ``--write-baseline`` (or the pytest suites
  ``benchmarks/test_bench_*_micro.py``) on the new revision writes the
  report embedding the baseline and per-workload speedups.

See ``docs/PERFORMANCE.md`` for how to read the numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Optional

__all__ = [
    "Workload",
    "engine_microbenchmarks",
    "engine_vector_microbenchmarks",
    "engine_scale_microbenchmarks",
    "conductance_microbenchmarks",
    "microbenchmark_suite",
    "run_microbenchmarks",
    "peak_rss_kb",
    "write_report",
    "RESULTS_DIR",
    "BENCH_PATH",
    "BASELINE_PATH",
    "BENCH_CONDUCTANCE_PATH",
    "CONDUCTANCE_BASELINE_PATH",
    "BENCH_ENGINE_VECTOR_PATH",
    "ENGINE_VECTOR_BASELINE_PATH",
    "BENCH_ENGINE_SCALE_PATH",
    "ENGINE_SCALE_BASELINE_PATH",
    "SUITES",
]

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_engine.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_engine_baseline.json"
BENCH_CONDUCTANCE_PATH = RESULTS_DIR / "BENCH_conductance.json"
CONDUCTANCE_BASELINE_PATH = RESULTS_DIR / "BENCH_conductance_baseline.json"
BENCH_ENGINE_VECTOR_PATH = RESULTS_DIR / "BENCH_engine_vector.json"
ENGINE_VECTOR_BASELINE_PATH = RESULTS_DIR / "BENCH_engine_vector_baseline.json"
BENCH_ENGINE_SCALE_PATH = RESULTS_DIR / "BENCH_engine_scale.json"
ENGINE_SCALE_BASELINE_PATH = RESULTS_DIR / "BENCH_engine_scale_baseline.json"

SUITES = ("engine", "engine_vector", "engine_scale", "conductance")


def peak_rss_kb() -> Optional[int]:
    """The process resident-set high-water mark in KiB (``None`` if
    the platform lacks ``resource``; ``ru_maxrss`` is KiB on Linux)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclasses.dataclass(frozen=True)
class Workload:
    """One named, deterministic engine workload.

    ``run`` executes the workload once and returns metadata to record
    (e.g. the completion round) — the runner times the call around it.
    ``warmup=False`` skips the untimed warmup run: the mega-scale
    workloads are dominated by steady-state array ops, and a second
    multi-minute run would double the suite's wall clock for nothing.
    """

    name: str
    description: str
    run: Callable[[], dict[str, Any]]
    repeats: int = 3
    warmup: bool = True


# ----------------------------------------------------------------------
# Workload definitions.  Keep these stable: BENCH_engine.json numbers are
# only comparable across revisions if the workloads never change shape.
# ----------------------------------------------------------------------

def _pushpull_workload(mode: str, n: int, p: float, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        import random

        from repro.graphs import generators
        from repro.graphs.latency_models import uniform_latency
        from repro.protocols.push_pull import run_push_pull

        graph = generators.erdos_renyi(
            n, p, latency_model=uniform_latency(1, 8), rng=random.Random(0)
        )
        result = run_push_pull(graph, mode=mode, seed=0)
        return {"rounds": result.rounds, "exchanges": result.exchanges, "n": n}

    return Workload(
        name=f"pushpull_{mode}_er_n{n}",
        description=(
            f"push--pull {mode} dissemination on Erdős–Rényi G({n}, {p}) "
            "with uniform latencies 1..8, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def _state_ops_workload(n: int, sweeps: int, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.sim.state import NetworkState

        state = NetworkState(range(n))
        state.seed_self_rumors()
        merges = 0
        for _ in range(sweeps):
            for node in range(n):
                state.merge(node, state.snapshot((node + 1) % n))
                merges += 1
            for node in range(n):
                state.count_knowing(node)
        return {"merges": merges, "n": n}

    return Workload(
        name=f"state_ops_n{n}",
        description=(
            f"raw NetworkState churn: {sweeps} ring sweeps of "
            "snapshot+merge plus count_knowing over every rumor"
        ),
        run=run,
        repeats=repeats,
    )


def _done_skip_workload(n: int, rounds: int, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.graphs.generators import cycle
        from repro.sim.engine import Engine, NodeProtocol

        class Chatter(NodeProtocol):
            """Node 0 keeps pinging its successor; everyone else is done."""

            def __init__(self, node):
                self._node = node

            def on_round(self, ctx):
                return 1 if self._node == 0 else None

            def is_done(self, ctx):
                return self._node != 0

        graph = cycle(n)
        engine = Engine(graph, Chatter)
        engine.run(until=lambda e: e.round >= rounds)
        return {"rounds": engine.round, "n": n}

    return Workload(
        name=f"done_skip_n{n}",
        description=(
            f"round-scan overhead: {n}-cycle where all but one node is "
            f"done from round 0, driven for {rounds} rounds"
        ),
        run=run,
        repeats=repeats,
    )


def engine_microbenchmarks(profile: str) -> list[Workload]:
    """The microbenchmark suite for one profile (``quick`` or ``full``)."""
    from repro.experiments.harness import validate_profile

    validate_profile(profile)
    if profile == "quick":
        return [
            _pushpull_workload("all_to_all", n=400, p=0.03, repeats=3),
            _pushpull_workload("broadcast", n=400, p=0.03, repeats=3),
            _state_ops_workload(n=400, sweeps=3, repeats=3),
            _done_skip_workload(n=400, rounds=2000, repeats=3),
        ]
    return [
        _pushpull_workload("all_to_all", n=2000, p=0.008, repeats=1),
        _pushpull_workload("broadcast", n=2000, p=0.008, repeats=1),
        _state_ops_workload(n=2000, sweeps=3, repeats=1),
        _done_skip_workload(n=2000, rounds=2000, repeats=1),
    ]


@functools.lru_cache(maxsize=None)
def _vector_bench_graph(n: int, avg_degree: float, max_latency: int):
    """The shared engine-backend benchmark graph: connected ER, 1..max_latency.

    Sampled with :func:`~repro.graphs.generators.erdos_renyi_fast` (the
    per-pair sampler is ``O(n²)`` and infeasible at ``n = 10^5``) and
    memoized so scalar and vector workloads time the *engines* on the very
    same graph, not graph construction.
    """
    import random

    from repro.graphs import generators
    from repro.graphs.latency_models import uniform_latency

    return generators.erdos_renyi_fast(
        n,
        avg_degree / n,
        latency_model=uniform_latency(1, max_latency),
        rng=random.Random(0),
    )


def _backend_pushpull_workload(
    backend: str, n: int, avg_degree: float, repeats: int, mode: str = "broadcast"
) -> Workload:
    def run() -> dict[str, Any]:
        from repro.protocols.push_pull import run_push_pull

        graph = _vector_bench_graph(n, avg_degree, 8)
        result = run_push_pull(graph, mode=mode, seed=0, backend=backend)
        return {
            "rounds": result.rounds,
            "exchanges": result.exchanges,
            "n": n,
            "backend": backend,
        }

    return Workload(
        name=f"pushpull_{mode}_{backend}_er_n{n}",
        description=(
            f"push--pull {mode} on the {backend} backend over fast-sampled "
            f"Erdős–Rényi G({n}, {avg_degree}/n) with uniform latencies 1..8, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def _backend_flooding_workload(n: int, avg_degree: float, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.protocols.flooding import run_flooding

        graph = _vector_bench_graph(n, avg_degree, 8)
        result = run_flooding(graph, backend="vector")
        return {"rounds": result.rounds, "exchanges": result.exchanges, "n": n}

    return Workload(
        name=f"flooding_vector_er_n{n}",
        description=(
            f"round-robin flooding on the vector backend over fast-sampled "
            f"Erdős–Rényi G({n}, {avg_degree}/n) with uniform latencies 1..8, "
            "seed 0 (scale smoke toward n = 10^6)"
        ),
        run=run,
        repeats=repeats,
    )


def _composite_chain_workload(
    backend: str, n: int, avg_degree: float, repeats: int
) -> Workload:
    """Phase-chained composite: broadcast phase, then all-to-all phase.

    The composite-dispatch acceptance workload: both phases are
    vector-eligible, so under ``backend="vector"`` the chain rides the
    array fast path end to end — including the state carry-over between
    phases (the broadcast-era layout is re-picked when the second phase
    grows the rumor universe to all ``n`` ids).
    """

    def run() -> dict[str, Any]:
        from repro.protocols.base import PhaseRunner, per_node_rng_factory
        from repro.protocols.push_pull import PushPullProtocol
        from repro.sim.runner import min_rumors_complete
        from repro.sim.state import NetworkState

        graph = _vector_bench_graph(n, avg_degree, 8)
        nodes = graph.nodes()
        state = NetworkState(nodes)
        state.add_rumor(nodes[0], "chain-seed")
        runner = PhaseRunner(graph, state=state, backend=backend)
        make_rng = per_node_rng_factory(0)
        runner.run_phase(
            lambda node: PushPullProtocol(make_rng(node)),
            until=min_rumors_complete(1),
            name="broadcast",
        )
        runner.state.seed_self_rumors()
        runner.run_phase(
            lambda node: PushPullProtocol(make_rng(node)),
            until=min_rumors_complete(n + 1),
            name="all-to-all",
        )
        return {
            "rounds": runner.total_rounds,
            "exchanges": runner.total_exchanges,
            "n": n,
            "backend": backend,
            "phase_backends": [phase.backend for phase in runner.phases],
        }

    return Workload(
        name=f"composite_chain_{backend}_er_n{n}",
        description=(
            f"phase-chained push--pull (broadcast, then all-to-all over the "
            f"same state) on the {backend} backend via PhaseRunner over "
            f"fast-sampled Erdős–Rényi G({n}, {avg_degree}/n), latencies 1..8"
        ),
        run=run,
        repeats=repeats,
    )


def _eid_workload(
    backend: str, n: int, avg_degree: float, diameter: int, repeats: int
) -> Workload:
    """EID(D) — the E8 acceptance composite — on one engine backend.

    Mixed-dispatch under ``backend="vector"``: the ℓ-DTG measurement
    phases fall back to the scalar engine (adaptive walks) while the RR
    Broadcast phases ride the fast path; the committed pair documents
    the fallback cost next to the all-eligible chain's speedup.
    """

    def run() -> dict[str, Any]:
        from repro.protocols.eid import run_eid

        graph = _vector_bench_graph(n, avg_degree, 8)
        report = run_eid(graph, diameter=diameter, seed=0, backend=backend)
        return {
            "rounds": report.rounds,
            "exchanges": report.exchanges,
            "n": n,
            "backend": backend,
            "phase_backends": sorted(
                {phase.backend for phase in report.phases}
            ),
        }

    return Workload(
        name=f"eid_{backend}_er_n{n}",
        description=(
            f"EID(D={diameter}) composite (Algorithm 3: ℓ-DTG phases + RR "
            f"Broadcast) on the {backend} backend over fast-sampled "
            f"Erdős–Rényi G({n}, {avg_degree}/n), latencies 1..8, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def _ldtg_workload(
    backend: str, n: int, avg_degree: float, max_latency: int, repeats: int
) -> Workload:
    """ℓ-DTG — the E13 acceptance workload — on one engine backend.

    ℓ-DTG is adaptive, so the vector leg measures the scalar-fallback
    dispatch overhead (expected ≈ 1x), pinning that composites without
    vector-eligible phases do not regress under ``--backend vector``.
    """

    def run() -> dict[str, Any]:
        from repro.protocols.dtg import run_ldtg

        graph = _vector_bench_graph(n, avg_degree, 8)
        result = run_ldtg(graph, max_latency, backend=backend)
        return {
            "rounds": result.rounds,
            "exchanges": result.exchanges,
            "n": n,
            "backend": backend,
            "complete": result.complete,
        }

    return Workload(
        name=f"ldtg_{backend}_er_n{n}",
        description=(
            f"{max_latency}-DTG (ℓ-local broadcast measurement phase) on "
            f"the {backend} backend over fast-sampled Erdős–Rényi "
            f"G({n}, {avg_degree}/n), latencies 1..8"
        ),
        run=run,
        repeats=repeats,
    )


def _mirror_pushpull_workload(
    mirror: str, n: int, avg_degree: float, repeats: int
) -> Workload:
    """Recorder-attached vector broadcast under one mirror-path mode.

    ``mirror="batched"`` is the default event-mirror path (rounds are
    computed with the array kernels, events emitted from the precomputed
    buckets); ``mirror="sequential"`` forces the per-exchange replay via
    ``REPRO_VECTOR_MIRROR`` — the PR-7 behavior — so the committed pair
    is the mirror-path before/after table.
    """
    if mirror not in ("batched", "sequential"):
        raise ValueError(f"mirror must be 'batched' or 'sequential', not {mirror!r}")

    def run() -> dict[str, Any]:
        import os

        from repro.obs.recorder import CounterSink, Recorder
        from repro.protocols.push_pull import run_push_pull

        graph = _vector_bench_graph(n, avg_degree, 8)
        sink = CounterSink()
        recorder = Recorder(sink)
        previous = os.environ.get("REPRO_VECTOR_MIRROR")
        os.environ["REPRO_VECTOR_MIRROR"] = (
            "sequential" if mirror == "sequential" else ""
        )
        try:
            result = run_push_pull(
                graph, mode="broadcast", seed=0, backend="vector",
                recorder=recorder,
            )
        finally:
            if previous is None:
                del os.environ["REPRO_VECTOR_MIRROR"]
            else:
                os.environ["REPRO_VECTOR_MIRROR"] = previous
        return {
            "rounds": result.rounds,
            "exchanges": result.exchanges,
            "n": n,
            "backend": "vector",
            "mirror": mirror,
            "events": sum(sink.by_kind.values()),
        }

    return Workload(
        name=f"pushpull_broadcast_mirror_{mirror}_er_n{n}",
        description=(
            f"recorder-attached push--pull broadcast on the vector backend "
            f"({mirror} mirror path) over fast-sampled Erdős–Rényi "
            f"G({n}, {avg_degree}/n), latencies 1..8, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def engine_vector_microbenchmarks(profile: str) -> list[Workload]:
    """The engine-backend comparison suite (scalar vs vector).

    The ``full`` profile holds the PR acceptance workloads: the scalar and
    vector backends on the *same* ``G(n = 10^4)`` graph (broadcast and
    all-to-all speedup points), plus vector-only scale runs at
    ``n = 10^5`` (push--pull) and ``n = 2.5·10^5`` (flooding) that the
    scalar engine cannot reach in benchmark-friendly time.  The composite
    rows: the all-vector-eligible phase chain at ``n = 10^4`` (the
    composite-dispatch speedup point), the EID and ℓ-DTG acceptance
    composites (mixed and all-fallback dispatch), and the recorder-on
    mirror-path pair (batched vs forced-sequential).
    """
    from repro.experiments.harness import validate_profile

    validate_profile(profile)
    if profile == "quick":
        return [
            _backend_pushpull_workload("scalar", n=2000, avg_degree=16.0, repeats=3),
            _backend_pushpull_workload("vector", n=2000, avg_degree=16.0, repeats=3),
            _backend_pushpull_workload("vector", n=20_000, avg_degree=16.0, repeats=1),
            _composite_chain_workload("vector", n=2000, avg_degree=16.0, repeats=3),
            _mirror_pushpull_workload("batched", n=2000, avg_degree=16.0, repeats=3),
            _mirror_pushpull_workload(
                "sequential", n=2000, avg_degree=16.0, repeats=3
            ),
        ]
    return [
        _backend_pushpull_workload("scalar", n=10_000, avg_degree=16.0, repeats=1),
        _backend_pushpull_workload("vector", n=10_000, avg_degree=16.0, repeats=3),
        _backend_pushpull_workload(
            "scalar", n=10_000, avg_degree=16.0, repeats=1, mode="all_to_all"
        ),
        _backend_pushpull_workload(
            "vector", n=10_000, avg_degree=16.0, repeats=1, mode="all_to_all"
        ),
        _backend_pushpull_workload("vector", n=100_000, avg_degree=16.0, repeats=1),
        _backend_flooding_workload(n=250_000, avg_degree=8.0, repeats=1),
        _composite_chain_workload("scalar", n=10_000, avg_degree=16.0, repeats=1),
        _composite_chain_workload("vector", n=10_000, avg_degree=16.0, repeats=3),
        _eid_workload("scalar", n=400, avg_degree=16.0, diameter=8, repeats=1),
        _eid_workload("vector", n=400, avg_degree=16.0, diameter=8, repeats=1),
        _ldtg_workload("scalar", n=1000, avg_degree=16.0, max_latency=2, repeats=3),
        _ldtg_workload("vector", n=1000, avg_degree=16.0, max_latency=2, repeats=3),
        _mirror_pushpull_workload("batched", n=10_000, avg_degree=16.0, repeats=3),
        _mirror_pushpull_workload(
            "sequential", n=10_000, avg_degree=16.0, repeats=1
        ),
    ]


def _scale_broadcast_workload(
    n: int,
    avg_degree: float,
    repeats: int,
    warmup: bool = True,
    max_state_bytes: Optional[int] = None,
) -> Workload:
    def run() -> dict[str, Any]:
        from repro.obs.metrics import MetricsRegistry, metrics_since, metrics_snapshot
        from repro.protocols.push_pull import run_push_pull

        graph = _vector_bench_graph(n, avg_degree, 8)
        before = metrics_snapshot()
        result = run_push_pull(
            graph,
            mode="broadcast",
            seed=0,
            backend="vector",
            max_state_bytes=max_state_bytes,
        )
        scoped = MetricsRegistry()
        scoped.merge(metrics_since(before))
        cells = scoped.collect().get("sim_state_bytes", {}).get("values", [])
        return {
            "rounds": result.rounds,
            "exchanges": result.exchanges,
            "n": n,
            "backend": "vector",
            # The memory acceptance numbers: which layout the run picked
            # and how many bytes its rumor state held at completion.
            "peak_state_bytes": max((cell["value"] for cell in cells), default=0),
            "layout": ",".join(
                sorted({cell["labels"].get("layout", "?") for cell in cells})
            ),
        }

    return Workload(
        name=f"scale_pushpull_broadcast_n{n}",
        description=(
            f"push--pull broadcast on the vector backend over fast-sampled "
            f"Erdős–Rényi G({n}, {avg_degree}/n) with uniform latencies 1..8, "
            "seed 0, recording peak rumor-state bytes and the chosen layout"
        ),
        run=run,
        repeats=repeats,
        warmup=warmup,
    )


def _scale_streamed_all_to_all_workload(
    n: int,
    avg_degree: float,
    repeats: int,
    max_state_bytes: int,
    warmup: bool = False,
) -> Workload:
    """Streamed all-to-all: the full ``n x n`` dissemination in blocks.

    Runs :func:`~repro.sim.stream.run_streamed_all_to_all` — the recorded
    schedule replayed per rumor block over the chunked layout — whose
    result is bit-identical to the monolithic vector-backend all-to-all
    while only one block slice is resident.  Latencies are 1..2 (not the
    suite's usual 1..8): all-to-all wall clock scales with the completion
    round times ``n^2``, and the shorter latencies keep the benchmark's
    round count — and hours — honest at ``n = 10^6``.
    """

    def run() -> dict[str, Any]:
        from repro.sim.stream import run_streamed_all_to_all

        graph = _vector_bench_graph(n, avg_degree, 2)
        report = run_streamed_all_to_all(
            graph, seed=0, max_state_bytes=max_state_bytes
        )
        result = report.result
        return {
            "rounds": result.rounds,
            "exchanges": result.exchanges,
            "n": n,
            "backend": "vector",
            "blocks": report.blocks,
            "block_rumors": report.block_rumors,
            "max_state_bytes": max_state_bytes,
            # The memory acceptance numbers, matching the broadcast
            # entries: one block slice is the peak rumor-state residency.
            "peak_state_bytes": report.peak_state_bytes,
            "layout": "chunked",
        }

    return Workload(
        name=f"scale_pushpull_all_to_all_streamed_n{n}",
        description=(
            f"push--pull all-to-all streamed over rumor blocks (recorded "
            f"schedule, chunked layout, {max_state_bytes >> 20} MB state "
            f"budget) on fast-sampled Erdős–Rényi G({n}, {avg_degree}/n) "
            "with uniform latencies 1..2, seed 0, bit-identical to the "
            "monolithic vector-backend run"
        ),
        run=run,
        repeats=repeats,
        warmup=warmup,
    )


def engine_scale_microbenchmarks(profile: str) -> list[Workload]:
    """The mega-scale suite: vector-backend runs with memory accounting.

    The ``full`` profile holds the PR acceptance workloads: a true
    ``n = 10^6`` push--pull broadcast whose rumor state must stay O(n·k)
    (the broadcast layout — about 1 MB — where a dense bitset matrix
    would need ~125 GB), and the ``n = 10^6`` *all-to-all* run streamed
    over rumor blocks (the dense state would be ~125 GB; the streamed
    peak is one block slice under a 16 GiB budget).  The ``quick``
    profile is the CI smoke at ``n = 10^5`` — workload 0 must stay the
    broadcast run and workload 1 the streamed all-to-all, both small
    enough to run under an enforced memory ceiling (see
    ``benchmarks/test_bench_engine_scale.py``).
    """
    from repro.experiments.harness import validate_profile

    validate_profile(profile)
    if profile == "quick":
        return [
            _scale_broadcast_workload(n=100_000, avg_degree=8.0, repeats=1),
            _scale_streamed_all_to_all_workload(
                n=100_000, avg_degree=8.0, repeats=1, max_state_bytes=1 << 28
            ),
        ]
    return [
        _scale_broadcast_workload(n=100_000, avg_degree=8.0, repeats=1),
        _scale_streamed_all_to_all_workload(
            n=100_000, avg_degree=8.0, repeats=1, max_state_bytes=1 << 28
        ),
        _scale_broadcast_workload(
            n=1_000_000, avg_degree=8.0, repeats=1, warmup=False
        ),
        _scale_streamed_all_to_all_workload(
            n=1_000_000, avg_degree=8.0, repeats=1, max_state_bytes=16 << 30
        ),
    ]


@functools.lru_cache(maxsize=None)
def _bench_graph(n: int, p: float, max_latency: int):
    """The shared conductance-benchmark graph: connected ER, 1..max_latency.

    Memoized so the untimed warmup run pays for graph *generation* and the
    timed repeats measure only the analysis pipeline under test.
    """
    import random

    from repro.graphs import generators
    from repro.graphs.latency_models import uniform_latency

    return generators.erdos_renyi(
        n, p, latency_model=uniform_latency(1, max_latency), rng=random.Random(0)
    )


def _sweep_profile_workload(n: int, p: float, max_latency: int, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.conductance.sweep import sweep_conductance_profile

        graph = _bench_graph(n, p, max_latency)
        profile = sweep_conductance_profile(graph)
        return {
            "n": n,
            "edges": graph.num_edges,
            "thresholds": len(profile),
            "phi_max": round(max(profile.values()), 6),
        }

    return Workload(
        name=f"sweep_profile_er_n{n}",
        description=(
            f"sweep_conductance_profile over all distinct latency thresholds "
            f"of Erdős–Rényi G({n}, {p}) with uniform latencies 1..{max_latency}, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def _sweep_single_workload(n: int, p: float, max_latency: int, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.conductance.sweep import sweep_conductance

        graph = _bench_graph(n, p, max_latency)
        # The mid threshold keeps both the spectral solve and the prefix
        # evaluation honest: G_ℓ is a strict, connected-ish subgraph.
        ell = max_latency // 2
        phi = sweep_conductance(graph, ell)
        return {"n": n, "ell": ell, "phi": round(phi, 6)}

    return Workload(
        name=f"sweep_single_er_n{n}",
        description=(
            f"single-threshold sweep_conductance (ℓ = {max_latency // 2}) on "
            f"Erdős–Rényi G({n}, {p}) with uniform latencies 1..{max_latency}, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def _weighted_conductance_workload(n: int, p: float, max_latency: int, repeats: int) -> Workload:
    def run() -> dict[str, Any]:
        from repro.conductance.weighted import weighted_conductance

        graph = _bench_graph(n, p, max_latency)
        result = weighted_conductance(graph, method="sweep")
        return {
            "n": n,
            "ell_star": result.critical_latency,
            "phi_star": round(result.phi_star, 6),
        }

    return Workload(
        name=f"weighted_conductance_er_n{n}",
        description=(
            f"weighted_conductance (φ*/ℓ* over the full profile, sweep method) "
            f"on Erdős–Rényi G({n}, {p}) with uniform latencies 1..{max_latency}, seed 0"
        ),
        run=run,
        repeats=repeats,
    )


def conductance_microbenchmarks(profile: str) -> list[Workload]:
    """The conductance/analysis microbenchmark suite for one profile.

    The ``full``-profile ``sweep_profile_er_n2000`` entry is the PR
    acceptance workload: the profile over all distinct thresholds of a
    ``G(n=2000)`` latency graph.
    """
    from repro.experiments.harness import validate_profile

    validate_profile(profile)
    if profile == "quick":
        return [
            _sweep_profile_workload(n=400, p=0.03, max_latency=8, repeats=3),
            _sweep_single_workload(n=400, p=0.03, max_latency=8, repeats=3),
            _weighted_conductance_workload(n=400, p=0.03, max_latency=8, repeats=3),
        ]
    return [
        _sweep_profile_workload(n=2000, p=0.008, max_latency=8, repeats=1),
        _sweep_single_workload(n=2000, p=0.008, max_latency=8, repeats=1),
        _weighted_conductance_workload(n=2000, p=0.008, max_latency=8, repeats=1),
    ]


_SUITE_BUILDERS: dict[str, Callable[[str], list[Workload]]] = {
    "engine": lambda profile: engine_microbenchmarks(profile),
    "engine_vector": lambda profile: engine_vector_microbenchmarks(profile),
    "engine_scale": lambda profile: engine_scale_microbenchmarks(profile),
    "conductance": lambda profile: conductance_microbenchmarks(profile),
}

_SUITE_PATHS: dict[str, tuple[pathlib.Path, pathlib.Path]] = {
    "engine": (BENCH_PATH, BASELINE_PATH),
    "engine_vector": (BENCH_ENGINE_VECTOR_PATH, ENGINE_VECTOR_BASELINE_PATH),
    "engine_scale": (BENCH_ENGINE_SCALE_PATH, ENGINE_SCALE_BASELINE_PATH),
    "conductance": (BENCH_CONDUCTANCE_PATH, CONDUCTANCE_BASELINE_PATH),
}


def microbenchmark_suite(suite: str, profile: str) -> list[Workload]:
    """The workloads of one named suite (see :data:`SUITES`)."""
    if suite not in SUITES:
        raise ValueError(f"unknown benchmark suite {suite!r}; use one of {SUITES}")
    return _SUITE_BUILDERS[suite](profile)


# ----------------------------------------------------------------------
# Runner and report writer.
# ----------------------------------------------------------------------

def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None


def run_microbenchmarks(
    profile: str,
    progress: Optional[Callable[[str], None]] = None,
    suite: str = "engine",
) -> dict[str, Any]:
    """Time every workload of ``suite``/``profile``; return a report dict.

    Each workload gets one untimed warmup run (so one-time costs — lazy
    scipy imports, allocator growth — don't pollute the measurement), then
    runs ``repeats`` times and records the *best* wall-clock time (the
    standard way to suppress scheduler noise on a shared box).
    """
    workloads = microbenchmark_suite(suite, profile)
    entries: dict[str, Any] = {}
    for workload in workloads:
        best = None
        meta: dict[str, Any] = {}
        if workload.warmup:
            workload.run()
        for _ in range(workload.repeats):
            start = time.perf_counter()
            meta = workload.run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        rss = peak_rss_kb()
        entries[workload.name] = {
            "seconds": round(best, 4),
            "repeats": workload.repeats,
            "description": workload.description,
            **({"peak_rss_kb": rss} if rss is not None else {}),
            **meta,
        }
        if progress is not None:
            progress(f"{workload.name}: {best:.3f}s  {meta}")
    return {
        "schema": f"repro-{suite}-bench/1",
        "profile": profile,
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": entries,
    }


def write_report(
    report: dict[str, Any],
    out_path: pathlib.Path = BENCH_PATH,
    baseline_path: pathlib.Path = BASELINE_PATH,
) -> dict[str, Any]:
    """Merge the baseline (if captured) into ``report`` and write it.

    For every workload present in both runs a ``speedup`` factor
    (baseline seconds / current seconds) is recorded, so regressions show
    up as factors below 1.0 directly in the JSON artifact.
    """
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        report = dict(report)
        report["baseline"] = {
            "label": baseline.get("label"),
            "captured_at": baseline.get("captured_at"),
            "commit": baseline.get("commit"),
            "workloads": baseline.get("workloads", {}),
        }
        speedups = {}
        for name, entry in report["workloads"].items():
            base = report["baseline"]["workloads"].get(name)
            if base and entry["seconds"] > 0:
                speedups[name] = round(base["seconds"] / entry["seconds"], 2)
        report["speedup"] = speedups
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarking", description="hot-path microbenchmarks"
    )
    parser.add_argument("--profile", default="quick", choices=["quick", "full", "both"])
    parser.add_argument(
        "--suite",
        default="engine",
        choices=list(SUITES),
        help="which workload suite to run (engine core or conductance/analysis)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the suite's *_baseline.json instead of its report",
    )
    parser.add_argument("--label", default=None, help="free-text label for the run")
    parser.add_argument("--out", default=None, help="override the output path")
    args = parser.parse_args(argv)

    bench_path, baseline_path = _SUITE_PATHS[args.suite]
    profiles = ["quick", "full"] if args.profile == "both" else [args.profile]
    merged: dict[str, Any] = {}
    for profile in profiles:
        report = run_microbenchmarks(profile, progress=print, suite=args.suite)
        if not merged:
            merged = report
        else:
            merged["workloads"].update(report["workloads"])
            merged["profile"] = "both"
    if args.label:
        merged["label"] = args.label
    if args.write_baseline:
        out = pathlib.Path(args.out) if args.out else baseline_path
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {out}")
    else:
        out = pathlib.Path(args.out) if args.out else bench_path
        write_report(merged, out_path=out, baseline_path=baseline_path)
        print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
