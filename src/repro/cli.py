"""Command-line interface: build networks, run protocols, run experiments.

Usage (after ``pip install -e .``)::

    python -m repro list-experiments
    python -m repro run-experiment E5 --profile quick
    python -m repro check --experiments E6 --profile quick
    python -m repro check --backend vector
    python -m repro simulate --protocol push-pull --topology clique --n 256 \\
        --backend vector
    python -m repro analyze --topology ring-of-cliques --cliques 6 \\
        --clique-size 8 --inter-latency 12
    python -m repro simulate --protocol push-pull --topology clique --n 32
    python -m repro trace --protocol push-pull --topology clique --n 8 --limit 20
    python -m repro trace --protocol push-pull --topology clique --n 8 --stats
    python -m repro profile E6 --profile quick
    python -m repro report E6 --profile quick --output report.md
    python -m repro regress --suite all
    python -m repro game --m 32 --predicate random --p 0.2 --strategy oblivious

Every command is a thin shim over the library API; the CLI exists so the
reproduction can be poked at without writing Python.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
from typing import Optional, Sequence

from repro.analysis.bounds import compute_bounds
from repro.errors import ReproError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.graphs.latency_models import bimodal_latency, constant_latency, uniform_latency

__all__ = ["main", "build_topology"]


def build_topology(args: argparse.Namespace) -> LatencyGraph:
    """Build (or load) the graph described by the shared topology arguments."""
    if getattr(args, "load_graph", None):
        from repro.graphs import io as graph_io

        path = args.load_graph
        if str(path).endswith(".json"):
            graph, _metadata = graph_io.load_json(path)
        else:
            graph = graph_io.load_edge_list(path)
        return graph
    rng = random.Random(args.seed)
    latency_model = None
    if args.latency_range is not None:
        low, high = args.latency_range
        latency_model = uniform_latency(low, high)
    elif args.latency is not None:
        latency_model = constant_latency(args.latency)
    elif args.bimodal is not None:
        fast, slow, p_fast = args.bimodal
        latency_model = bimodal_latency(int(fast), int(slow), float(p_fast))

    name = args.topology
    if name == "clique":
        return generators.clique(args.n, latency_model, rng)
    if name == "star":
        return generators.star(args.n, latency_model, rng)
    if name == "path":
        return generators.path(args.n, latency_model, rng)
    if name == "cycle":
        return generators.cycle(args.n, latency_model, rng)
    if name == "grid":
        return generators.grid(args.rows, args.cols, latency_model, rng)
    if name == "torus":
        return generators.torus(args.rows, args.cols, latency_model, rng)
    if name == "hypercube":
        return generators.hypercube(args.dimension, latency_model, rng)
    if name == "random-regular":
        return generators.random_regular(args.n, args.degree, latency_model, rng)
    if name == "erdos-renyi":
        return generators.erdos_renyi(args.n, args.p, latency_model, rng)
    if name == "watts-strogatz":
        return generators.watts_strogatz(
            args.n, args.degree, args.p, latency_model, rng
        )
    if name == "barabasi-albert":
        return generators.barabasi_albert(
            args.n, args.attachments, latency_model, rng
        )
    if name == "geometric":
        return generators.random_geometric(
            args.n, radius=args.radius, latency_scale=args.latency_scale, rng=rng
        )
    if name == "ring-of-cliques":
        return generators.ring_of_cliques(
            args.cliques,
            args.clique_size,
            inter_latency=args.inter_latency,
            links_per_pair=args.links_per_pair,
            rng=rng,
        )
    if name == "datacenter":
        return generators.two_tier_datacenter(
            args.racks, args.rack_size, inter_rack_latency=args.inter_latency
        )
    if name == "dumbbell":
        return generators.dumbbell(
            args.clique_size, bridge_length=args.bridge_length,
            bridge_latency=args.latency or 1,
        )
    raise ReproError(f"unknown topology {name!r}")


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        default="ring-of-cliques",
        choices=[
            "clique", "star", "path", "cycle", "grid", "torus", "hypercube",
            "random-regular", "erdos-renyi", "geometric", "watts-strogatz",
            "barabasi-albert", "ring-of-cliques", "datacenter", "dumbbell",
        ],
    )
    parser.add_argument("--n", type=int, default=32, help="node count")
    parser.add_argument("--attachments", type=int, default=2)
    parser.add_argument("--rows", type=int, default=5)
    parser.add_argument("--cols", type=int, default=5)
    parser.add_argument("--dimension", type=int, default=4)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--p", type=float, default=0.1, help="edge probability")
    parser.add_argument("--radius", type=float, default=0.3)
    parser.add_argument("--latency-scale", type=float, default=10.0)
    parser.add_argument("--cliques", type=int, default=6)
    parser.add_argument("--clique-size", type=int, default=8)
    parser.add_argument("--inter-latency", type=int, default=10)
    parser.add_argument("--links-per-pair", type=int, default=1)
    parser.add_argument("--racks", type=int, default=6)
    parser.add_argument("--rack-size", type=int, default=6)
    parser.add_argument("--bridge-length", type=int, default=1)
    parser.add_argument("--latency", type=int, default=None, help="constant latency")
    parser.add_argument(
        "--latency-range", type=int, nargs=2, metavar=("LOW", "HIGH"), default=None
    )
    parser.add_argument(
        "--bimodal", type=float, nargs=3, metavar=("FAST", "SLOW", "P_FAST"),
        default=None,
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--load-graph", default=None, metavar="PATH",
        help="load the graph from a .json or edge-list file instead of generating",
    )
    parser.add_argument(
        "--save-graph", default=None, metavar="PATH",
        help="save the (generated or loaded) graph to a .json or edge-list file",
    )


def _maybe_save(graph: LatencyGraph, args: argparse.Namespace) -> None:
    if getattr(args, "save_graph", None):
        from repro.graphs import io as graph_io

        path = args.save_graph
        if str(path).endswith(".json"):
            graph_io.save_json(graph, path, metadata={"source": "repro-cli"})
        else:
            graph_io.save_edge_list(graph, path)
        print(f"saved graph to {path}")


def _cmd_list_experiments(_args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments

    for experiment_id, fn in sorted(
        all_experiments().items(), key=lambda kv: (len(kv[0]), kv[0])
    ):
        doc = (fn.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{experiment_id:>4}  {summary}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments, run_experiment

    if args.experiment_id == "all":
        for experiment_id in sorted(
            all_experiments(), key=lambda eid: (len(eid), eid)
        ):
            print(run_experiment(experiment_id, args.profile, checked=args.checked))
            print()
        return 0
    table = run_experiment(args.experiment_id, args.profile, checked=args.checked)
    print(table)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import sharding

    if args.status:
        status = sharding.sweep_status(
            args.experiment_id,
            args.profile,
            checked=args.checked,
            backend=args.backend,
            store_root=args.store,
        )
        for key in sorted(status):
            print(f"{key}: {status[key]}")
        return 0
    shard = sharding.parse_shard(args.shard) if args.shard else None
    if shard and shard.count > 1 and args.export:
        raise ReproError(
            "--export needs the merged table; shard runs (k > 1) produce "
            "none — export from the coordinator run instead"
        )
    result = sharding.run_sweep(
        args.experiment_id,
        args.profile,
        checked=args.checked,
        backend=args.backend,
        store_root=args.store,
        shard=shard,
        resume=args.resume,
        fresh=args.fresh,
    )
    if result.table is not None and args.export:
        # Export before any printing: a closed stdout (broken pipe) must
        # not cost the caller the artifact they asked for.
        pathlib.Path(args.export).write_text(
            sharding.table_to_json(result.table), encoding="utf-8"
        )
    print(result.report.summary())
    if result.table is not None:
        print()
        print(result.table)
        if args.export:
            print(f"wrote canonical table bytes to {args.export}")
    return 0


def _check_differential(seed: int, backend: str = "scalar") -> list[str]:
    """Engine vs ReferenceEngine on representative graphs/protocols.

    With ``backend="vector"`` the candidate side is the array backend,
    which is additionally pitted against the scalar engine directly
    (three-way agreement); the phase-structured General EID leg then runs
    the whole composite with per-phase backend dispatch (vector-eligible
    phases on the array path, adaptive ℓ-DTG phases on the scalar
    fallback — docs/MODEL.md §8) against a plain scalar run.
    """
    from repro.graphs import generators
    from repro.protocols.base import per_node_rng_factory
    from repro.protocols.eid import run_general_eid
    from repro.protocols.flooding import FloodingProtocol
    from repro.protocols.push_pull import PushPullProtocol
    from repro.sim.engine import Engine
    from repro.sim.runner import broadcast_complete
    from repro.sim.state import NetworkState
    from repro.testing import ReferenceEngine, run_differential

    failures: list[str] = []
    rng = random.Random(seed)
    graphs = [
        ("ring-of-cliques", generators.ring_of_cliques(4, 5, inter_latency=7, rng=rng)),
        ("star", generators.star(12)),
        ("erdos-renyi", generators.erdos_renyi(16, 0.3, rng=random.Random(seed))),
    ]
    # The candidate engine is always compared against the reference oracle;
    # on the vector backend it is also compared against the scalar engine.
    legs = [(ReferenceEngine, "reference")]
    if backend == "vector":
        legs.append((Engine, "scalar"))
    for graph_name, graph in graphs:
        source = graph.nodes()[0]
        rumor = ("rumor", source)

        def make_state(graph=graph, source=source, rumor=rumor):
            state = NetworkState(graph.nodes())
            state.add_rumor(source, rumor)
            return state

        protocols = [
            (
                "push-pull",
                lambda seed=seed: (
                    lambda make_rng: (lambda node: PushPullProtocol(make_rng(node)))
                )(per_node_rng_factory(seed)),
            ),
            ("flooding", lambda rumor=rumor: (lambda node: FloodingProtocol(None))),
        ]
        for protocol_name, make_factory in protocols:
            for reference_cls, leg_name in legs:
                report = run_differential(
                    graph,
                    make_factory=make_factory,
                    make_state=make_state,
                    predicate=broadcast_complete(rumor),
                    reference_cls=reference_cls,
                    backend=backend,
                )
                label = (
                    f"differential {protocol_name} on {graph_name} "
                    f"({backend} vs {leg_name})"
                )
                if report.equivalent:
                    print(f"ok   {label} ({report.rounds} rounds)")
                else:
                    failures.append(f"{label}: {'; '.join(report.mismatches[:3])}")
                    print(f"FAIL {label}")
    # Composite protocol: the whole General EID pipeline across engines.
    graph = generators.ring_of_cliques(3, 4, inter_latency=5)
    if backend == "vector":
        # Phase-chained vector dispatch vs the plain scalar PhaseRunner.
        fast = run_general_eid(graph, seed=seed, backend="vector")
        slow = run_general_eid(graph, seed=seed, backend="scalar")
        label = "differential general-eid on ring-of-cliques (vector vs scalar)"
    else:
        fast = run_general_eid(graph, seed=seed)
        slow = run_general_eid(graph, seed=seed, engine_factory=ReferenceEngine)
        label = "differential general-eid on ring-of-cliques"
    if fast == slow:
        print(f"ok   {label} ({fast.rounds} rounds)")
    else:
        failures.append(f"{label}: engine={fast} reference={slow}")
        print(f"FAIL {label}")
    return failures


def _check_replay(seed: int) -> list[str]:
    """Record-and-replay determinism oracle on push--pull."""
    from repro.errors import SimulationError
    from repro.graphs import generators
    from repro.protocols.base import per_node_rng_factory
    from repro.protocols.push_pull import PushPullProtocol
    from repro.sim.runner import broadcast_complete
    from repro.sim.state import NetworkState
    from repro.testing import record_and_replay

    failures: list[str] = []
    graph = generators.ring_of_cliques(4, 5, inter_latency=7, rng=random.Random(seed))
    source = graph.nodes()[0]
    rumor = ("rumor", source)

    def make_state():
        state = NetworkState(graph.nodes())
        state.add_rumor(source, rumor)
        return state

    def make_factory():
        make_rng = per_node_rng_factory(seed)
        return lambda node: PushPullProtocol(make_rng(node))

    try:
        report = record_and_replay(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
        )
    except SimulationError as error:
        failures.append(f"replay determinism: {error}")
        print("FAIL replay determinism (push-pull)")
    else:
        print(
            f"ok   replay determinism (push-pull, {report.rounds} rounds, "
            f"{len(report.events)} events)"
        )
    return failures


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import SimulationError
    from repro.experiments import all_experiments, run_experiment

    backend = getattr(args, "backend", "scalar")
    failures: list[str] = []
    failures.extend(_check_differential(args.seed, backend=backend))
    failures.extend(_check_replay(args.seed))

    if args.experiments == "all":
        experiment_ids = sorted(all_experiments(), key=lambda eid: (len(eid), eid))
    elif args.experiments == "none":
        experiment_ids = []
    else:
        experiment_ids = [eid.strip() for eid in args.experiments.split(",") if eid.strip()]
    for experiment_id in experiment_ids:
        label = f"checked experiment {experiment_id} [{args.profile}]"
        try:
            run_experiment(experiment_id, args.profile, checked=True)
        except SimulationError as error:
            failures.append(f"{label}: {error}")
            print(f"FAIL {label}")
        else:
            print(f"ok   {label}")

    if failures:
        print(f"\ncheck FAILED ({len(failures)} failure(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck passed: engines agree, runs are deterministic, invariants hold")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    graph = build_topology(args)
    _maybe_save(graph, args)
    bounds = compute_bounds(graph, conductance_method=args.method)
    wc = bounds.conductance
    print(f"nodes                 : {bounds.n}")
    print(f"edges                 : {graph.num_edges}")
    print(f"weighted diameter D   : {bounds.diameter}")
    print(f"max degree Δ          : {bounds.max_degree}")
    print(f"distinct latencies    : {graph.distinct_latencies()}")
    print(f"conductance method    : {wc.method}")
    print(f"profile φ_ℓ           : " + ", ".join(
        f"φ_{ell}={phi:.4f}" for ell, phi in sorted(wc.profile.items())
    ))
    print(f"weighted conductance  : φ* = {wc.phi_star:.4f} at ℓ* = {wc.critical_latency}")
    print(f"ℓ*/φ*                 : {wc.dissemination_bound:.1f}")
    print(f"lower-bound envelope  : min(D+Δ, ℓ*/φ*) = {bounds.lower_bound_envelope:.1f}")
    print(f"push--pull budget     : (ℓ*/φ*)·log n = {bounds.push_pull_bound:.1f}")
    print(f"known-latency budget  : {bounds.known_latency_bound:.1f}")
    print(f"unknown-latency budget: {bounds.unknown_latency_bound:.1f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.protocols import (
        run_flooding,
        run_general_eid,
        run_general_eid_unknown_latencies,
        run_path_discovery,
        run_push_pull,
        run_unified,
    )

    graph = build_topology(args)
    _maybe_save(graph, args)
    protocol = args.protocol
    if protocol == "push-pull":
        result = run_push_pull(
            graph, mode=args.mode, seed=args.seed, track_progress=args.curve
        )
        print(result)
        if args.curve and result.informed_history:
            from repro.analysis.curves import growth_phases, sparkline

            history = result.informed_history
            print("informed:", sparkline(history, graph.num_nodes))
            print("phases  :", growth_phases(history, graph.num_nodes))
    elif protocol == "flooding":
        print(run_flooding(graph, push_only=args.push_only))
    elif protocol == "general-eid":
        report = run_general_eid(graph, seed=args.seed)
        print(
            f"general-eid: complete at {report.first_complete_round}, "
            f"terminated at {report.rounds} "
            f"(k={report.final_estimate}, {report.exchanges} exchanges)"
        )
    elif protocol == "eid-unknown-latencies":
        report = run_general_eid_unknown_latencies(graph, seed=args.seed)
        print(
            f"eid-unknown-latencies: complete at {report.first_complete_round}, "
            f"terminated at {report.rounds} (k={report.final_estimate})"
        )
    elif protocol == "path-discovery":
        report = run_path_discovery(graph)
        print(
            f"path-discovery: complete at {report.first_complete_round}, "
            f"terminated at {report.rounds} (k={report.final_estimate})"
        )
    elif protocol == "unified":
        report = run_unified(graph, latencies_known=not args.unknown_latencies,
                             seed=args.seed)
        print(
            f"unified: {report.rounds} rounds, winner {report.winner} "
            f"(push-pull {report.push_pull_rounds}, spanner {report.spanner_rounds})"
        )
    else:
        raise ReproError(f"unknown protocol {protocol!r}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import CounterSink, JsonlSink, MemorySink, Recorder, event_to_json
    from repro.protocols import run_general_eid, run_path_discovery, run_push_pull

    graph = build_topology(args)
    _maybe_save(graph, args)
    memory = MemorySink()
    counters = CounterSink()
    sinks = [memory, counters]
    jsonl_sink = None
    if args.jsonl:
        jsonl_sink = JsonlSink(args.jsonl)
        sinks.append(jsonl_sink)
    protocol = args.protocol
    with Recorder(*sinks) as recorder:
        if protocol == "push-pull":
            result = run_push_pull(
                graph, mode=args.mode, seed=args.seed,
                telemetry=True, recorder=recorder,
            )
            summary = str(result)
            telemetry = result.telemetry
            if telemetry is not None and telemetry.in_flight_curve:
                summary += f"; peak in-flight {telemetry.max_in_flight()}"
        elif protocol == "general-eid":
            report = run_general_eid(graph, seed=args.seed, recorder=recorder)
            summary = (
                f"general-eid: complete at {report.first_complete_round}, "
                f"terminated at {report.rounds} over {len(report.phases)} phases "
                f"(k={report.final_estimate})"
            )
        elif protocol == "path-discovery":
            report = run_path_discovery(graph, recorder=recorder)
            summary = (
                f"path-discovery: complete at {report.first_complete_round}, "
                f"terminated at {report.rounds} over {len(report.phases)} phases "
                f"(k={report.final_estimate})"
            )
        else:
            raise ReproError(f"unknown protocol {protocol!r} for trace")
    events = memory.events
    if args.stats:
        from repro.obs.traces import Trace

        stats = Trace.from_events(events).stats()
        width = max((len(kind) for kind in stats["by_kind"]), default=4)
        for kind, count in sorted(stats["by_kind"].items()):
            print(f"{kind.ljust(width)}  {count}")
        print(
            f"max round: {stats['max_round']}; phases: {stats['phases']}; "
            f"unique activated edges: {stats['unique_edges']}"
        )
        if "delivery_latency" in stats:
            latency = stats["delivery_latency"]
            print(
                f"delivery latency (rounds): min {latency['min']} / "
                f"mean {latency['mean']} / max {latency['max']}"
            )
    else:
        shown = events if args.limit is None else events[: args.limit]
        for event in shown:
            print(event_to_json(event))
        if args.limit is not None and len(events) > args.limit:
            print(f"... ({len(events) - args.limit} more events not shown)")
    kinds = " ".join(f"{kind}={n}" for kind, n in sorted(counters.by_kind.items()))
    print(f"events: {recorder.events_recorded} ({kinds})")
    print(
        f"rumors learned: {counters.rumors_learned}; "
        f"lost initiations: {counters.lost_initiations}; "
        f"max in-flight: {counters.max_in_flight}"
    )
    print(summary)
    if jsonl_sink is not None:
        print(f"wrote {jsonl_sink.lines_written} events to {args.jsonl}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment
    from repro.obs import reset_spans, span_aggregates

    reset_spans()
    table = run_experiment(args.experiment_id, args.profile, checked=args.checked)
    print(table)
    aggregates = span_aggregates()
    print()
    if not aggregates:
        print("no profiling spans recorded")
        return 0
    name_width = max(len("span"), max(len(name) for name in aggregates))
    print(
        f"{'span'.ljust(name_width)}  {'count':>7}  {'total s':>9}  "
        f"{'mean ms':>9}  {'max ms':>9}"
    )
    for name, agg in sorted(
        aggregates.items(), key=lambda kv: kv[1]["seconds"], reverse=True
    ):
        print(
            f"{name.ljust(name_width)}  {agg['count']:>7}  "
            f"{agg['seconds']:>9.3f}  {agg['mean_seconds'] * 1e3:>9.3f}  "
            f"{agg['max_seconds'] * 1e3:>9.3f}"
        )
    layouts = (table.metrics or {}).get("sim_state_layout", {}).get("values", ())
    peaks = {
        (cell["labels"].get("layout"), cell["labels"].get("protocol")): cell["value"]
        for cell in (table.metrics or {})
        .get("sim_state_bytes", {})
        .get("values", ())
    }
    if layouts:
        print("\nstate layouts:")
        for cell in layouts:
            layout = cell["labels"].get("layout")
            protocol = cell["labels"].get("protocol")
            peak = peaks.get((layout, protocol))
            peak_text = f"  peak {peak:,} bytes" if peak is not None else ""
            print(f"  {protocol}: {layout}{peak_text}")
    phase_backends = (
        (table.metrics or {}).get("sim_phase_backend", {}).get("values", ())
    )
    if phase_backends:
        print("\nphase backends:")
        for cell in phase_backends:
            labels = cell["labels"]
            reason = labels.get("reason")
            reason_text = (
                "" if reason in (None, "eligible") else f"  [{reason}]"
            )
            print(
                f"  {labels.get('protocol')}: {labels.get('backend')} "
                f"×{int(cell['value'])}{reason_text}"
            )
    manifest = table.manifest or {}
    provenance = " ".join(
        f"{key}={manifest[key]}"
        for key in ("git_rev", "python", "repro_jobs", "captured_at")
        if manifest.get(key) is not None
    )
    if provenance:
        print(f"\nmanifest: {provenance}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.errors import ObservabilityError
    from repro.obs.report import experiment_report, render_trace_report

    if args.trace is not None:
        from repro.obs.traces import Trace

        text = render_trace_report(Trace.load(args.trace), title=str(args.trace))
    elif args.experiment_id is not None:
        text = experiment_report(
            args.experiment_id,
            args.profile,
            checked=args.checked,
            include_timings=args.timings,
            gate=not args.no_gate,
        )
    else:
        raise ObservabilityError(
            "report needs an experiment id (e.g. E6) or --trace PATH"
        )
    if args.output:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.regress import (
        DEFAULT_NOISE_FLOOR,
        DEFAULT_THRESHOLD,
        GATE_SUITES,
        gate_suites,
    )

    suites = GATE_SUITES if args.suite == "all" else (args.suite,)
    reports = gate_suites(
        suites,
        threshold=DEFAULT_THRESHOLD if args.threshold is None else args.threshold,
        noise_floor=(
            DEFAULT_NOISE_FLOOR if args.noise_floor is None else args.noise_floor
        ),
        skip_missing=args.skip_missing,
        strict=args.strict,
    )
    for report in reports:
        print(report.summary())
    if not reports:
        print("no benchmark reports found; nothing gated")
    if args.json:
        payload = [report.to_dict() for report in reports]
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote machine-readable verdicts to {args.json}")
    return 1 if any(report.regressed for report in reports) else 0


def _cmd_game(args: argparse.Namespace) -> int:
    from repro.analysis.stats import summarize
    from repro.lowerbounds.game import GuessingGame
    from repro.lowerbounds.predicates import random_predicate, singleton_predicate
    from repro.lowerbounds.strategies import (
        fresh_pair_strategy,
        play_game,
        random_guessing_strategy,
        systematic_sweep_strategy,
    )

    predicate = (
        singleton_predicate()
        if args.predicate == "singleton"
        else random_predicate(args.p)
    )
    strategy = {
        "adaptive": fresh_pair_strategy,
        "oblivious": random_guessing_strategy,
        "sweep": systematic_sweep_strategy,
    }[args.strategy]
    rounds = []
    for seed in range(args.seeds):
        rng = random.Random(seed)
        game = GuessingGame(args.m, predicate(args.m, rng))
        rounds.append(play_game(game, strategy, rng))
    summary = summarize(rounds)
    print(
        f"Guessing(2·{args.m}, {args.predicate}"
        + (f", p={args.p}" if args.predicate == "random" else "")
        + f") with {args.strategy}: {summary}"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gossiping with Latencies — reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--backend", default="scalar", choices=["scalar", "vector"],
        help="engine backend every protocol runner defaults to; 'vector' "
             "(numpy array rounds) only accepts oblivious protocols "
             "(default: scalar)",
    )
    parser.add_argument(
        "--max-state-bytes", type=int, default=None, metavar="BYTES",
        help="budget for the vector backend's rumor-state allocations; "
             "steers the state-layout choice (dense/broadcast/chunked) "
             "for every run the command makes (default: the "
             "REPRO_MAX_STATE_BYTES env var, else 1 GiB)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list-experiments", help="list the experiment registry"
    ).set_defaults(handler=_cmd_list_experiments)

    run_exp = commands.add_parser(
        "run-experiment", help="run one experiment (or 'all')"
    )
    run_exp.add_argument("experiment_id")
    run_exp.add_argument("--profile", default="quick", choices=["quick", "full"])
    run_exp.add_argument(
        "--checked", action="store_true",
        help="attach the model-invariant checkers to every engine",
    )
    run_exp.set_defaults(handler=_cmd_run_experiment)

    sweep = commands.add_parser(
        "sweep",
        help="run an experiment as a checkpointed, shardable, resumable sweep",
    )
    sweep.add_argument("experiment_id")
    sweep.add_argument("--profile", default="quick", choices=["quick", "full"])
    sweep.add_argument(
        "--checked", action="store_true",
        help="attach the model-invariant checkers to every engine",
    )
    sweep.add_argument(
        "--shard", default=None, metavar="I/K",
        help="compute and persist only shard I of a K-way split (trial "
             "ordinal mod K); run once per shard, then merge with a plain "
             "`repro sweep` over the same --store",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="require prior progress in the store, then complete the sweep "
             "(loads finished trials, computes the rest, stores the table)",
    )
    sweep.add_argument(
        "--fresh", action="store_true",
        help="drop any stored progress for this recipe first",
    )
    sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="sweep store root (default: $REPRO_SWEEP_STORE or .repro/sweeps)",
    )
    sweep.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the merged table's canonical JSON bytes (manifest-free; "
             "the unit of bit-identity) to PATH",
    )
    sweep.add_argument(
        "--status", action="store_true",
        help="inspect stored progress for this recipe and exit (no compute)",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    check = commands.add_parser(
        "check",
        help="validate the engine: differential tests, replay, checked runs",
    )
    check.add_argument(
        "--experiments", default="none", metavar="IDS",
        help="comma-separated experiment ids to re-run under invariant "
             "checking, or 'all' / 'none' (default: none)",
    )
    check.add_argument("--profile", default="quick", choices=["quick", "full"])
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--backend", default=argparse.SUPPRESS, choices=["scalar", "vector"],
        help="engine backend under test (also accepted before the "
             "subcommand; default: scalar)",
    )
    check.set_defaults(handler=_cmd_check)

    analyze = commands.add_parser(
        "analyze", help="compute the paper's parameters for a topology"
    )
    _add_topology_arguments(analyze)
    analyze.add_argument("--method", default="auto", choices=["auto", "exact", "sweep"])
    analyze.set_defaults(handler=_cmd_analyze)

    simulate = commands.add_parser("simulate", help="run one protocol")
    _add_topology_arguments(simulate)
    simulate.add_argument(
        "--protocol",
        default="push-pull",
        choices=[
            "push-pull", "flooding", "general-eid",
            "eid-unknown-latencies", "path-discovery", "unified",
        ],
    )
    simulate.add_argument(
        "--mode", default="broadcast", choices=["broadcast", "all_to_all", "local"]
    )
    simulate.add_argument("--push-only", action="store_true")
    simulate.add_argument("--unknown-latencies", action="store_true")
    simulate.add_argument("--curve", action="store_true",
                          help="print the informed-node sparkline")
    simulate.add_argument(
        "--backend", default=argparse.SUPPRESS, choices=["scalar", "vector"],
        help="engine backend (also accepted before the subcommand; "
             "'vector' requires an oblivious protocol; default: scalar)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    trace = commands.add_parser(
        "trace", help="run one protocol with the event recorder attached"
    )
    _add_topology_arguments(trace)
    trace.add_argument(
        "--protocol",
        default="push-pull",
        choices=["push-pull", "general-eid", "path-discovery"],
    )
    trace.add_argument(
        "--mode", default="broadcast", choices=["broadcast", "all_to_all", "local"]
    )
    trace.add_argument(
        "--limit", type=int, default=40, metavar="N",
        help="print at most N events (default 40); use a large value for all",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the full canonical JSONL stream to PATH",
    )
    trace.add_argument(
        "--stats", action="store_true",
        help="print per-kind event counts and trace analytics instead of "
             "the raw event stream",
    )
    trace.set_defaults(handler=_cmd_trace)

    profile_cmd = commands.add_parser(
        "profile", help="run one experiment and print its profiling spans"
    )
    profile_cmd.add_argument("experiment_id")
    profile_cmd.add_argument("--profile", default="quick", choices=["quick", "full"])
    profile_cmd.add_argument(
        "--checked", action="store_true",
        help="attach the model-invariant checkers to every engine",
    )
    profile_cmd.set_defaults(handler=_cmd_profile)

    report = commands.add_parser(
        "report",
        help="run one experiment (or load a trace) and render a markdown report",
    )
    report.add_argument(
        "experiment_id", nargs="?", default=None,
        help="experiment index id (e.g. E6); omit when using --trace",
    )
    report.add_argument("--profile", default="quick", choices=["quick", "full"])
    report.add_argument(
        "--checked", action="store_true",
        help="attach the model-invariant checkers to every engine",
    )
    report.add_argument(
        "--timings", action="store_true",
        help="include wall-clock span columns (non-deterministic)",
    )
    report.add_argument(
        "--no-gate", action="store_true",
        help="skip the regression-gate section",
    )
    report.add_argument(
        "--trace", default=None, metavar="PATH",
        help="render a trace-analytics report for a JSONL event stream "
             "instead of running an experiment",
    )
    report.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the markdown to PATH instead of stdout",
    )
    report.set_defaults(handler=_cmd_report)

    regress = commands.add_parser(
        "regress",
        help="gate BENCH_*.json benchmark reports against committed baselines",
    )
    regress.add_argument(
        "--suite", default="all",
        choices=["all", "engine", "engine_vector", "engine_scale", "conductance"],
    )
    regress.add_argument(
        "--threshold", type=float, default=None,
        help="relative budget (default 1.25 = 25%% over baseline)",
    )
    regress.add_argument(
        "--noise-floor", type=float, default=None, metavar="SECONDS",
        help="absolute slack in seconds below which differences never flag",
    )
    regress.add_argument(
        "--skip-missing", action="store_true",
        help="skip suites whose BENCH report has not been generated",
    )
    regress.add_argument(
        "--strict", action="store_true",
        help="fail baseline workloads absent from the current report "
             "(full-suite runs only; quick CI reports are profile subsets)",
    )
    regress.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable verdicts to PATH",
    )
    regress.set_defaults(handler=_cmd_regress)

    game = commands.add_parser("game", help="play the guessing game")
    game.add_argument("--m", type=int, default=32)
    game.add_argument("--predicate", default="singleton", choices=["singleton", "random"])
    game.add_argument("--p", type=float, default=0.2)
    game.add_argument(
        "--strategy", default="adaptive", choices=["adaptive", "oblivious", "sweep"]
    )
    game.add_argument("--seeds", type=int, default=10)
    game.set_defaults(handler=_cmd_game)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        from contextlib import nullcontext

        from repro.sim.vector import engine_backend, state_budget

        # The selected backend becomes the ambient default for every
        # engine the command constructs (scalar unless --backend vector);
        # likewise the state-memory budget steers every layout choice.
        max_state_bytes = getattr(args, "max_state_bytes", None)
        budget = (
            state_budget(max_state_bytes)
            if max_state_bytes is not None
            else nullcontext()
        )
        with engine_backend(getattr(args, "backend", "scalar")), budget:
            return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
