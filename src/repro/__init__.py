"""repro — a full reproduction of *Gossiping with Latencies* (PODC 2017).

This library implements, from scratch:

* the paper's synchronous non-blocking communication model as a
  deterministic simulator (:mod:`repro.sim`);
* weighted conductance ``φ*`` and critical latency ``ℓ*``
  (:mod:`repro.conductance`);
* every algorithm: push--pull, ℓ-DTG, the Baswana--Sen directed spanner,
  RR Broadcast, EID / General EID, Path Discovery, latency discovery, and
  the unified parallel composition (:mod:`repro.protocols`);
* the guessing-game lower-bound machinery and the gossip-to-game reduction
  (:mod:`repro.lowerbounds`), plus the worst-case gadget networks
  (:mod:`repro.graphs.gadgets`);
* experiment harnesses regenerating every theorem's empirical validation
  (:mod:`repro.experiments`).

Quickstart::

    import random
    from repro import generators, weighted_conductance, run_push_pull

    graph = generators.ring_of_cliques(8, 10, inter_latency=5,
                                       rng=random.Random(1))
    wc = weighted_conductance(graph, method="sweep")
    print(f"phi* = {wc.phi_star:.3f} at critical latency {wc.critical_latency}")
    print(run_push_pull(graph, source=0, seed=7))
"""

from repro import obs
from repro.analysis import GraphBounds, compute_bounds
from repro.conductance import (
    StronglyEdgeInducedGraph,
    WeightedConductance,
    conductance_profile,
    weighted_conductance,
)
from repro.errors import (
    ConductanceError,
    DisconnectedGraphError,
    ExperimentError,
    GameError,
    GraphError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.graphs import LatencyGraph, gadgets, generators
from repro.lowerbounds import GuessingGame, simulate_gossip_as_guessing
from repro.protocols import (
    baswana_sen_spanner,
    run_eid,
    run_flooding,
    run_general_eid,
    run_general_eid_unknown_latencies,
    run_latency_discovery,
    run_ldtg,
    run_path_discovery,
    run_push_pull,
    run_unified,
)
from repro.sim import (
    DisseminationResult,
    Engine,
    InvariantChecker,
    NetworkState,
    checked,
    default_checkers,
)

__version__ = "1.0.0"

__all__ = [
    "ConductanceError",
    "DisconnectedGraphError",
    "DisseminationResult",
    "Engine",
    "ExperimentError",
    "GameError",
    "GraphBounds",
    "GraphError",
    "GuessingGame",
    "InvariantChecker",
    "LatencyGraph",
    "NetworkState",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "StronglyEdgeInducedGraph",
    "WeightedConductance",
    "baswana_sen_spanner",
    "checked",
    "compute_bounds",
    "conductance_profile",
    "default_checkers",
    "gadgets",
    "generators",
    "obs",
    "run_eid",
    "run_flooding",
    "run_general_eid",
    "run_general_eid_unknown_latencies",
    "run_latency_discovery",
    "run_ldtg",
    "run_path_discovery",
    "run_push_pull",
    "run_unified",
    "simulate_gossip_as_guessing",
    "weighted_conductance",
    "__version__",
]
