"""Typed per-round engine events and their canonical JSONL serialization.

The engine (when built with a :class:`~repro.obs.recorder.Recorder`) emits
one event object per observable occurrence:

========== ==========================================================
kind       meaning
========== ==========================================================
initiate   a node initiated an exchange (possibly lost on the wire)
blocked    an initiation violated the blocking model (pre-raise)
rejected   an initiation was refused under bounded in-degree
deliver    an exchange delivered; both endpoints merged knowledge
void       an exchange delivered to a crashed responder (no effect)
wakeup     a delivery re-activated a parked (done) node
round      end-of-round summary: counts and in-flight backlog
========== ==========================================================

Events are plain frozen dataclasses — cheap to build, hashable, and
order-stable.  :func:`event_to_dict` / :func:`events_to_jsonl` define the
**canonical wire form** used by the golden-trace regression suite and the
``repro trace --jsonl`` exporter: keys sorted, compact separators, node
identities rendered via :func:`node_key`.  Any change to this format or
to the engine's event semantics makes the committed golden streams drift
and fails the suite loudly — which is the point.

Nothing here imports from :mod:`repro.sim`; the observability layer sits
below the engine so the engine can depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Hashable, Iterable, Union

__all__ = [
    "Event",
    "InitiationEvent",
    "BlockedInitiationEvent",
    "RejectedInitiationEvent",
    "DeliveryEvent",
    "VoidExchangeEvent",
    "WakeupEvent",
    "RoundEvent",
    "node_key",
    "event_to_dict",
    "event_to_json",
    "events_to_jsonl",
]

#: Anything a :class:`~repro.graphs.latency_graph.LatencyGraph` uses as a
#: node identity (kept loose on purpose — no import from the graphs layer).
NodeId = Hashable


def node_key(node: NodeId) -> Union[int, str]:
    """A JSON-safe, deterministic identity for a node.

    Integers and strings pass through; any other hashable (tuples, frozen
    dataclasses, ...) is rendered via ``repr``, which the library keeps
    deterministic (node reprs are part of per-node RNG seeding already).
    """
    if isinstance(node, (int, str)):
        return node
    if isinstance(node, bool):  # pragma: no cover - bool is an int subtype
        return int(node)
    return repr(node)


@dataclasses.dataclass(frozen=True)
class Event:
    """Base class: every event carries the round it happened in."""

    round: int

    #: Stable wire-format discriminator; overridden per subclass.
    kind = "event"


@dataclasses.dataclass(frozen=True)
class InitiationEvent(Event):
    """A node initiated an exchange this round.

    ``lost`` marks exchanges the failure model dropped on the wire (the
    initiator never hears back); ``ping`` marks payload-free probes
    (protocols with ``sends_payload = False``).
    """

    initiator: NodeId
    responder: NodeId
    latency: int
    ping: bool = False
    lost: bool = False

    kind = "initiate"


@dataclasses.dataclass(frozen=True)
class BlockedInitiationEvent(Event):
    """An initiation that violated ``enforce_blocking`` (emitted pre-raise)."""

    initiator: NodeId
    responder: NodeId

    kind = "blocked"


@dataclasses.dataclass(frozen=True)
class RejectedInitiationEvent(Event):
    """An initiation refused because the responder's in-degree cap was hit."""

    initiator: NodeId
    responder: NodeId

    kind = "rejected"


@dataclasses.dataclass(frozen=True)
class DeliveryEvent(Event):
    """An exchange delivered and both live endpoints merged knowledge.

    ``learned_by_initiator`` / ``learned_by_responder`` are the coverage
    deltas: how many rumors each endpoint learned from this delivery
    (0 when nothing new arrived; initiator delta is 0 when it crashed).
    """

    initiator: NodeId
    responder: NodeId
    initiated_at: int
    ping: bool = False
    initiator_alive: bool = True
    learned_by_initiator: int = 0
    learned_by_responder: int = 0

    kind = "deliver"


@dataclasses.dataclass(frozen=True)
class VoidExchangeEvent(Event):
    """An exchange that arrived at a crashed responder: no merge happened."""

    initiator: NodeId
    responder: NodeId
    initiated_at: int

    kind = "void"


@dataclasses.dataclass(frozen=True)
class WakeupEvent(Event):
    """A delivery re-activated a node the scheduler had parked as done."""

    node: NodeId

    kind = "wakeup"


@dataclasses.dataclass(frozen=True)
class RoundEvent(Event):
    """End-of-round summary emitted once per :meth:`Engine.step`.

    ``in_flight`` is the backlog *after* this round's deliveries and
    initiations — the series behind the in-flight histogram.
    """

    initiations: int
    deliveries: int
    in_flight: int

    kind = "round"


_NODE_FIELDS = ("initiator", "responder", "node", "peer")


def event_to_dict(event: Event) -> dict[str, Any]:
    """The canonical dict form: ``kind`` plus the event's fields.

    Node-valued fields go through :func:`node_key`; everything else is
    already JSON-native (ints / bools).
    """
    record: dict[str, Any] = {"kind": event.kind}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if field.name in _NODE_FIELDS:
            value = node_key(value)
        record[field.name] = value
    return record


def event_to_json(event: Event) -> str:
    """One canonical JSON line: sorted keys, compact separators, ASCII."""
    return json.dumps(
        event_to_dict(event), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def events_to_jsonl(events: Iterable[Event]) -> str:
    """The canonical JSONL stream (one event per line, trailing newline).

    This is the byte format the golden-trace suite commits and compares;
    it must stay deterministic for a fixed engine history.
    """
    lines = [event_to_json(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")
