"""Wall-clock profiling spans, aggregated across processes.

Usage::

    from repro import obs

    with obs.span("dijkstra"):
        distances = graph.weighted_distances(source)

Every span accumulates ``(count, total seconds, max seconds)`` into a
process-global registry, read back with :func:`span_aggregates`.  Spans
are always on: one ``perf_counter`` pair and a dict update per enter/exit
(~1 µs), so they belong on coarse operations — a Dijkstra, a spanner
build, a conductance sweep, one experiment trial — never inside the
engine's per-round loop (the engine uses the event
:class:`~repro.obs.recorder.Recorder` instead, which *is* gated).

Cross-process merging: ``map_trials`` workers are separate processes with
their own registries, so the harness snapshots the registry around each
trial (:func:`span_snapshot` / :func:`spans_since`), ships the per-trial
delta back with the result, and merges it into the parent with
:func:`merge_spans`.  Counts add, totals add, maxima take the max — so a
``REPRO_JOBS=2`` run reports the same span *counts* as a serial run.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

__all__ = [
    "span",
    "span_aggregates",
    "span_snapshot",
    "spans_since",
    "spans_from_wire",
    "spans_to_wire",
    "merge_spans",
    "reset_spans",
]

#: name -> [count, total_seconds, max_seconds]
_REGISTRY: Dict[str, list] = {}

SpanSnapshot = Dict[str, Tuple[int, float, float]]


class span:
    """Context manager timing one named operation into the registry."""

    __slots__ = ("name", "_start", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0
        #: Duration of the last completed enter/exit, for ad-hoc callers.
        self.seconds = 0.0

    def __enter__(self) -> "span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self.seconds = elapsed
        entry = _REGISTRY.get(self.name)
        if entry is None:
            _REGISTRY[self.name] = [1, elapsed, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed
            if elapsed > entry[2]:
                entry[2] = elapsed


def span_aggregates() -> dict[str, dict[str, float]]:
    """``{name: {count, seconds, max_seconds, mean_seconds}}`` so far."""
    out = {}
    for name, (count, total, maximum) in sorted(_REGISTRY.items()):
        out[name] = {
            "count": count,
            "seconds": total,
            "max_seconds": maximum,
            "mean_seconds": total / count if count else 0.0,
        }
    return out


def span_snapshot() -> SpanSnapshot:
    """An immutable copy of the registry (for :func:`spans_since`)."""
    return {name: (c, t, m) for name, (c, t, m) in _REGISTRY.items()}


def spans_since(snapshot: SpanSnapshot) -> SpanSnapshot:
    """The registry delta since ``snapshot`` (new counts/seconds only).

    The returned mapping is suitable for :func:`merge_spans` in another
    process — this is how worker telemetry travels home from the pool.
    """
    delta: SpanSnapshot = {}
    for name, (count, total, maximum) in _REGISTRY.items():
        base = snapshot.get(name)
        if base is None:
            delta[name] = (count, total, maximum)
        elif count > base[0]:
            # Max over the window is unknowable from endpoints alone; the
            # whole-run max is a safe, conservative stand-in.
            delta[name] = (count - base[0], total - base[1], maximum)
    return delta


def merge_spans(delta: SpanSnapshot) -> None:
    """Fold another process's span delta into this registry."""
    for name, (count, total, maximum) in delta.items():
        entry = _REGISTRY.get(name)
        if entry is None:
            _REGISTRY[name] = [count, total, maximum]
        else:
            entry[0] += count
            entry[1] += total
            if maximum > entry[2]:
                entry[2] = maximum


def spans_to_wire(delta: SpanSnapshot) -> Dict[str, list]:
    """A span delta in JSON-native wire form (``{name: [count, s, max]}``).

    Mirrors :func:`repro.obs.metrics.delta_to_wire`: span deltas already
    use string keys, so only the value tuples need flattening for JSON
    transports (the sweep shard store, CI artifacts).
    """
    return {name: [count, total, maximum] for name, (count, total, maximum) in delta.items()}


def spans_from_wire(wire: Dict[str, list]) -> SpanSnapshot:
    """Rebuild a :func:`merge_spans`-ready delta from wire form."""
    return {
        name: (int(cell[0]), float(cell[1]), float(cell[2]))
        for name, cell in wire.items()
    }


def reset_spans() -> None:
    """Clear the registry (tests and the ``repro profile`` command)."""
    _REGISTRY.clear()
