"""Automated perf-regression gating over the committed benchmark reports.

Every benchmark suite writes a ``BENCH_<suite>.json`` report and commits
a ``BENCH_<suite>_baseline.json`` capturing the numbers a slower, older
revision produced (see :mod:`repro.benchmarking`).  Until now a slowdown
was only visible to someone eyeballing those files; this module turns
the comparison into a machine-checkable verdict wired into CI:

* :func:`compare_benchmarks` — per-workload relative thresholds with a
  noise floor (sub-floor timings never flag: on shared CI boxes a 2x on
  a 5 ms workload is scheduler jitter, a 2x on 2 s is a regression);
* :func:`gate_suite` / :func:`gate_suites` — load the report/baseline
  pair for a named suite (``engine``, ``engine_vector``,
  ``engine_scale``, ``conductance``) straight from
  ``benchmarks/results/`` and gate them;
* :meth:`RegressionReport.to_dict` — the machine-readable verdict CI
  archives, and :meth:`RegressionReport.summary` — the human account.

Gate semantics: a workload **regresses** when its current time exceeds
``max(threshold × baseline, baseline + noise_floor)``.  The committed
baselines are deliberately *pre-optimization* captures, so the default
gate is a loud catastrophic-regression tripwire (current code is many
times faster); re-bless a baseline with
``python -m repro.benchmarking --write-baseline`` to tighten it after a
perf PR.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Mapping, Optional

from repro.errors import ObservabilityError

__all__ = [
    "WorkloadVerdict",
    "RegressionReport",
    "compare_benchmarks",
    "gate_suite",
    "gate_suites",
    "GATE_SUITES",
]

#: Default relative threshold: current may be up to 25% over baseline.
DEFAULT_THRESHOLD = 1.25
#: Default absolute noise floor in seconds: differences smaller than this
#: never flag, whatever the ratio.
DEFAULT_NOISE_FLOOR = 0.05

#: Suites the file-level gates know how to locate.
GATE_SUITES = ("engine", "engine_vector", "engine_scale", "conductance")


@dataclasses.dataclass(frozen=True)
class WorkloadVerdict:
    """The gate's decision for one benchmark workload.

    ``status`` is one of ``ok`` (within budget), ``regressed`` (over
    budget), ``new`` (no baseline entry), or ``missing`` (baseline entry
    with no current measurement).  ``missing`` only fails the gate under
    ``strict=True``: baselines are captured with ``--profile both`` while
    a quick CI run measures the quick subset, so a plain subset report is
    routine — but a strict full-suite gate should fail on it, otherwise
    deleting a benchmark "fixes" its regression.
    """

    name: str
    status: str
    current_seconds: Optional[float]
    baseline_seconds: Optional[float]
    ratio: Optional[float]
    budget_seconds: Optional[float]
    failed: bool = False
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class RegressionReport:
    """All workload verdicts for one suite plus the overall verdict."""

    suite: str
    verdict: str  # "ok" | "regressed"
    threshold: float
    noise_floor: float
    workloads: tuple[WorkloadVerdict, ...]

    @property
    def regressed(self) -> bool:
        return self.verdict == "regressed"

    def to_dict(self) -> dict[str, Any]:
        """The machine-readable verdict (canonically ordered)."""
        return {
            "schema": "repro-regression-gate/1",
            "suite": self.suite,
            "verdict": self.verdict,
            "threshold": self.threshold,
            "noise_floor_seconds": self.noise_floor,
            "workloads": [
                dataclasses.asdict(verdict)
                for verdict in sorted(self.workloads, key=lambda v: v.name)
            ],
        }

    def summary(self) -> str:
        """The human account, one line per workload, failures first."""
        lines = [
            f"regression gate [{self.suite}]: {self.verdict.upper()} "
            f"(threshold {self.threshold:g}x, noise floor "
            f"{self.noise_floor:g}s)"
        ]
        ordered = sorted(self.workloads, key=lambda v: (not v.failed, v.name))
        for v in ordered:
            marker = "FAIL" if v.failed else "ok  "
            if v.status == "new":
                lines.append(f"  {marker} {v.name}: new workload (no baseline)")
            elif v.status == "missing":
                lines.append(
                    f"  {marker} {v.name}: in baseline but not measured "
                    "(profile subset, or a dropped workload)"
                )
            else:
                lines.append(
                    f"  {marker} {v.name}: {v.current_seconds:.4f}s vs baseline "
                    f"{v.baseline_seconds:.4f}s ({v.ratio:.2f}x, budget "
                    f"{v.budget_seconds:.4f}s)"
                )
        return "\n".join(lines)


def _workloads_of(report: Mapping[str, Any], role: str) -> dict[str, Any]:
    workloads = report.get("workloads")
    if not isinstance(workloads, dict):
        raise ObservabilityError(f"{role} report has no 'workloads' mapping")
    return workloads


def compare_benchmarks(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    suite: str = "bench",
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    per_workload_thresholds: Optional[Mapping[str, float]] = None,
    strict: bool = False,
) -> RegressionReport:
    """Gate a benchmark report dict against a baseline report dict.

    Both dicts use the :mod:`repro.benchmarking` report shape (a
    ``workloads`` mapping of ``{name: {"seconds": ...}}``).
    ``per_workload_thresholds`` overrides the relative threshold for
    individual workloads (e.g. a known-noisy one); ``strict=True`` fails
    baseline workloads absent from the current report.
    """
    if threshold <= 0:
        raise ObservabilityError(f"threshold must be > 0, got {threshold}")
    if noise_floor < 0:
        raise ObservabilityError(f"noise_floor must be >= 0, got {noise_floor}")
    overrides = dict(per_workload_thresholds or {})
    current_workloads = _workloads_of(current, "current")
    baseline_workloads = _workloads_of(baseline, "baseline")
    verdicts: list[WorkloadVerdict] = []
    for name in sorted(set(current_workloads) | set(baseline_workloads)):
        entry = current_workloads.get(name)
        base = baseline_workloads.get(name)
        if base is None:
            verdicts.append(
                WorkloadVerdict(
                    name=name,
                    status="new",
                    current_seconds=float(entry["seconds"]),
                    baseline_seconds=None,
                    ratio=None,
                    budget_seconds=None,
                    detail="no baseline entry; gate skipped",
                )
            )
            continue
        if entry is None:
            verdicts.append(
                WorkloadVerdict(
                    name=name,
                    status="missing",
                    current_seconds=None,
                    baseline_seconds=float(base["seconds"]),
                    ratio=None,
                    budget_seconds=None,
                    failed=strict,
                    detail="baseline workload not present in current report",
                )
            )
            continue
        seconds = float(entry["seconds"])
        base_seconds = float(base["seconds"])
        workload_threshold = overrides.get(name, threshold)
        budget = max(workload_threshold * base_seconds, base_seconds + noise_floor)
        ratio = seconds / base_seconds if base_seconds > 0 else float("inf")
        status = "regressed" if seconds > budget else "ok"
        verdicts.append(
            WorkloadVerdict(
                name=name,
                status=status,
                current_seconds=seconds,
                baseline_seconds=base_seconds,
                ratio=round(ratio, 4),
                budget_seconds=round(budget, 4),
                failed=status == "regressed",
            )
        )
    verdict = "regressed" if any(v.failed for v in verdicts) else "ok"
    return RegressionReport(
        suite=suite,
        verdict=verdict,
        threshold=threshold,
        noise_floor=noise_floor,
        workloads=tuple(verdicts),
    )


def _load(path: pathlib.Path, role: str) -> dict[str, Any]:
    if not path.exists():
        raise ObservabilityError(
            f"{role} file {path} does not exist; run the benchmark suite "
            "first (pytest benchmarks/ or python -m repro.benchmarking)"
        )
    try:
        return json.loads(path.read_text("utf-8"))
    except json.JSONDecodeError as error:
        raise ObservabilityError(f"{role} file {path} is not valid JSON: {error}")


def _suite_paths(suite: str) -> tuple[pathlib.Path, pathlib.Path]:
    from repro import benchmarking

    if suite == "engine":
        return benchmarking.BENCH_PATH, benchmarking.BASELINE_PATH
    if suite == "engine_vector":
        return (
            benchmarking.BENCH_ENGINE_VECTOR_PATH,
            benchmarking.ENGINE_VECTOR_BASELINE_PATH,
        )
    if suite == "engine_scale":
        return (
            benchmarking.BENCH_ENGINE_SCALE_PATH,
            benchmarking.ENGINE_SCALE_BASELINE_PATH,
        )
    if suite == "conductance":
        return (
            benchmarking.BENCH_CONDUCTANCE_PATH,
            benchmarking.CONDUCTANCE_BASELINE_PATH,
        )
    raise ObservabilityError(
        f"unknown gate suite {suite!r}; use one of {GATE_SUITES}"
    )


def gate_suite(
    suite: str,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    report_path: Optional[pathlib.Path] = None,
    baseline_path: Optional[pathlib.Path] = None,
    strict: bool = False,
) -> RegressionReport:
    """Gate one named suite's files under ``benchmarks/results/``.

    Explicit ``report_path`` / ``baseline_path`` override the standard
    locations (the fixture-injection hook the gate tests use).
    """
    default_report, default_baseline = (
        _suite_paths(suite) if suite in GATE_SUITES else (None, None)
    )
    report_file = report_path or default_report
    baseline_file = baseline_path or default_baseline
    if report_file is None or baseline_file is None:
        raise ObservabilityError(
            f"unknown gate suite {suite!r} and no explicit paths given"
        )
    current = _load(pathlib.Path(report_file), "benchmark report")
    baseline = _load(pathlib.Path(baseline_file), "baseline")
    return compare_benchmarks(
        current,
        baseline,
        suite=suite,
        threshold=threshold,
        noise_floor=noise_floor,
        strict=strict,
    )


def gate_suites(
    suites: tuple[str, ...] = GATE_SUITES,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    skip_missing: bool = False,
    strict: bool = False,
) -> list[RegressionReport]:
    """Gate several suites; with ``skip_missing`` absent reports are skipped.

    ``skip_missing=True`` is for local runs where only one suite has been
    benchmarked; CI generates all reports first and gates every suite.
    """
    reports = []
    for suite in suites:
        report_file, _ = _suite_paths(suite)
        if skip_missing and not report_file.exists():
            continue
        reports.append(
            gate_suite(
                suite, threshold=threshold, noise_floor=noise_floor, strict=strict
            )
        )
    return reports
