"""Run manifests: the provenance record attached to experiment outputs.

A manifest answers "what produced this table / cached artifact?" without
re-running anything: git revision, interpreter, machine, the
``REPRO_JOBS`` fan-out setting, plus whatever the caller knows (seed,
graph fingerprint, experiment id, config).  ``run_experiment`` attaches
one to every :class:`~repro.experiments.harness.ExperimentTable`, and the
artifact cache stamps one onto every entry it builds.

Manifests deliberately carry wall-clock and environment facts, so they
are *not* part of any bit-identity comparison — golden traces and the
serial-vs-parallel table tests compare event streams and rows, never
manifests.
"""

from __future__ import annotations

import functools
import os
import pathlib
import platform
import subprocess
import time
from typing import Any, Optional

__all__ = ["git_revision", "run_manifest", "MANIFEST_SCHEMA"]

MANIFEST_SCHEMA = "repro-manifest/1"


@functools.lru_cache(maxsize=1)
def git_revision() -> Optional[str]:
    """The repository's short HEAD revision (cached; ``None`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None


def run_manifest(**extra: Any) -> dict[str, Any]:
    """A fresh manifest dict: environment facts plus caller-supplied fields.

    Caller fields (``seed=...``, ``graph_fingerprint=...``, ``config=...``,
    ``experiment=...``) override nothing — environment keys are reserved
    and caller keys shadowing them raise to keep manifests trustworthy.
    """
    base: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repro_jobs": os.environ.get("REPRO_JOBS", "").strip() or "1",
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    clash = set(base) & set(extra)
    if clash:
        raise ValueError(f"manifest fields {sorted(clash)} are reserved")
    base.update(extra)
    return base
