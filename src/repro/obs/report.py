"""Deterministic markdown reports for runs, experiments, and the gate.

``repro report`` (the CLI face of this module) renders everything the
observability layer knows about one run or experiment into a single
markdown document: the reproduced table, its provenance manifest, the
metrics-registry dump, the span profile, trace-derived series (coverage
curve as a sparkline, delivery-latency distribution, edge churn), and
the perf-regression-gate verdicts.

Determinism contract: for a fixed seed the rendered bytes are identical
across invocations *except* for lines derived from manifest timestamp
fields (``captured_at``) — the property the report test pins.  That is
why wall-clock span/phase timings are excluded unless explicitly asked
for with ``include_timings=True``: counts are deterministic, seconds are
environment noise.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.obs.regress import RegressionReport
from repro.obs.traces import Trace

__all__ = [
    "markdown_table",
    "ascii_sparkline",
    "render_experiment_report",
    "render_trace_report",
    "render_regression_section",
    "experiment_report",
]

_BARS = "▁▂▃▄▅▆▇█"

#: Manifest keys whose values are wall-clock timestamps — rendered, but
#: exempt from the byte-determinism contract (and easy to strip: the key
#: name appears on the line).
TIMESTAMP_FIELDS = ("captured_at",)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-flavored markdown table with stringified cells."""

    def fmt(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def ascii_sparkline(series: Sequence[float], width: int = 60) -> str:
    """A one-line sparkline of ``series`` scaled to its own maximum."""
    if not series:
        return "(empty)"
    if len(series) > width:
        step = (len(series) - 1) / (width - 1) if width > 1 else 0
        samples = [series[round(i * step)] for i in range(width)]
    else:
        samples = list(series)
    top = max(samples)
    if top <= 0:
        return _BARS[0] * len(samples)
    return "".join(
        _BARS[min(len(_BARS) - 1, int(value / top * (len(_BARS) - 1) + 1e-9))]
        for value in samples
    )


def _manifest_section(manifest: Mapping[str, Any]) -> list[str]:
    lines = ["## Manifest", ""]
    rows = []
    for key in sorted(manifest):
        if key == "spans":
            continue  # rendered as its own section
        value = manifest[key]
        if isinstance(value, dict):
            value = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
        rows.append((key, value))
    lines.append(markdown_table(("field", "value"), rows))
    return lines


def _metrics_section(metrics: Mapping[str, Any]) -> list[str]:
    """Render a canonical registry dump (:meth:`MetricsRegistry.collect`)."""
    lines = ["## Metrics", ""]
    scalar_rows = []
    histogram_rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        for cell in entry.get("values", ()):
            labels = ",".join(f'{k}="{v}"' for k, v in sorted(cell["labels"].items()))
            if entry["type"] == "histogram":
                count = cell["count"]
                mean = cell["sum"] / count if count else 0.0
                histogram_rows.append((name, labels, count, f"{mean:.4g}"))
            else:
                scalar_rows.append((name, entry["type"], labels, cell["value"]))
    if scalar_rows:
        lines.append(markdown_table(("metric", "type", "labels", "value"), scalar_rows))
    if histogram_rows:
        lines.append("")
        lines.append(
            markdown_table(("histogram", "labels", "count", "mean"), histogram_rows)
        )
    if not scalar_rows and not histogram_rows:
        lines.append("(no metrics recorded)")
    return lines


def _span_section(spans: Mapping[str, Any], include_timings: bool) -> list[str]:
    lines = ["## Span profile", ""]
    if not spans:
        lines.append("(no spans recorded)")
        return lines
    if include_timings:
        rows = [
            (
                name,
                agg["count"],
                f"{agg['seconds']:.3f}",
                f"{agg['seconds'] / agg['count'] * 1e3:.3f}",
                f"{agg['max_seconds'] * 1e3:.3f}",
            )
            for name, agg in sorted(spans.items())
        ]
        lines.append(
            markdown_table(("span", "count", "total s", "mean ms", "max ms"), rows)
        )
    else:
        rows = [(name, agg["count"]) for name, agg in sorted(spans.items())]
        lines.append(markdown_table(("span", "count"), rows))
        lines.append("")
        lines.append(
            "_Wall-clock columns omitted for determinism; re-run with "
            "`--timings` to include them._"
        )
    return lines


def render_regression_section(reports: Sequence[RegressionReport]) -> list[str]:
    lines = ["## Regression gate", ""]
    if not reports:
        lines.append(
            "(no benchmark reports found — run `pytest benchmarks/` or "
            "`python -m repro.benchmarking` first)"
        )
        return lines
    rows = []
    for report in reports:
        for v in sorted(report.workloads, key=lambda v: v.name):
            rows.append(
                (
                    report.suite,
                    v.name,
                    v.status.upper() if v.failed else v.status,
                    "-" if v.ratio is None else f"{v.ratio:.2f}x",
                    "-" if v.budget_seconds is None else f"{v.budget_seconds:.4f}s",
                )
            )
    lines.append(
        markdown_table(("suite", "workload", "status", "vs baseline", "budget"), rows)
    )
    overall = "REGRESSED" if any(r.regressed for r in reports) else "ok"
    lines.append("")
    lines.append(f"**Overall verdict: {overall}**")
    return lines


def render_experiment_report(
    table,
    regressions: Optional[Sequence[RegressionReport]] = None,
    include_timings: bool = False,
) -> str:
    """The full markdown report for one :class:`ExperimentTable`."""
    lines = [f"# repro report — {table.experiment_id}: {table.title}", ""]
    lines.append("## Result")
    lines.append("")
    lines.append(markdown_table(table.columns, [
        [row.get(col, "") for col in table.columns] for row in table.rows
    ]))
    if table.expectation:
        lines.append("")
        lines.append(f"**Expectation:** {table.expectation}")
    if table.conclusion:
        lines.append("")
        lines.append(f"**Conclusion:** {table.conclusion}")
    if table.manifest:
        lines.append("")
        lines.extend(_manifest_section(table.manifest))
    metrics = getattr(table, "metrics", None)
    if metrics is not None:
        lines.append("")
        lines.extend(_metrics_section(metrics))
    spans = (table.manifest or {}).get("spans")
    if spans is not None:
        lines.append("")
        lines.extend(_span_section(spans, include_timings))
    if regressions is not None:
        lines.append("")
        lines.extend(render_regression_section(regressions))
    return "\n".join(lines) + "\n"


def render_trace_report(trace: Trace, title: str = "trace") -> str:
    """The markdown report for one recorded event stream."""
    stats = trace.stats()
    lines = [f"# repro report — {title}", ""]
    lines.append("## Stats")
    lines.append("")
    rows = [
        ("events", stats["events"]),
        ("max round", stats["max_round"]),
        ("phases", stats["phases"]),
        ("unique activated edges", stats["unique_edges"]),
    ]
    if "delivery_latency" in stats:
        lat = stats["delivery_latency"]
        rows.append(
            ("delivery latency (rounds)",
             f"min {lat['min']} / mean {lat['mean']} / max {lat['max']}")
        )
    lines.append(markdown_table(("quantity", "value"), rows))
    lines.append("")
    lines.append("## Events by kind")
    lines.append("")
    lines.append(
        markdown_table(("kind", "count"), sorted(stats["by_kind"].items()))
    )
    curve = trace.coverage_curve()
    if curve:
        lines.append("")
        lines.append("## Coverage curve")
        lines.append("")
        lines.append("```")
        lines.append(ascii_sparkline(curve))
        lines.append("```")
        lines.append("")
        lines.append(
            f"{curve[0]} → {curve[-1]} rumors known over {len(curve)} rounds."
        )
    latencies = trace.delivery_latencies()
    if latencies:
        histogram: dict[int, int] = {}
        for value in latencies:
            histogram[value] = histogram.get(value, 0) + 1
        lines.append("")
        lines.append("## Delivery latency distribution")
        lines.append("")
        lines.append(
            markdown_table(
                ("latency (rounds)", "deliveries"), sorted(histogram.items())
            )
        )
    churn = trace.activated_edge_churn()
    if churn:
        series = [churn.get(r, 0) for r in range(trace.max_round() + 1)]
        lines.append("")
        lines.append("## Activated-edge churn")
        lines.append("")
        lines.append("```")
        lines.append(ascii_sparkline(series))
        lines.append("```")
        lines.append("")
        lines.append(
            f"{sum(churn.values())} unique edges first activated across "
            f"{len(series)} rounds."
        )
    blocked = trace.blocked_initiation_rate()
    if blocked:
        lines.append("")
        lines.append(f"Blocked-initiation rate: {blocked:.4f}")
    return "\n".join(lines) + "\n"


def experiment_report(
    experiment_id: str,
    profile: str = "quick",
    checked: bool = False,
    include_timings: bool = False,
    gate: bool = True,
) -> str:
    """Run one experiment and render its full report (the CLI workhorse)."""
    from repro.experiments.harness import run_experiment
    from repro.obs.regress import gate_suites

    table = run_experiment(experiment_id, profile, checked=checked)
    regressions = gate_suites(skip_missing=True) if gate else None
    return render_experiment_report(
        table, regressions=regressions, include_timings=include_timings
    )
