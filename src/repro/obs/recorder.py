"""The :class:`Recorder` and its pluggable event sinks.

The engine takes an optional recorder; when absent (the default) the hot
path pays exactly one ``is None`` check per instrumentation site, so
recording is zero-cost when disabled.  When present, every event is
fanned out to the recorder's sinks:

* :class:`MemorySink` — unbounded in-process list (tests, ``repro trace``);
* :class:`RingBufferSink` — fixed-capacity deque keeping the most recent
  events (long runs where only the tail matters);
* :class:`JsonlSink` — streams the canonical JSONL form to a file (the
  golden-trace format);
* :class:`CounterSink` — aggregates counts per event kind plus rumor /
  loss totals without retaining events.

Sinks are intentionally tiny: anything with ``write(event)`` (and an
optional ``close()``) qualifies, so experiment-specific sinks can be
plugged in without touching the engine.
"""

from __future__ import annotations

import collections
import io
import pathlib
from typing import Iterable, Optional, Protocol, Union, runtime_checkable

from repro.obs.events import (
    DeliveryEvent,
    Event,
    InitiationEvent,
    RoundEvent,
    event_to_json,
    events_to_jsonl,
)

__all__ = [
    "Sink",
    "MemorySink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "Recorder",
    "replay_into",
]


@runtime_checkable
class Sink(Protocol):
    """Anything that can consume engine events."""

    def write(self, event: Event) -> None:  # pragma: no cover - protocol
        ...


class MemorySink:
    """Keeps every event in an in-process list."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)

    def to_jsonl(self) -> str:
        """The canonical JSONL stream of everything recorded so far."""
        return events_to_jsonl(self.events)


class RingBufferSink:
    """Keeps only the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: collections.deque[Event] = collections.deque(maxlen=capacity)

    def write(self, event: Event) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> list[Event]:
        """The retained tail, oldest first."""
        return list(self._buffer)


class JsonlSink:
    """Streams canonical JSONL lines to a path or writable text file."""

    def __init__(self, target: Union[str, pathlib.Path, io.TextIOBase]) -> None:
        if isinstance(target, (str, pathlib.Path)):
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._closed = False
        self.lines_written = 0

    def write(self, event: Event) -> None:
        self._file.write(event_to_json(event))
        self._file.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        """Idempotent: safe to call repeatedly, and safe when the
        underlying file was already closed elsewhere (the common
        double-close is ``Recorder.__exit__`` followed by an explicit
        ``close()``)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_file:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()


class CounterSink:
    """Aggregates events into counters without retaining them.

    Attributes
    ----------
    by_kind:
        ``{kind: count}`` over every event seen.
    rumors_learned:
        Sum of both endpoints' coverage deltas over all deliveries.
    lost_initiations:
        Initiations the failure model dropped on the wire.
    max_in_flight:
        Peak end-of-round backlog observed.
    """

    def __init__(self) -> None:
        self.by_kind: dict[str, int] = {}
        self.rumors_learned = 0
        self.lost_initiations = 0
        self.max_in_flight = 0

    def write(self, event: Event) -> None:
        kind = event.kind
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if isinstance(event, DeliveryEvent):
            self.rumors_learned += event.learned_by_initiator + event.learned_by_responder
        elif isinstance(event, InitiationEvent):
            if event.lost:
                self.lost_initiations += 1
        elif isinstance(event, RoundEvent):
            if event.in_flight > self.max_in_flight:
                self.max_in_flight = event.in_flight


class Recorder:
    """Fans engine events out to one or more sinks.

    The engine guards every call site with ``if recorder is not None``, so
    building events (and this fan-out) only happens when a recorder was
    actually attached.
    """

    def __init__(self, *sinks: Sink) -> None:
        self._sinks: tuple[Sink, ...] = tuple(sinks)
        self.events_recorded = 0

    # -- constructors ----------------------------------------------------
    @classmethod
    def in_memory(cls) -> "Recorder":
        """A recorder with a single :class:`MemorySink`."""
        return cls(MemorySink())

    @classmethod
    def ring(cls, capacity: int = 1024) -> "Recorder":
        """A recorder with a single :class:`RingBufferSink`."""
        return cls(RingBufferSink(capacity))

    @classmethod
    def to_jsonl(cls, target: Union[str, pathlib.Path, io.TextIOBase]) -> "Recorder":
        """A recorder streaming canonical JSONL to ``target``."""
        return cls(JsonlSink(target))

    # -- recording -------------------------------------------------------
    def record(self, event: Event) -> None:
        """Hand one event to every sink."""
        self.events_recorded += 1
        for sink in self._sinks:
            sink.write(event)

    def close(self) -> None:
        """Close every sink that supports closing (flush JSONL files)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- queries ---------------------------------------------------------
    @property
    def sinks(self) -> tuple[Sink, ...]:
        return self._sinks

    def sink(self, sink_type: type) -> Optional[Sink]:
        """The first attached sink of ``sink_type`` (or ``None``)."""
        for sink in self._sinks:
            if isinstance(sink, sink_type):
                return sink
        return None

    @property
    def events(self) -> list[Event]:
        """Events retained by the first memory/ring sink (``[]`` if none)."""
        for sink in self._sinks:
            events = getattr(sink, "events", None)
            if events is not None:
                return list(events)
        return []

    def events_of(self, kind: str) -> list[Event]:
        """Retained events of one kind, in record order."""
        return [event for event in self.events if event.kind == kind]

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_into(events: Iterable[Event], *sinks: Sink) -> None:
    """Feed an already-recorded stream through more sinks (offline analysis)."""
    for event in events:
        for sink in sinks:
            sink.write(event)
