"""Per-run time-series telemetry attached to dissemination results.

:class:`RunTelemetry` is the structured answer to "why did this run take
the rounds it did": the coverage curve (how many nodes satisfied the
progress measure at each round), the in-flight backlog curve, and — for
composite protocols driven by a
:class:`~repro.protocols.base.PhaseRunner` — per-phase round/exchange/
wall-clock timings.

It rides on :class:`~repro.sim.metrics.DisseminationResult` as a
``compare=False`` field: two runs with and without telemetry enabled
still compare equal, which is exactly what the recorder-equivalence
property suite asserts.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["PhaseTiming", "RunTelemetry"]


@dataclasses.dataclass(frozen=True)
class PhaseTiming:
    """One protocol phase: logical cost (rounds/exchanges) plus wall clock.

    Wall-clock ``seconds`` is environment noise by definition; everything
    logical about the phase is in ``rounds``/``exchanges``.
    """

    name: str
    rounds: int
    exchanges: int
    seconds: float
    #: Engine backend the phase executed on: ``"vector"``, ``"scalar"``,
    #: or ``"scalar-fallback"`` (a vector-dispatched run whose protocol
    #: was not vector-eligible).
    backend: str = "scalar"


@dataclasses.dataclass(frozen=True)
class RunTelemetry:
    """Per-round series for one dissemination run.

    Attributes
    ----------
    coverage_curve:
        ``coverage_curve[t]`` is the progress measure at round ``t`` —
        sampled before every executed round and once more at the end, so a
        complete ``r``-round run yields ``r + 1`` samples.  ``None`` when
        the run had no coverage measure (e.g. all-to-all modes).
    in_flight_curve:
        End-of-round in-flight exchange backlog, one sample per executed
        round.
    phase_timings:
        Phase boundaries for composite protocols (empty otherwise).
    """

    coverage_curve: Optional[tuple[int, ...]] = None
    in_flight_curve: tuple[int, ...] = ()
    phase_timings: tuple[PhaseTiming, ...] = ()

    def in_flight_histogram(self) -> dict[int, int]:
        """``{backlog: rounds-at-that-backlog}`` over the run."""
        histogram: dict[int, int] = {}
        for pending in self.in_flight_curve:
            histogram[pending] = histogram.get(pending, 0) + 1
        return dict(sorted(histogram.items()))

    def max_in_flight(self) -> int:
        """Peak in-flight backlog (0 for an empty curve)."""
        return max(self.in_flight_curve, default=0)
