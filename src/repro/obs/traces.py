"""Trace analytics: query, derive from, and diff recorded event streams.

PR 4 made the engine *emit* canonical JSONL event streams (the golden
files, ``JsonlSink`` output, ``repro trace --jsonl``); this module makes
them *answerable*.  A :class:`Trace` wraps a sequence of canonical event
records (plain dicts, exactly the :func:`~repro.obs.events.event_to_dict`
shape) and supports:

* **filter/group/derive** — ``trace.filter(kind="deliver", round=3)``,
  ``trace.group_by("initiator")``, ``trace.derive(fn)``;
* **derived series** — per-round delivery-latency distributions,
  blocked/rejected-initiation rates, the coverage curve implied by the
  deliveries' learned-rumor deltas, and activated-edge churn (new unique
  edges per round);
* **structural diff** — :func:`diff_traces` pinpoints the first
  diverging event between two streams, the tool for debugging
  nondeterminism ("two supposedly identical runs: where do they fork?").

Traces built from multi-phase protocols (EID, Path Discovery) reset the
round counter at phase boundaries; per-round series here are therefore
most meaningful on single-engine streams, and :meth:`Trace.stats` counts
such resets as ``phases``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Callable, Iterable, Iterator, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.events import Event, event_to_dict

__all__ = ["Trace", "TraceDiff", "diff_traces", "load_trace"]

Record = dict[str, Any]


def _canonical_line(record: Record) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


class Trace:
    """An ordered, immutable view over canonical engine-event records."""

    def __init__(self, records: Iterable[Record]) -> None:
        self._records: tuple[Record, ...] = tuple(records)
        for index, record in enumerate(self._records):
            if "kind" not in record or "round" not in record:
                raise ObservabilityError(
                    f"record {index} is not an engine event (missing "
                    f"'kind'/'round'): {record!r}"
                )

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "Trace":
        """Wrap live event objects (e.g. ``recorder.events``)."""
        return cls(event_to_dict(event) for event in events)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse a canonical JSONL stream (one event per line)."""
        records = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"line {lineno} is not valid JSON: {error}"
                ) from None
        return cls(records)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Trace":
        """Load a JSONL trace file (golden files, ``JsonlSink`` output)."""
        return cls.from_jsonl(pathlib.Path(path).read_text("utf-8"))

    # -- sequence protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._records[index])
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        return f"Trace({len(self._records)} events)"

    # -- filter / group / derive ----------------------------------------
    def filter(
        self,
        predicate: Optional[Callable[[Record], bool]] = None,
        **field_equals: Any,
    ) -> "Trace":
        """Events matching every ``field=value`` pair (and ``predicate``).

        ``trace.filter(kind="deliver")``, ``trace.filter(round=3)``,
        ``trace.filter(kind="initiate", lost=True)`` — missing fields
        never match.
        """
        out = []
        for record in self._records:
            if any(
                field not in record or record[field] != value
                for field, value in field_equals.items()
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return Trace(out)

    def group_by(self, field: str) -> dict[Any, "Trace"]:
        """Sub-traces keyed by a field's value (records missing it skipped)."""
        groups: dict[Any, list[Record]] = {}
        for record in self._records:
            if field in record:
                groups.setdefault(record[field], []).append(record)
        return {key: Trace(records) for key, records in sorted(
            groups.items(), key=lambda kv: repr(kv[0])
        )}

    def derive(self, fn: Callable[[Record], Any]) -> list[Any]:
        """Map ``fn`` over every record (a query's projection step)."""
        return [fn(record) for record in self._records]

    # -- summaries -------------------------------------------------------
    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: count}`` over the whole trace, kind-sorted."""
        counts: dict[str, int] = {}
        for record in self._records:
            kind = record["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def max_round(self) -> int:
        """Highest round stamped on any event (-1 for an empty trace)."""
        return max((record["round"] for record in self._records), default=-1)

    # -- derived series --------------------------------------------------
    def delivery_latencies(self) -> list[int]:
        """Observed latency (delivered round - initiated round) per delivery."""
        return [
            record["round"] - record["initiated_at"]
            for record in self._records
            if record["kind"] == "deliver"
        ]

    def delivery_latency_by_round(self) -> dict[int, list[int]]:
        """Per-delivery-round latency distributions, round-sorted."""
        series: dict[int, list[int]] = {}
        for record in self._records:
            if record["kind"] == "deliver":
                series.setdefault(record["round"], []).append(
                    record["round"] - record["initiated_at"]
                )
        return dict(sorted(series.items()))

    def blocked_initiation_rate(self) -> float:
        """Blocked initiations over all initiation attempts (0.0 if none).

        Attempts are ``initiate`` + ``blocked`` + ``rejected`` events —
        every time a protocol *tried* to start an exchange.
        """
        counts = self.counts_by_kind()
        blocked = counts.get("blocked", 0)
        attempts = counts.get("initiate", 0) + blocked + counts.get("rejected", 0)
        return blocked / attempts if attempts else 0.0

    def coverage_curve(self, initial: int = 1) -> list[int]:
        """Cumulative rumors-known implied by delivery coverage deltas.

        ``initial`` is the rumor count before round 0 (1 for a broadcast
        source).  Entry ``t`` is the total after all round-``t``
        deliveries; length is ``max_round() + 1``.  On a complete
        no-failure broadcast the curve ends at ``n`` (the deltas sum to
        ``n - 1`` — property-tested against the recorder).
        """
        rounds = self.max_round() + 1
        learned = [0] * rounds
        for record in self._records:
            if record["kind"] == "deliver":
                learned[record["round"]] += (
                    record["learned_by_initiator"] + record["learned_by_responder"]
                )
        curve = []
        total = initial
        for round_learned in learned:
            total += round_learned
            curve.append(total)
        return curve

    def activated_edge_churn(self) -> dict[int, int]:
        """New unique (undirected) edges first activated per round.

        The series behind "is the protocol still exploring or re-walking
        known edges?" — the total over all rounds is the activated-edge
        count the lower-bound reduction feeds on.
        """
        seen: set[tuple] = set()
        churn: dict[int, int] = {}
        for record in self._records:
            if record["kind"] != "initiate":
                continue
            a, b = record["initiator"], record["responder"]
            edge = (a, b) if repr(a) <= repr(b) else (b, a)
            if edge not in seen:
                seen.add(edge)
                round_ = record["round"]
                churn[round_] = churn.get(round_, 0) + 1
        return dict(sorted(churn.items()))

    def stats(self) -> dict[str, Any]:
        """One-glance summary: counts per kind, rounds, phases, latencies."""
        counts = self.counts_by_kind()
        latencies = self.delivery_latencies()
        phases = 1 if self._records else 0
        last_round = None
        for record in self._records:
            if last_round is not None and record["round"] < last_round:
                phases += 1
            last_round = record["round"]
        out: dict[str, Any] = {
            "events": len(self._records),
            "by_kind": counts,
            "max_round": self.max_round(),
            "phases": phases,
            "unique_edges": sum(self.activated_edge_churn().values()),
        }
        if latencies:
            out["delivery_latency"] = {
                "min": min(latencies),
                "max": max(latencies),
                "mean": round(sum(latencies) / len(latencies), 3),
            }
        return out


@dataclasses.dataclass(frozen=True)
class TraceDiff:
    """The first structural divergence between two traces.

    ``index`` is the position of the first differing event (equal to the
    shorter trace's length when one stream is a strict prefix of the
    other).  ``a`` / ``b`` are the canonical JSON lines at that position
    (``None`` past the end of a stream); ``round_a`` / ``round_b`` locate
    the divergence in simulation time.
    """

    index: int
    round_a: Optional[int]
    round_b: Optional[int]
    a: Optional[str]
    b: Optional[str]
    len_a: int
    len_b: int

    def describe(self) -> str:
        """A human-readable one-stop account of the divergence."""
        lines = [
            f"traces diverge at event {self.index} "
            f"(lengths {self.len_a} vs {self.len_b})"
        ]
        if self.a is None:
            lines.append(f"  a: <ended after {self.len_a} events>")
        else:
            lines.append(f"  a (round {self.round_a}): {self.a}")
        if self.b is None:
            lines.append(f"  b: <ended after {self.len_b} events>")
        else:
            lines.append(f"  b (round {self.round_b}): {self.b}")
        return "\n".join(lines)


def diff_traces(a: Trace, b: Trace) -> Optional[TraceDiff]:
    """Structurally compare two traces; ``None`` means identical.

    Comparison is record-by-record over the canonical dict form, so two
    streams serialized with different key orders but identical content
    compare equal, while the first semantic divergence — an extra
    initiation, a shifted delivery round, a different coverage delta — is
    pinpointed with both offending events.
    """
    for index, (rec_a, rec_b) in enumerate(zip(a, b)):
        if rec_a != rec_b:
            return TraceDiff(
                index=index,
                round_a=rec_a["round"],
                round_b=rec_b["round"],
                a=_canonical_line(rec_a),
                b=_canonical_line(rec_b),
                len_a=len(a),
                len_b=len(b),
            )
    if len(a) != len(b):
        index = min(len(a), len(b))
        longer = a if len(a) > len(b) else b
        record = longer[index]
        return TraceDiff(
            index=index,
            round_a=record["round"] if len(a) > len(b) else None,
            round_b=record["round"] if len(b) > len(a) else None,
            a=_canonical_line(record) if len(a) > len(b) else None,
            b=_canonical_line(record) if len(b) > len(a) else None,
            len_a=len(a),
            len_b=len(b),
        )
    return None


def load_trace(path: Union[str, pathlib.Path]) -> Trace:
    """Module-level alias for :meth:`Trace.load` (CLI convenience)."""
    return Trace.load(path)
