"""Process-local metrics registry: Counters, Gauges, Histograms with labels.

This is the exported-metrics tier of ``repro.obs``: where spans
(:mod:`repro.obs.profile`) answer "where did the wall clock go", metrics
answer "how much work of each kind happened" — and, unlike spans, they
are **deterministic** under seeded runs because nothing here ever reads a
clock.  A serial run and a ``REPRO_JOBS=2`` run of the same experiment
therefore report *identical* metric values, which the merge test pins.

Design points (deliberately Prometheus-shaped, but dependency-free):

* A :class:`MetricsRegistry` owns named metrics; each metric holds one
  numeric cell per label set.  Metric and label names are validated
  against the Prometheus grammar so :meth:`MetricsRegistry.exposition`
  output is directly scrapeable.
* :class:`Counter` cells only go up; :class:`Gauge` cells are set/inc'd;
  :class:`Histogram` cells accumulate fixed-bucket counts plus
  sum/count.  Bucket bounds are frozen at creation — cross-process
  merging requires all parties to agree on them.
* **Merging** mirrors ``obs.profile`` spans: workers snapshot the
  registry around each trial (:func:`metrics_snapshot` /
  :func:`metrics_since`), ship the delta home, and the parent folds it in
  with :func:`merge_metrics`.  Counters and histogram cells add; gauges
  take the maximum (the only associative, order-free choice that is also
  what every current gauge — a peak backlog — wants).
* The engine hot path is wired through the existing zero-cost recorder
  pattern: :class:`MetricsSink` is an event sink, so per-event metrics
  cost nothing unless a :class:`~repro.obs.recorder.Recorder` carrying
  one is attached.  Coarse per-run counters (runs, rounds, exchanges)
  are bumped once per run by :func:`repro.sim.runner.run_until_complete`.

Like the span registry, the default registry is process-global state; it
never influences simulation results (the recorder-equivalence suite
covers the sink) and :func:`reset_metrics` clears it for tests.
"""

from __future__ import annotations

import itertools
import json
import re
from typing import Any, Iterable, Mapping, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.events import (
    DeliveryEvent,
    Event,
    InitiationEvent,
    RoundEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "default_registry",
    "delta_from_wire",
    "delta_to_wire",
    "merge_metrics",
    "metrics_since",
    "metrics_snapshot",
    "reset_metrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: powers of two suit round-valued quantities
#: (delivery latencies, backlogs) far better than Prometheus's decimal
#: defaults, and small-int workloads land in distinct buckets.
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: A label set in canonical form: name-sorted ``(name, value)`` pairs.
LabelKey = tuple

#: Process-monotonic stamp source for gauge touch tracking.
_GAUGE_TOUCH = itertools.count(1)
Number = Union[int, float]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _format_number(value: Number) -> str:
    """Exposition-format a number: integral floats render as integers."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(key: LabelKey, extra: tuple = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: one numeric (or histogram) cell per label set."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._cells: dict[LabelKey, Any] = {}

    def label_sets(self) -> list[LabelKey]:
        """Every label set with a live cell, in canonical (sorted) order."""
        return sorted(self._cells)


class Counter(_Metric):
    """A monotonically increasing count (events, exchanges, cache hits)."""

    type_name = "counter"

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the cell for ``labels``."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._cells[key] = self._cells.get(key, 0) + amount

    def value(self, **labels: Any) -> Number:
        """Current value of one cell (0 if never incremented)."""
        return self._cells.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A value that can go up and down (peaks, sizes, last-seen values).

    Every write also records a process-monotonic *touch stamp* per cell,
    so :meth:`MetricsRegistry.since` can tell "written during the
    window" apart from "left over from before" — a gauge re-set to the
    same value is still work done since the snapshot, while an untouched
    cell in a long-lived pool worker must not leak into later deltas.
    """

    type_name = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._stamps: dict[LabelKey, int] = {}

    def _touch(self, key: LabelKey) -> None:
        self._stamps[key] = next(_GAUGE_TOUCH)

    def set(self, value: Number, **labels: Any) -> None:
        key = _label_key(labels)
        self._cells[key] = value
        self._touch(key)

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        key = _label_key(labels)
        self._cells[key] = self._cells.get(key, 0) + amount
        self._touch(key)

    def dec(self, amount: Number = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: Number, **labels: Any) -> None:
        """Raise the cell to ``value`` if larger (running-peak gauges)."""
        key = _label_key(labels)
        if key not in self._cells or value > self._cells[key]:
            self._cells[key] = value
        self._touch(key)

    def value(self, **labels: Any) -> Number:
        return self._cells.get(_label_key(labels), 0)


class Histogram(_Metric):
    """Fixed-bucket distribution: per-bucket counts plus sum and count.

    Buckets are upper bounds (``le`` semantics); an implicit ``+Inf``
    bucket catches the tail.  Cell state is ``[counts..., sum, count]``
    where ``counts`` has ``len(buckets) + 1`` entries.
    """

    type_name = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[Number] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name} buckets must be non-empty, sorted, unique: "
                f"{bounds}"
            )
        self.buckets = bounds

    def observe(self, value: Number, **labels: Any) -> None:
        key = _label_key(labels)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell[i] += 1
                break
        else:
            cell[len(self.buckets)] += 1
        cell[-2] += value
        cell[-1] += 1

    def snapshot_cell(self, **labels: Any) -> dict[str, Any]:
        """One cell as ``{"buckets": [...], "sum": s, "count": n}``."""
        cell = self._cells.get(_label_key(labels))
        if cell is None:
            return {"buckets": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
        return {"buckets": list(cell[:-2]), "sum": cell[-2], "count": cell[-1]}

    def count(self, **labels: Any) -> int:
        cell = self._cells.get(_label_key(labels))
        return 0 if cell is None else cell[-1]

    def sum(self, **labels: Any) -> float:
        cell = self._cells.get(_label_key(labels))
        return 0.0 if cell is None else cell[-2]


class MetricsRegistry:
    """A named collection of metrics with canonical dump/exposition forms.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing metric (so call sites never
    coordinate creation), but asking with a conflicting type — or, for
    histograms, conflicting buckets — raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name}, not {cls.type_name}"
                )
            if cls is Histogram and kwargs.get("buckets") is not None:
                if tuple(float(b) for b in kwargs["buckets"]) != existing.buckets:
                    raise ObservabilityError(
                        f"histogram {name!r} already registered with buckets "
                        f"{existing.buckets}"
                    )
            return existing
        metric = cls(name, help, **{k: v for k, v in kwargs.items() if v is not None})
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Iterable[Number]] = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metric(self, name: str) -> Optional[_Metric]:
        """The registered metric of that name, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- canonical dump ------------------------------------------------
    def collect(self) -> dict[str, Any]:
        """The whole registry as a canonical, JSON-native dict.

        Shape: ``{name: {"type", "help", "values": [{"labels", ...}]}}``
        with names and label sets sorted — the same bytes for the same
        counts, regardless of insertion order.  Histograms additionally
        carry their bucket bounds so dumps are self-describing.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict[str, Any] = {"type": metric.type_name, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            values = []
            for key in metric.label_sets():
                labels = {k: v for k, v in key}
                if isinstance(metric, Histogram):
                    cell = metric._cells[key]
                    values.append(
                        {
                            "labels": labels,
                            "bucket_counts": list(cell[:-2]),
                            "sum": cell[-2],
                            "count": cell[-1],
                        }
                    )
                else:
                    values.append({"labels": labels, "value": metric._cells[key]})
            entry["values"] = values
            out[name] = entry
        return out

    def to_json(self) -> str:
        """Canonical JSON dump: sorted keys, compact separators, ASCII."""
        return json.dumps(
            self.collect(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def exposition(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.type_name}")
            for key in metric.label_sets():
                if isinstance(metric, Histogram):
                    cell = metric._cells[key]
                    cumulative = 0
                    for bound, count in zip(metric.buckets, cell[:-2]):
                        cumulative += count
                        le = _render_labels(key, (("le", _format_number(bound)),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += cell[len(metric.buckets)]
                    inf = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{inf} {cumulative}")
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {_format_number(cell[-2])}"
                    )
                    lines.append(f"{name}_count{_render_labels(key)} {cell[-1]}")
                else:
                    value = _format_number(metric._cells[key])
                    lines.append(f"{name}{_render_labels(key)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- cross-process merge (mirrors obs.profile spans) ----------------
    def snapshot(self) -> dict[str, Any]:
        """A picklable deep copy of all cells, for :meth:`since`."""
        snap: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            cells = {
                key: (list(cell) if isinstance(cell, list) else cell)
                for key, cell in metric._cells.items()
            }
            entry: dict[str, Any] = {
                "type": metric.type_name,
                "help": metric.help,
                "cells": cells,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = metric.buckets
            if isinstance(metric, Gauge):
                entry["stamps"] = dict(metric._stamps)
            snap[name] = entry
        return snap

    def since(self, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        """The registry delta since ``snapshot`` (new counts only).

        Counters and histogram cells subtract; gauges report their
        current value (a point-in-time reading has no meaningful
        difference), but only cells *touched* since the snapshot — an
        untouched gauge is not work done in the window, and long-lived
        pool workers would otherwise leak stale cells into every later
        delta.  Suitable for :func:`merge_metrics` in another process —
        how worker metrics travel home from the trial pool.
        """
        current = self.snapshot()
        delta: dict[str, Any] = {}
        for name, entry in current.items():
            base = snapshot.get(name, {"cells": {}})
            cells: dict[LabelKey, Any] = {}
            for key, cell in entry["cells"].items():
                before = base["cells"].get(key)
                if entry["type"] == "gauge":
                    stamp = entry.get("stamps", {}).get(key, 0)
                    base_stamp = base.get("stamps", {}).get(key, 0)
                    if before is None or stamp > base_stamp:
                        cells[key] = cell
                elif entry["type"] == "histogram":
                    if before is None:
                        changed = list(cell)
                    else:
                        changed = [a - b for a, b in zip(cell, before)]
                    if changed[-1]:
                        cells[key] = changed
                else:
                    diff = cell - (before or 0)
                    if diff:
                        cells[key] = diff
            if cells:
                payload = {**entry, "cells": cells}
                # Touch stamps are process-local bookkeeping, not delta
                # content — the receiving registry re-stamps on merge.
                payload.pop("stamps", None)
                delta[name] = payload
        return delta

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold another registry's delta into this one.

        Counters and histogram cells add; gauges take the maximum.
        Metrics unseen here are created with the delta's type/help (and
        buckets), so a parent learns worker-only metrics automatically.
        """
        for name, entry in delta.items():
            kind = entry["type"]
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
                for key, value in entry["cells"].items():
                    metric._cells[key] = metric._cells.get(key, 0) + value
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
                for key, value in entry["cells"].items():
                    if key not in metric._cells or value > metric._cells[key]:
                        metric._cells[key] = value
                    metric._touch(key)
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), buckets=entry.get("buckets")
                )
                for key, cell in entry["cells"].items():
                    mine = metric._cells.get(key)
                    if mine is None:
                        metric._cells[key] = list(cell)
                    else:
                        for i, value in enumerate(cell):
                            mine[i] += value
            else:  # pragma: no cover - snapshots only carry known types
                raise ObservabilityError(f"unknown metric type {kind!r} in delta")

    def reset(self) -> None:
        """Drop every metric (tests and the report CLI)."""
        self._metrics.clear()


#: The process-global default registry, mirroring the span registry.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the library's own counters live in."""
    return _DEFAULT


def metrics_snapshot() -> dict[str, Any]:
    """Snapshot the default registry (see :meth:`MetricsRegistry.snapshot`)."""
    return _DEFAULT.snapshot()


def metrics_since(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Delta of the default registry since ``snapshot``."""
    return _DEFAULT.since(snapshot)


def merge_metrics(delta: Mapping[str, Any]) -> None:
    """Fold a worker's delta into the default registry."""
    _DEFAULT.merge(delta)


def delta_to_wire(delta: Mapping[str, Any]) -> dict[str, Any]:
    """A :meth:`MetricsRegistry.since` delta in JSON-native wire form.

    ``since`` deltas key cells by label-pair *tuples*, which survive
    pickling but not JSON.  The wire form flattens each cell to
    ``[label_pairs, value]`` with every tuple replaced by a list, so a
    delta can ride any transport — the sweep shard store, a CI artifact,
    an HTTP body — and come back through :func:`delta_from_wire` ready
    for :func:`merge_metrics` on the other side.  Cells are emitted in
    canonical (sorted label key) order: same delta, same wire bytes.
    """
    wire: dict[str, Any] = {}
    for name, entry in delta.items():
        cells = [
            [
                [list(pair) for pair in key],
                list(cell) if isinstance(cell, list) else cell,
            ]
            for key, cell in sorted(entry["cells"].items())
        ]
        out: dict[str, Any] = {
            "type": entry["type"],
            "help": entry.get("help", ""),
            "cells": cells,
        }
        if "buckets" in entry:
            out["buckets"] = list(entry["buckets"])
        wire[name] = out
    return wire


def delta_from_wire(wire: Mapping[str, Any]) -> dict[str, Any]:
    """Rebuild a mergeable delta from :func:`delta_to_wire` output."""
    delta: dict[str, Any] = {}
    for name, entry in wire.items():
        cells: dict[LabelKey, Any] = {}
        for pairs, cell in entry["cells"]:
            key = tuple((str(label), str(value)) for label, value in pairs)
            cells[key] = list(cell) if isinstance(cell, list) else cell
        out: dict[str, Any] = {
            "type": entry["type"],
            "help": entry.get("help", ""),
            "cells": cells,
        }
        if "buckets" in entry:
            out["buckets"] = tuple(float(b) for b in entry["buckets"])
        delta[name] = out
    return delta


def reset_metrics() -> None:
    """Clear the default registry (tests and the report CLI)."""
    _DEFAULT.reset()


class MetricsSink:
    """An event sink updating a registry — the engine's metrics wiring.

    Attach it to a :class:`~repro.obs.recorder.Recorder` to export the
    event stream as metrics without retaining events.  The totals match
    :class:`~repro.obs.recorder.CounterSink` exactly (property-tested):

    * ``engine_events_total{kind=...}`` — one increment per event;
    * ``engine_rumors_learned_total`` — both endpoints' coverage deltas;
    * ``engine_lost_initiations_total`` — wire losses;
    * ``engine_in_flight_peak`` — running peak end-of-round backlog;
    * ``engine_delivery_latency_rounds`` — histogram of observed
      delivery latencies (``delivered round - initiated_at``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._events = self.registry.counter(
            "engine_events_total", "engine events by kind"
        )
        self._rumors = self.registry.counter(
            "engine_rumors_learned_total", "rumors learned across all deliveries"
        )
        self._lost = self.registry.counter(
            "engine_lost_initiations_total", "initiations dropped on the wire"
        )
        self._peak = self.registry.gauge(
            "engine_in_flight_peak", "peak end-of-round in-flight backlog"
        )
        self._latency = self.registry.histogram(
            "engine_delivery_latency_rounds",
            "delivery latency in rounds (delivered - initiated)",
        )

    def write(self, event: Event) -> None:
        self._events.inc(kind=event.kind)
        if isinstance(event, DeliveryEvent):
            learned = event.learned_by_initiator + event.learned_by_responder
            if learned:
                self._rumors.inc(learned)
            self._latency.observe(event.round - event.initiated_at)
        elif isinstance(event, InitiationEvent):
            if event.lost:
                self._lost.inc()
        elif isinstance(event, RoundEvent):
            self._peak.set_max(event.in_flight)
