"""``repro.obs`` — structured run telemetry, event recording, profiling.

Three independent pieces, designed so each costs nothing unless used:

* **Event streams** (:mod:`repro.obs.events`, :mod:`repro.obs.recorder`) —
  the engine feeds typed per-round events (initiations, deliveries,
  merges/coverage deltas, wakeups, blocked/rejected initiations, round
  summaries) to a :class:`Recorder` with pluggable sinks.  Disabled by
  default: the engine pays one ``is None`` check per site.
* **Profiling spans** (:mod:`repro.obs.profile`) — ``with span("dijkstra")``
  context managers on coarse operations, aggregated process-globally and
  merged across ``map_trials`` workers.
* **Run manifests** (:mod:`repro.obs.manifest`) — provenance dicts (git
  rev, jobs, seed, graph fingerprint, config) attached to experiment
  tables and artifact-cache entries.

Per-run series land on results as :class:`RunTelemetry`
(:mod:`repro.obs.telemetry`).  See ``docs/OBSERVABILITY.md`` for the
event schema and the overhead numbers.
"""

from repro.obs.events import (
    BlockedInitiationEvent,
    DeliveryEvent,
    Event,
    InitiationEvent,
    RejectedInitiationEvent,
    RoundEvent,
    VoidExchangeEvent,
    WakeupEvent,
    event_to_dict,
    event_to_json,
    events_to_jsonl,
    node_key,
)
from repro.obs.manifest import MANIFEST_SCHEMA, git_revision, run_manifest
from repro.obs.profile import (
    merge_spans,
    reset_spans,
    span,
    span_aggregates,
    span_snapshot,
    spans_since,
)
from repro.obs.recorder import (
    CounterSink,
    JsonlSink,
    MemorySink,
    Recorder,
    RingBufferSink,
    Sink,
    replay_into,
)
from repro.obs.telemetry import PhaseTiming, RunTelemetry

__all__ = [
    "BlockedInitiationEvent",
    "CounterSink",
    "DeliveryEvent",
    "Event",
    "InitiationEvent",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MemorySink",
    "PhaseTiming",
    "Recorder",
    "RejectedInitiationEvent",
    "RingBufferSink",
    "RoundEvent",
    "RunTelemetry",
    "Sink",
    "VoidExchangeEvent",
    "WakeupEvent",
    "event_to_dict",
    "event_to_json",
    "events_to_jsonl",
    "git_revision",
    "merge_spans",
    "node_key",
    "replay_into",
    "reset_spans",
    "run_manifest",
    "span",
    "span_aggregates",
    "span_snapshot",
    "spans_since",
]
