"""``repro.obs`` — structured run telemetry, event recording, profiling.

Three independent pieces, designed so each costs nothing unless used:

* **Event streams** (:mod:`repro.obs.events`, :mod:`repro.obs.recorder`) —
  the engine feeds typed per-round events (initiations, deliveries,
  merges/coverage deltas, wakeups, blocked/rejected initiations, round
  summaries) to a :class:`Recorder` with pluggable sinks.  Disabled by
  default: the engine pays one ``is None`` check per site.
* **Profiling spans** (:mod:`repro.obs.profile`) — ``with span("dijkstra")``
  context managers on coarse operations, aggregated process-globally and
  merged across ``map_trials`` workers.
* **Run manifests** (:mod:`repro.obs.manifest`) — provenance dicts (git
  rev, jobs, seed, graph fingerprint, config) attached to experiment
  tables and artifact-cache entries.

On top of the recording tier sits the analysis tier:

* **Metrics** (:mod:`repro.obs.metrics`) — a deterministic, clock-free
  Counter/Gauge/Histogram registry with Prometheus exposition, merged
  across ``map_trials`` workers like spans;
* **Trace analytics** (:mod:`repro.obs.traces`) — query/derive/diff over
  recorded JSONL event streams;
* **Regression gating** (:mod:`repro.obs.regress`) — machine-checkable
  verdicts comparing ``BENCH_*.json`` against committed baselines;
* **Reports** (:mod:`repro.obs.report`) — the ``repro report`` markdown
  renderer tying all of the above together.

Per-run series land on results as :class:`RunTelemetry`
(:mod:`repro.obs.telemetry`).  See ``docs/OBSERVABILITY.md`` for the
event schema and the overhead numbers.
"""

from repro.obs.events import (
    BlockedInitiationEvent,
    DeliveryEvent,
    Event,
    InitiationEvent,
    RejectedInitiationEvent,
    RoundEvent,
    VoidExchangeEvent,
    WakeupEvent,
    event_to_dict,
    event_to_json,
    events_to_jsonl,
    node_key,
)
from repro.obs.manifest import MANIFEST_SCHEMA, git_revision, run_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    default_registry,
    delta_from_wire,
    delta_to_wire,
    merge_metrics,
    metrics_since,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.profile import (
    merge_spans,
    reset_spans,
    span,
    span_aggregates,
    span_snapshot,
    spans_from_wire,
    spans_since,
    spans_to_wire,
)
from repro.obs.recorder import (
    CounterSink,
    JsonlSink,
    MemorySink,
    Recorder,
    RingBufferSink,
    Sink,
    replay_into,
)
from repro.obs.regress import (
    GATE_SUITES,
    RegressionReport,
    WorkloadVerdict,
    compare_benchmarks,
    gate_suite,
    gate_suites,
)
from repro.obs.report import (
    render_experiment_report,
    render_trace_report,
)
from repro.obs.telemetry import PhaseTiming, RunTelemetry
from repro.obs.traces import Trace, TraceDiff, diff_traces, load_trace

__all__ = [
    "BlockedInitiationEvent",
    "Counter",
    "CounterSink",
    "DeliveryEvent",
    "Event",
    "GATE_SUITES",
    "Gauge",
    "Histogram",
    "InitiationEvent",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MemorySink",
    "MetricsRegistry",
    "MetricsSink",
    "PhaseTiming",
    "Recorder",
    "RegressionReport",
    "RejectedInitiationEvent",
    "RingBufferSink",
    "RoundEvent",
    "RunTelemetry",
    "Sink",
    "Trace",
    "TraceDiff",
    "VoidExchangeEvent",
    "WakeupEvent",
    "WorkloadVerdict",
    "compare_benchmarks",
    "default_registry",
    "diff_traces",
    "event_to_dict",
    "event_to_json",
    "events_to_jsonl",
    "gate_suite",
    "gate_suites",
    "git_revision",
    "load_trace",
    "merge_metrics",
    "merge_spans",
    "metrics_since",
    "metrics_snapshot",
    "node_key",
    "render_experiment_report",
    "render_trace_report",
    "replay_into",
    "reset_metrics",
    "reset_spans",
    "run_manifest",
    "span",
    "span_aggregates",
    "span_snapshot",
    "spans_since",
]
