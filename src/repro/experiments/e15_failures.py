"""E15: fault tolerance — the conclusion's robustness conjecture, measured.

The paper's conclusion: "push--pull is relatively robust to failures,
while our other approaches are not."  Two failure regimes:

* **message loss** — every exchange independently lost with probability
  ``p``.  Push--pull just retries (random contacts); RR Broadcast also
  retries via its round-robin cycling, so both complete, with push--pull
  degrading the least.
* **random node crashes** — ``f`` random nodes crash early.  Both survive
  at these densities (the spanner has Ω(n log n) edges and RR exchanges
  are bidirectional), quantifying *how much* redundancy the pipeline has.
* **adversarial crashes** — crash exactly one node's (small) spanner
  neighborhood.  The victim stays richly connected in ``G`` — push--pull
  reaches it — but it is severed from the spanner, so the pipeline's
  coverage drops below 1.  This is the sharp content of "our other
  approaches are not robust": the spanner route has single points of
  failure that the dense graph does not.
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.graphs import generators
from repro.protocols.robustness import (
    run_push_pull_under_failures,
    run_spanner_pipeline_under_failures,
    spanner_cut_crashes,
)
from repro.sim.failures import CrashSchedule, MessageLoss
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e15"]


def _loss_trial(graph, source, p: float, seed: int) -> tuple:
    """One message-loss trial (module-level so it pickles for REPRO_JOBS)."""
    pp = run_push_pull_under_failures(
        graph, MessageLoss(p, seed=seed), source=source, seed=seed
    )
    sp = run_spanner_pipeline_under_failures(
        graph, MessageLoss(p, seed=seed + 1), source=source, seed=seed
    )
    return pp.rounds, pp.coverage, sp.rounds, sp.coverage


def _crash_trial(graph, source, f: int, seed: int) -> tuple:
    """One random-crash trial (module-level so it pickles for REPRO_JOBS)."""
    crashes = CrashSchedule.random_crashes(
        graph.nodes(), f, by_round=3, rng=random.Random(seed), protect=[source]
    )
    pp = run_push_pull_under_failures(
        graph, crashes, source=source, seed=seed, max_rounds=2000
    )
    sp = run_spanner_pipeline_under_failures(graph, crashes, source=source, seed=seed)
    return pp.rounds, pp.coverage, sp.rounds, sp.coverage


def _cut_trial(graph, source, seed: int) -> tuple:
    """One adversarial spanner-cut trial (module-level so it pickles)."""
    crashes, _victim, crash_count = spanner_cut_crashes(graph, seed, source)
    pp = run_push_pull_under_failures(
        graph, crashes, source=source, seed=seed, max_rounds=5000
    )
    sp = run_spanner_pipeline_under_failures(graph, crashes, source=source, seed=seed)
    return pp.rounds, pp.coverage, sp.rounds, sp.coverage, crash_count


@register("E15")
def run_e15(profile: Profile = "quick") -> ExperimentTable:
    """Conclusion: push--pull robust, spanner brittle, under loss and crashes."""
    seeds = seeds_for(profile, quick=3, full=8)
    graph = generators.ring_of_cliques(
        5, 6 if profile == "quick" else 10, inter_latency=4, rng=random.Random(0)
    )
    source = graph.nodes()[0]
    rows = []

    loss_levels = [0.0, 0.2, 0.4] if profile == "quick" else [0.0, 0.1, 0.2, 0.4, 0.6]
    for p in loss_levels:
        trials = map_trials(functools.partial(_loss_trial, graph, source, p), seeds)
        pp_rounds, pp_cov, sp_rounds, sp_cov = map(list, zip(*trials))
        rows.append(
            {
                "failure": f"loss p={p}",
                "pushpull_rounds": statistics.fmean(pp_rounds),
                "pushpull_coverage": statistics.fmean(pp_cov),
                "spanner_rounds": statistics.fmean(sp_rounds),
                "spanner_coverage": statistics.fmean(sp_cov),
            }
        )

    crash_counts = [2, 5] if profile == "quick" else [2, 5, 10]
    for f in crash_counts:
        trials = map_trials(functools.partial(_crash_trial, graph, source, f), seeds)
        pp_rounds, pp_cov, sp_rounds, sp_cov = map(list, zip(*trials))
        rows.append(
            {
                "failure": f"random crash f={f}",
                "pushpull_rounds": statistics.fmean(pp_rounds),
                "pushpull_coverage": statistics.fmean(pp_cov),
                "spanner_rounds": statistics.fmean(sp_rounds),
                "spanner_coverage": statistics.fmean(sp_cov),
            }
        )

    # Adversarial: sever one node's spanner neighborhood.
    trials = map_trials(functools.partial(_cut_trial, graph, source), seeds)
    pp_rounds, pp_cov, sp_rounds, sp_cov, crash_sizes = map(list, zip(*trials))
    rows.append(
        {
            "failure": f"spanner-cut crash f={statistics.fmean(crash_sizes):.0f}",
            "pushpull_rounds": statistics.fmean(pp_rounds),
            "pushpull_coverage": statistics.fmean(pp_cov),
            "spanner_rounds": statistics.fmean(sp_rounds),
            "spanner_coverage": statistics.fmean(sp_cov),
        }
    )

    pp_all = [r["pushpull_coverage"] for r in rows]
    sp_crash = [r["spanner_coverage"] for r in rows if "crash" in r["failure"]]
    return ExperimentTable(
        experiment_id="E15",
        title="Conclusion — failures: push--pull robust, the spanner route is not",
        columns=[
            "failure",
            "pushpull_rounds",
            "pushpull_coverage",
            "spanner_rounds",
            "spanner_coverage",
        ],
        rows=rows,
        expectation=(
            "push--pull keeps full reachable-survivor coverage under every "
            "failure regime (slower under loss); the spanner pipeline "
            "survives loss and random crashes (it has redundancy) but has "
            "single points of failure: severing one node's spanner "
            "neighborhood drops its coverage below 1 while push--pull "
            "still reaches the victim through the dense graph"
        ),
        conclusion=(
            f"push--pull coverage always {min(pp_all):.2f}; spanner coverage "
            f"under crashes drops to {min(sp_crash):.2f}"
        ),
    )
