"""Experiment registry: one runnable experiment per theorem/lemma/figure.

See DESIGN.md for the full index.  Usage::

    from repro.experiments import get_experiment
    table = get_experiment("E5")("quick")
    print(table)
"""

from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
    validate_profile,
)
from repro.experiments.sharding import (
    ShardSpec,
    SweepRecipe,
    SweepReport,
    SweepResult,
    fault_injection,
    parse_shard,
    run_sweep,
    sweep_status,
    table_to_json,
)

__all__ = [
    "ExperimentTable",
    "Profile",
    "ShardSpec",
    "SweepRecipe",
    "SweepReport",
    "SweepResult",
    "all_experiments",
    "fault_injection",
    "get_experiment",
    "parse_shard",
    "register",
    "run_experiment",
    "run_sweep",
    "sweep_status",
    "table_to_json",
    "validate_profile",
]
