"""Experiment registry: one runnable experiment per theorem/lemma/figure.

See DESIGN.md for the full index.  Usage::

    from repro.experiments import get_experiment
    table = get_experiment("E5")("quick")
    print(table)
"""

from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
    validate_profile,
)

__all__ = [
    "ExperimentTable",
    "Profile",
    "all_experiments",
    "get_experiment",
    "register",
    "run_experiment",
    "validate_profile",
]
