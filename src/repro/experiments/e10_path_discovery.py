"""E10: the T(k) schedule and Path Discovery (Appendix E).

* **Lemma 24 audit** — after executing ``T(k)`` with ``k >= D``, every pair
  of nodes has exchanged rumors (all-to-all complete).
* **Lemma 25/26 shape** — total time vs ``D log² n log D`` as ``D`` sweeps.
* **Ablation vs the naive algorithm** — Section 5.1 notes all-to-all can be
  solved trivially in ``O(D² log² n)`` by repeating D-DTG ``D`` times; the
  ruler pattern's whole point is replacing the ``D`` factor by ``log D``.
  We run both and report the speedup, which should grow roughly like
  ``D / log D``.
"""

from __future__ import annotations

import math
import random

from repro.graphs import generators
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.path_discovery import run_path_discovery, run_t_sequence
from repro.experiments import artifacts
from repro.experiments.harness import ExperimentTable, Profile, map_trials, register

__all__ = ["run_e10"]


def _naive_repeated_dtg(graph, diameter: int) -> int:
    """The trivial O(D² log² n) baseline: D repetitions of D-DTG.

    Like ``T(k)``, the naive schedule has no termination detection — its
    guarantee requires paying for all ``D`` repetitions, which is exactly
    the cost the ruler pattern's ``log D`` factor replaces.
    """
    runner = PhaseRunner(graph)
    for repetition in range(diameter):
        runner.run_phase(
            ldtg_factory(graph, diameter, run_tag=f"naive:{repetition}"),
            latencies_known=True,
            name=f"naive D-DTG #{repetition}",
        )
    return runner.total_rounds


def _schedule_config(ell: int) -> dict:
    """One config trial (module-level so it pickles for REPRO_JOBS)."""
    graph = artifacts.cached_graph(
        ("ring_of_cliques", 5, 4, ell, 0),
        lambda: generators.ring_of_cliques(
            5, 4, inter_latency=ell, rng=random.Random(0)
        ),
    )
    n = graph.num_nodes
    diameter = artifacts.cached_weighted_diameter(graph)
    # Stand-alone T(k) with k = next power of two >= D (Lemma 24 audit).
    k = 1 << max(0, (diameter - 1).bit_length())
    runner = PhaseRunner(graph)
    t_rounds = run_t_sequence(runner, graph, k, tag="e10")
    everyone = set(graph.nodes())
    covered = all(everyone <= runner.state.rumors(v) for v in everyone)
    # Full Path Discovery (unknown D).
    report = run_path_discovery(graph)
    naive_rounds = _naive_repeated_dtg(graph, diameter)
    budget = diameter * math.log2(n) ** 2 * max(1.0, math.log2(diameter))
    return {
        "inter_latency": ell,
        "D": diameter,
        "T(k)_rounds": t_rounds,
        "T(k)_covers": covered,
        "pathdisc_rounds": report.rounds,
        "final_k": report.final_estimate,
        "naive_rounds": naive_rounds,
        "speedup_vs_naive": naive_rounds / t_rounds,
        "D·log²n·logD": budget,
        "pathdisc/budget": report.rounds / budget,
    }


@register("E10")
def run_e10(profile: Profile = "quick") -> ExperimentTable:
    """Appendix E: T(k)/Path Discovery time and the naive baseline."""
    latencies = [2, 8] if profile == "quick" else [2, 4, 8, 16]
    rows = map_trials(_schedule_config, latencies)
    return ExperimentTable(
        experiment_id="E10",
        title="Appendix E — T(k) schedule and Path Discovery vs the naive O(D²log²n)",
        columns=[
            "inter_latency",
            "D",
            "T(k)_rounds",
            "T(k)_covers",
            "pathdisc_rounds",
            "final_k",
            "naive_rounds",
            "speedup_vs_naive",
            "D·log²n·logD",
            "pathdisc/budget",
        ],
        rows=rows,
        expectation=(
            "T(k) with k >= D always covers all pairs (Lemma 24); Path "
            "Discovery beats the naive baseline by a factor growing with D"
        ),
        conclusion=(
            "coverage held on every run"
            if all(r["T(k)_covers"] for r in rows)
            else "COVERAGE FAILED"
        ),
    )
