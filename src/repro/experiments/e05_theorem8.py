"""E5: the D / Δ / φ trade-off on the ring of gadgets (Theorem 8).

The Theorem 8 ring has, per adjacent layer pair, one hidden fast edge among
``s²`` slow (latency ``ℓ``) edges.  An algorithm crossing a layer boundary
either *searches* for the fast edge (Θ(s) = Θ(Δ) activations in
expectation) or *pays* the slow latency ``ℓ``.  Broadcasting around the ring
therefore costs roughly ``(k/2) · min(Θ(s), ℓ)`` — the min(Δ + D, ℓ/φ)
envelope of the theorem.

We sweep ``ℓ`` on a fixed ring and measure push--pull broadcast time from a
layer-0 source.  The measured curve should (a) grow with ℓ in the
small-ℓ regime (slow edges win) and (b) flatten once ℓ passes Θ(s) (finding
fast edges wins) — the crossover the theorem predicts at ``ℓ ≈ Θ(Δ)``.
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.graphs.gadgets import theorem8_ring
from repro.protocols.push_pull import run_push_pull
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e5"]


def _ring_broadcast_rounds(layer_size: int, num_layers: int, ell: int, seed: int) -> int:
    """One seed-ladder trial (module-level so it pickles for REPRO_JOBS)."""
    rng = random.Random(seed)
    ring = theorem8_ring(layer_size, num_layers, ell, rng)
    return run_push_pull(ring.graph, source=0, seed=seed + 7).rounds


@register("E5")
def run_e5(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 8: broadcast time tracks min(Δ + D, ℓ/φ) as ℓ sweeps."""
    if profile == "quick":
        layer_size, num_layers = 8, 6
        latencies = [2, 4, 8, 16, 32, 64]
        seeds = seeds_for(profile, quick=3)
    else:
        layer_size, num_layers = 16, 8
        latencies = [2, 4, 8, 16, 32, 64, 128, 256]
        seeds = seeds_for(profile, full=8)
    rows = []
    for ell in latencies:
        times = map_trials(
            functools.partial(_ring_broadcast_rounds, layer_size, num_layers, ell),
            seeds,
        )
        mean_time = statistics.fmean(times)
        # Envelope terms: D+Δ (search regime) and ℓ/φ ~ ℓ·k/2 (pay regime).
        hops = num_layers // 2
        search_term = 3 * layer_size + hops  # Δ = Θ(s), D = Θ(k)
        pay_term = ell * hops
        rows.append(
            {
                "ell": ell,
                "rounds": mean_time,
                "search_term(D+Δ)": search_term,
                "pay_term(ℓ/φ)": pay_term,
                "min_envelope": min(search_term, pay_term),
                "rounds/min": mean_time / min(search_term, pay_term),
            }
        )
    ratios = [r["rounds/min"] for r in rows]
    spread = max(ratios) / min(ratios)
    return ExperimentTable(
        experiment_id="E5",
        title="Theorem 8 — ring of gadgets: time follows min(Δ + D, ℓ/φ)",
        columns=[
            "ell",
            "rounds",
            "search_term(D+Δ)",
            "pay_term(ℓ/φ)",
            "min_envelope",
            "rounds/min",
        ],
        rows=rows,
        expectation=(
            "time grows ~linearly with ℓ while ℓ/φ < D+Δ, then flattens; "
            "rounds/min stays within a small constant band across the sweep"
        ),
        conclusion=f"rounds/min envelope spread = {spread:.2f}x across the ℓ sweep",
    )
