"""Text reproductions of the paper's figures.

The paper's five figures are structural diagrams, not data plots; this
module regenerates each as an inspectable artifact:

* **Figure 1** — the guessing-game gadgets ``G(P)`` / ``Gsym(P)``: an ASCII
  rendering showing both sides, the cliques, and the fast (target) cross
  edges.
* **Figure 2** — the Theorem 8 ring: layers, sizes, and the fast edge of
  each boundary.
* **Figure 3** — the RR-broadcast worst-case path: the per-hop
  ``Δ_out + k_i`` delay decomposition of Lemma 15.
* **Figures 4-5** — the binomial *i-trees* of the DTG analysis: an
  :class:`ITree` with the recursive join structure, sizes ``2^i``, and the
  connection-round edge labels of Figure 5.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ExperimentError
from repro.graphs.gadgets import GadgetNetwork, RingNetwork

__all__ = [
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "ITree",
    "render_figure4",
]


def render_figure1(gadget: GadgetNetwork, symmetric: Optional[bool] = None) -> str:
    """ASCII rendering of a guessing-game gadget (Figure 1).

    Left nodes are listed with their clique marker; each fast (target)
    cross edge is drawn explicitly; slow edges are summarized by count.
    """
    graph = gadget.graph
    m = len(gadget.left)
    if symmetric is None:
        symmetric = (
            m > 1 and graph.has_edge(gadget.right[0], gadget.right[1])
        )
    title = "Gsym(P)" if symmetric else "G(P)"
    lines = [
        f"Figure 1 — gadget {title}, m = {m}",
        f"  L = {{v1..v{m}}} (clique, latency 1)"
        + ("    R = {u1..u%d} (clique, latency 1)" % m if symmetric else f"    R = {{u1..u{m}}} (no clique)"),
        f"  cross edges: {m * m} total, "
        f"{len(gadget.target)} fast (latency {gadget.fast_latency}), "
        f"{m * m - len(gadget.target)} slow (latency {gadget.slow_latency})",
        "  fast edges:",
    ]
    if gadget.target:
        for i, j in sorted(gadget.target):
            lines.append(f"    v{i + 1} ══════ u{j + 1}")
    else:
        lines.append("    (none)")
    return "\n".join(lines)


def render_figure2(ring: RingNetwork) -> str:
    """ASCII rendering of the Theorem 8 ring of gadgets (Figure 2)."""
    lines = [
        f"Figure 2 — ring of {ring.num_layers} layers x {ring.layer_size} nodes "
        f"(alpha = {ring.alpha:.3f})",
        f"  intra-layer: cliques of latency 1; cross: complete bipartite, "
        f"latency {ring.slow_latency} except one fast edge per boundary",
    ]
    for i in range(ring.num_layers):
        u, v = ring.fast_edges[i]
        nxt = (i + 1) % ring.num_layers
        lines.append(
            f"  V{i + 1}[{ring.layers[i][0]}..{ring.layers[i][-1]}] "
            f"══({u}-{v})══> V{nxt + 1}"
        )
    return "\n".join(lines)


def render_figure3(hop_latencies: list[int], max_out_degree: int) -> str:
    """The Lemma 15 delay decomposition along one path (Figure 3).

    Each hop waits at most ``Δ_out`` rounds for its edge's round-robin turn
    plus the hop's latency ``k_i``; the rendering shows the running total
    reaching ``h·Δ_out + Σ k_i``.
    """
    if not hop_latencies:
        raise ExperimentError("need at least one hop")
    if any(k < 1 for k in hop_latencies):
        raise ExperimentError("hop latencies must be >= 1")
    lines = [
        f"Figure 3 — worst-case RR delay, Δ_out = {max_out_degree}",
        f"  {'hop':>4} {'latency k_i':>12} {'hop delay <=':>13} {'cumulative':>11}",
    ]
    total = 0
    for index, latency in enumerate(hop_latencies, start=1):
        delay = max_out_degree + latency
        total += delay
        lines.append(f"  {index:>4} {latency:>12} {delay:>13} {total:>11}")
    h = len(hop_latencies)
    bound = h * max_out_degree + sum(hop_latencies)
    lines.append(f"  total = h·Δ_out + Σk_i = {h}·{max_out_degree} + "
                 f"{sum(hop_latencies)} = {bound}")
    return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class ITree:
    """A binomial i-tree: the witness structure of the DTG analysis.

    An i-tree is two (i-1)-trees whose roots are joined; it has exactly
    ``2^i`` nodes and depth ``i``.  Figure 5's edge labels (the round at
    which the child was contacted, as seen from the root) fall out of the
    construction: the subtree joined at step ``j`` hangs off an edge
    labelled ``j``.
    """

    order: int
    children: tuple["ITree", ...]

    @classmethod
    def build(cls, order: int) -> "ITree":
        """Build the i-tree of the given order recursively."""
        if order < 0:
            raise ExperimentError(f"order must be >= 0, got {order}")
        if order == 0:
            return cls(order=0, children=())
        smaller = cls.build(order - 1)
        # Joining two (i-1)-trees at the root == root gains one more child
        # subtree of each order 0..i-1 (the classic binomial-tree identity).
        return cls(order=order, children=smaller.children + (smaller,))

    @property
    def size(self) -> int:
        """Number of nodes; ``2^order`` by the doubling construction."""
        return 1 + sum(child.size for child in self.children)

    @property
    def depth(self) -> int:
        """Longest root-to-leaf path."""
        if not self.children:
            return 0
        return 1 + max(child.depth for child in self.children)

    def render(self, label: int = 0, indent: str = "") -> str:
        """Indented rendering with Figure 5's connection-round edge labels."""
        lines = [f"{indent}{'root' if not indent else f'({label})'}"]
        for round_label, child in enumerate(reversed(self.children), start=1):
            lines.append(child.render(label=round_label, indent=indent + "  "))
        return "\n".join(lines)


def render_figure4(max_order: int = 3) -> str:
    """The i-tree family for ``i = 0..max_order`` (Figure 4)."""
    if max_order < 0:
        raise ExperimentError(f"max_order must be >= 0, got {max_order}")
    blocks = []
    for order in range(max_order + 1):
        tree = ITree.build(order)
        blocks.append(
            f"{order}-tree: {tree.size} nodes, depth {tree.depth}\n"
            + tree.render()
        )
    return ("\nFigure 4 — binomial i-trees\n\n") + "\n\n".join(blocks)
