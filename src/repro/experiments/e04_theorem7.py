"""E4: the conductance lower bound network (Theorem 7).

Theorem 7 builds ``G(Random_φ)``: cross edges get latency ``ℓ`` with
probability ``φ`` and a huge latency otherwise.  The theorem asserts three
properties w.h.p. — weighted diameter ``O(ℓ)``, weighted conductance
``Θ(φ)`` — and a push--pull running time of ``Ω(log(n)/φ + ℓ)``.

We build the network, *audit* the two structural claims (measuring the
diameter exactly and the conductance by sweep cuts), and measure push--pull
ℓ-local broadcast time, comparing it against ``log(n)/φ + ℓ``.
"""

from __future__ import annotations

import functools
import math
import random
import statistics

from repro.analysis.scaling import correlation
from repro.conductance.sweep import sweep_conductance
from repro.graphs.gadgets import theorem7_network
from repro.protocols.push_pull import run_push_pull
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e4"]


def _audit_trial(n: int, phi: float, ell: int, seed: int) -> tuple[int, float, int]:
    """One seed-ladder trial: (diameter, sweep φ_ℓ, push--pull rounds)."""
    rng = random.Random(seed)
    gadget = theorem7_network(n, phi, ell, rng)
    graph = gadget.graph
    diameter = graph.weighted_diameter()
    conductance = sweep_conductance(graph, ell, rng=random.Random(seed + 1))
    result = run_push_pull(graph, mode="local", max_latency=ell, seed=seed + 2)
    return diameter, conductance, result.rounds


@register("E4")
def run_e4(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 7: structure audit + push--pull time ~ log(n)/φ + ℓ."""
    if profile == "quick":
        configs = [(24, 0.15, 1), (24, 0.3, 1), (24, 0.6, 1), (24, 0.3, 4)]
        seeds = seeds_for(profile, quick=3)
    else:
        configs = [
            (48, 0.1, 1),
            (48, 0.2, 1),
            (48, 0.4, 1),
            (48, 0.8, 1),
            (48, 0.2, 4),
            (48, 0.2, 8),
        ]
        seeds = seeds_for(profile, full=8)
    rows = []
    for n, phi, ell in configs:
        trials = map_trials(functools.partial(_audit_trial, n, phi, ell), seeds)
        diameters, conductances, times = map(list, zip(*trials))
        predicted = math.log(2 * n) / phi + ell
        rows.append(
            {
                "n": 2 * n,
                "phi": phi,
                "ell": ell,
                "diameter": statistics.fmean(diameters),
                "measured_phi_ell": statistics.fmean(conductances),
                "pushpull_rounds": statistics.fmean(times),
                "log(n)/phi+ell": predicted,
                "ratio": statistics.fmean(times) / predicted,
            }
        )
    corr = correlation(
        [r["log(n)/phi+ell"] for r in rows], [r["pushpull_rounds"] for r in rows]
    )
    return ExperimentTable(
        experiment_id="E4",
        title="Theorem 7 — G(Random_φ): D = O(ℓ), φ_ℓ = Θ(φ), push--pull ~ log(n)/φ + ℓ",
        columns=[
            "n",
            "phi",
            "ell",
            "diameter",
            "measured_phi_ell",
            "pushpull_rounds",
            "log(n)/phi+ell",
            "ratio",
        ],
        rows=rows,
        expectation=(
            "diameter stays O(ℓ); measured φ_ℓ tracks the target φ; "
            "push--pull time correlates with log(n)/φ + ℓ"
        ),
        conclusion=f"corr(measured time, predicted) = {corr:.2f}",
    )
