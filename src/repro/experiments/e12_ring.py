"""E12: structural audit of the Theorem 8 ring (Obs. 23, Lemmas 9-11, Fig. 2).

Everything Theorem 8 claims about the ring construction, checked on built
instances:

* **Observation 23** — the ring is ``(3s - 1)``-regular;
* **Lemma 9** — the half-ring cut ``C`` has ``φ_ℓ(C) = α`` *exactly*
  (we compute the cut conductance in closed form on the built graph);
* **Lemma 10** — the global ``φ_ℓ`` is ``Θ(α)`` (sweep approximation,
  which upper-bounds by real cuts, so sweep ≤ α must hold and the sweep
  value should stay within a constant of α);
* **Lemma 11** — the critical latency is ``ℓ``: ``φ_ℓ/ℓ > φ_1/1`` for
  ``ℓ = O((cnα)²)``, checked on the built profile;
* the weighted diameter satisfies ``2/(3α) < D <= 1/α`` scaled by layers.
"""

from __future__ import annotations

import random

from repro.conductance.exact import cut_conductance
from repro.graphs.gadgets import half_ring_cut, theorem8_ring
from repro.experiments import artifacts
from repro.experiments.harness import ExperimentTable, Profile, map_trials, register

__all__ = ["run_e12"]


def _audit_config(config: tuple[int, int, int]) -> dict:
    """One config trial (module-level so it pickles for REPRO_JOBS)."""
    layer_size, num_layers, ell = config
    ring = theorem8_ring(layer_size, num_layers, ell, random.Random(1))
    graph = ring.graph
    s = layer_size
    degrees = {graph.degree(v) for v in graph.nodes()}
    regular = degrees == {3 * s - 1}
    alpha = ring.alpha
    cut = half_ring_cut(ring)
    phi_cut = cut_conductance(graph, cut, max_latency=ell)
    phi_sweep = artifacts.cached_sweep_conductance(graph, ell, seed=2)
    phi_1 = artifacts.cached_sweep_conductance(graph, 1, seed=3)
    critical_is_ell = phi_sweep / ell > phi_1 / 1
    diameter = artifacts.cached_weighted_diameter(graph)
    hops = num_layers // 2
    return {
        "s": s,
        "k": num_layers,
        "ell": ell,
        "regular(3s-1)": regular,
        "alpha": alpha,
        "phi_ell(C)": phi_cut,
        "phi_cut/alpha": phi_cut / alpha,
        "phi_ell(sweep)": phi_sweep,
        "phi_1(sweep)": phi_1,
        "ell*_is_ell": critical_is_ell,
        "D": diameter,
        "D/hops": diameter / hops,
    }


@register("E12")
def run_e12(profile: Profile = "quick") -> ExperimentTable:
    """Lemmas 9-11 / Observation 23: the ring has the promised structure."""
    if profile == "quick":
        configs = [(6, 6, 8), (8, 6, 16), (6, 8, 8)]
    else:
        configs = [(6, 6, 8), (8, 6, 16), (6, 8, 8), (12, 8, 32), (10, 10, 64)]
    rows = map_trials(_audit_config, configs)
    ok = all(
        r["regular(3s-1)"] and r["ell*_is_ell"] and 0.3 <= r["phi_cut/alpha"] <= 3.0
        for r in rows
    )
    return ExperimentTable(
        experiment_id="E12",
        title="Lemmas 9-11 / Obs. 23 — Theorem 8 ring structural audit",
        columns=[
            "s",
            "k",
            "ell",
            "regular(3s-1)",
            "alpha",
            "phi_ell(C)",
            "phi_cut/alpha",
            "phi_ell(sweep)",
            "phi_1(sweep)",
            "ell*_is_ell",
            "D",
            "D/hops",
        ],
        rows=rows,
        expectation=(
            "(3s-1)-regular; φ_ℓ(C) within constants of α (exactly α in the "
            "paper's continuous parametrization); φ_ℓ/ℓ > φ_1 so ℓ* = ℓ; "
            "D ≈ k/2 layer hops"
        ),
        conclusion="all structural claims held" if ok else "A STRUCTURAL CLAIM FAILED",
    )
