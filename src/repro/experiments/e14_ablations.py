"""E14: ablations of the design choices DESIGN.md calls out.

Four ablations:

* **pull matters** (footnote 2): push-only flooding on a star needs
  ``Θ(n)`` rounds (the center pushes to one leaf at a time) while push--pull
  finishes in O(1)ish rounds — leaves pull from the center.
* **snapshot semantics**: initiation-time vs delivery-time payloads change
  push--pull completion only by a small constant factor.
* **spanner k trade-off**: stretch ``2k-1`` vs out-degree/size as ``k``
  sweeps — the reason the paper picks ``k = log n``.
* **RR budget**: dissemination actually completes well before the
  worst-case ``k·Δ_out + k`` Lemma 15 budget (the budget is what makes
  termination *provable*, not what makes it fast).
"""

from __future__ import annotations

import functools
import math
import random

from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.protocols.base import PhaseRunner
from repro.protocols.flooding import run_flooding
from repro.protocols.push_pull import run_push_pull
from repro.protocols.rr_broadcast import rr_broadcast_duration, rr_broadcast_factory
from repro.experiments import artifacts
from repro.experiments.harness import ExperimentTable, Profile, map_trials, register

__all__ = ["run_e14"]


def _spanner_k_row(base, k: int) -> dict:
    """One spanner-k ablation trial (module-level so it pickles)."""
    spanner = artifacts.cached_spanner(base, k, 4)
    return {
        "ablation": f"spanner k={k}",
        "value": spanner.measured_stretch(num_pairs=8, rng=random.Random(5)),
        "reference": 2 * k - 1,
        "note": (
            f"{spanner.num_edges} edges, max out-deg "
            f"{spanner.max_out_degree()}"
        ),
    }


@register("E14")
def run_e14(profile: Profile = "quick") -> ExperimentTable:
    """Ablations: pull, snapshot semantics, spanner k, RR budget."""
    rows = []

    # Ablation 1: push-only vs push--pull on a star (footnote 2).
    star_n = 32 if profile == "quick" else 128
    star = generators.star(star_n)
    push_only = run_flooding(star, source=0, push_only=True)
    push_pull_flood = run_flooding(star, source=0, push_only=False)
    rows.append(
        {
            "ablation": f"star n={star_n}: push-only",
            "value": push_only.rounds,
            "reference": star_n - 1,
            "note": "Ω(n) — center pushes one leaf per round",
        }
    )
    rows.append(
        {
            "ablation": f"star n={star_n}: push-pull flood",
            "value": push_pull_flood.rounds,
            "reference": 2,
            "note": "leaves pull in round 1",
        }
    )

    # Ablation 2: snapshot semantics on push--pull.
    graph = generators.ring_of_cliques(6, 6, inter_latency=6, rng=random.Random(0))
    stale = run_push_pull(graph, source=0, seed=5, fresh_snapshots=False)
    fresh = run_push_pull(graph, source=0, seed=5, fresh_snapshots=True)
    rows.append(
        {
            "ablation": "snapshot: initiation-time",
            "value": stale.rounds,
            "reference": fresh.rounds,
            "note": f"fresh/stale = {fresh.rounds / stale.rounds:.2f} (constant factor)",
        }
    )

    # Ablation 3: spanner k trade-off (dense base graph so sparsification
    # is visible; on an already-sparse graph the spanner is the graph).
    n = 48 if profile == "quick" else 128
    base = generators.erdos_renyi(
        n, 0.5, latency_model=uniform_latency(1, 10), rng=random.Random(3)
    )
    ks = [2, 3, max(2, math.ceil(math.log2(n)))]
    rows.extend(map_trials(functools.partial(_spanner_k_row, base), ks))

    # Ablation 4: RR budget vs actual completion — the same spanner the
    # k = log n ablation just built, served from the artifact cache.
    spanner = artifacts.cached_spanner(base, max(2, math.ceil(math.log2(n))), 4)
    diameter = base.weighted_diameter()
    k_rr = diameter * (2 * spanner.k - 1)
    budget = rr_broadcast_duration(k_rr, spanner.restrict(k_rr).max_out_degree())
    runner = PhaseRunner(base, watch=lambda s: all(
        set(base.nodes()) <= s.rumors(v) for v in base.nodes()
    ))
    runner.run_phase(rr_broadcast_factory(spanner, k_rr), latencies_known=True)
    rows.append(
        {
            "ablation": "RR broadcast completion",
            "value": runner.first_complete_round or runner.total_rounds,
            "reference": budget,
            "note": "completes well inside the Lemma 15 budget",
        }
    )

    return ExperimentTable(
        experiment_id="E14",
        title="Ablations — pull, snapshot semantics, spanner k, RR budget",
        columns=["ablation", "value", "reference", "note"],
        rows=rows,
        expectation=(
            "push-only ≈ n on a star, push--pull O(1); snapshot semantics a "
            "small constant; stretch ≤ 2k-1 with size shrinking in k; RR "
            "completes before its worst-case budget"
        ),
    )
