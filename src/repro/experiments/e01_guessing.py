"""E1 + E2: guessing-game lower bounds (Lemmas 4 and 5).

* **E1 (Lemma 4)** — with a singleton target, any protocol needs ``Ω(m)``
  rounds.  We play the adaptive fresh-pair strategy (the strongest one we
  have) plus the systematic sweep and measure rounds as ``m`` grows: the
  rounds/m ratio should stay bounded away from 0 and the log-log slope
  should be ≈ 1.

* **E2 (Lemma 5)** — with the ``Random_p`` target, adaptive play needs
  ``Θ(1/p)`` rounds while the oblivious random strategy (what push--pull
  induces) needs ``Θ(log(m)/p)``: the random/adaptive ratio should grow
  with ``log m`` and both should scale like ``1/p``.
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.analysis.scaling import loglog_slope
from repro.lowerbounds.game import GuessingGame
from repro.lowerbounds.predicates import random_predicate, singleton_predicate
from repro.lowerbounds.strategies import (
    fresh_pair_strategy,
    play_game,
    random_guessing_strategy,
    systematic_sweep_strategy,
)
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e1", "run_e2"]


def _make_predicate(spec: tuple, m: int, rng: random.Random):
    # Predicate factories are closures (unpicklable), so trials receive a
    # spec tuple and rebuild the predicate in-process.
    if spec[0] == "singleton":
        return singleton_predicate()(m, rng)
    if spec[0] == "random":
        return random_predicate(spec[1])(m, rng)
    raise ValueError(f"unknown predicate spec {spec!r}")


def _game_rounds(m: int, spec: tuple, strategy_factory, seed: int) -> int:
    """One seed-ladder trial (module-level so it pickles for REPRO_JOBS)."""
    rng = random.Random(seed)
    game = GuessingGame(m, _make_predicate(spec, m, rng))
    return play_game(game, strategy_factory, rng)


def _mean_rounds(m, spec: tuple, strategy_factory, seeds) -> float:
    rounds = map_trials(
        functools.partial(_game_rounds, m, spec, strategy_factory), seeds
    )
    return statistics.fmean(rounds)


@register("E1")
def run_e1(profile: Profile = "quick") -> ExperimentTable:
    """Lemma 4: singleton-target guessing needs Ω(m) rounds."""
    sizes = [8, 16, 32, 64] if profile == "quick" else [8, 16, 32, 64, 128, 256]
    seeds = seeds_for(profile, quick=5, full=20)
    predicate = ("singleton",)
    rows = []
    for m in sizes:
        adaptive = _mean_rounds(m, predicate, fresh_pair_strategy, seeds)
        sweep = _mean_rounds(m, predicate, systematic_sweep_strategy, seeds)
        rows.append(
            {
                "m": m,
                "adaptive_rounds": adaptive,
                "sweep_rounds": sweep,
                "adaptive/m": adaptive / m,
                "sweep/m": sweep / m,
            }
        )
    slope = loglog_slope([r["m"] for r in rows], [r["adaptive_rounds"] for r in rows])
    return ExperimentTable(
        experiment_id="E1",
        title="Lemma 4 — singleton guessing game scales linearly in m",
        columns=["m", "adaptive_rounds", "sweep_rounds", "adaptive/m", "sweep/m"],
        rows=rows,
        expectation="rounds = Ω(m): rounds/m bounded below, log-log slope ≈ 1",
        conclusion=f"adaptive log-log slope = {slope:.2f}",
    )


@register("E2")
def run_e2(profile: Profile = "quick") -> ExperimentTable:
    """Lemma 5: Random_p — adaptive Θ(1/p) vs oblivious Θ(log(m)/p)."""
    if profile == "quick":
        configs = [(32, 0.1), (32, 0.2), (32, 0.4), (8, 0.2), (64, 0.2)]
        seeds = seeds_for(profile, quick=5)
    else:
        configs = [
            (64, 0.05),
            (64, 0.1),
            (64, 0.2),
            (64, 0.4),
            (16, 0.2),
            (32, 0.2),
            (128, 0.2),
        ]
        seeds = seeds_for(profile, full=20)
    rows = []
    for m, p in configs:
        predicate = ("random", p)
        adaptive = _mean_rounds(m, predicate, fresh_pair_strategy, seeds)
        oblivious = _mean_rounds(m, predicate, random_guessing_strategy, seeds)
        rows.append(
            {
                "m": m,
                "p": p,
                "adaptive_rounds": adaptive,
                "oblivious_rounds": oblivious,
                "adaptive*p": adaptive * p,
                "oblivious/adaptive": oblivious / max(adaptive, 1e-9),
            }
        )
    fixed_m = [r for r in rows if r["m"] == rows[0]["m"]]
    slope = loglog_slope(
        [1.0 / r["p"] for r in fixed_m], [r["adaptive_rounds"] for r in fixed_m]
    )
    return ExperimentTable(
        experiment_id="E2",
        title="Lemma 5 — Random_p: adaptive Θ(1/p), oblivious pays an extra log m",
        columns=[
            "m",
            "p",
            "adaptive_rounds",
            "oblivious_rounds",
            "adaptive*p",
            "oblivious/adaptive",
        ],
        rows=rows,
        expectation=(
            "adaptive·p roughly constant in p; oblivious/adaptive grows with m "
            "(the log m gap that separates push--pull from optimal play)"
        ),
        conclusion=f"adaptive rounds vs 1/p log-log slope = {slope:.2f}",
    )
