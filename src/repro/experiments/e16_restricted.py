"""E16 + E17: the conclusion's restricted models — bounded in-degree and
message sizes.

* **E16 (bounded in-degree)** — "it would also be interesting to look at
  the bounds where each node is only allowed O(1) connections per round".
  We cap the number of exchanges a node may *accept* per round and run
  push--pull on a star (the pathological case: everyone wants the center)
  versus a regular expander (load is spread).  The star collapses from
  O(log n)-ish to Θ(n) as the cap reaches 1; the expander barely notices.

* **E17 (message size)** — "it also remains open as to whether information
  dissemination can be completed efficiently with small messages.  When
  latencies are unknown, push--pull does not require large messages.  In
  the other cases, however, larger messages are needed."  We instrument
  the engine's payload accounting: per-exchange payloads for push--pull
  one-to-all broadcast stay small (most exchanges ship a single rumor),
  while the DTG/spanner pipeline ships whole rumor sets (Θ(n)-sized
  payloads).
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.graphs import generators
from repro.protocols.base import PhaseRunner, per_node_rng_factory
from repro.protocols.dtg import ldtg_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e16", "run_e17"]


def _push_pull_rounds_with_cap(graph, cap, seed, max_rounds=100_000):
    source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    make_rng = per_node_rng_factory(seed)
    engine = Engine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
        max_incoming_per_round=cap,
    )
    done = broadcast_complete(rumor)
    while not done(engine) and engine.round < max_rounds:
        engine.step()
    return engine.round, engine.metrics.rejected_initiations


@register("E16")
def run_e16(profile: Profile = "quick") -> ExperimentTable:
    """Conclusion: O(1) connections per round — congestion at hubs."""
    n = 32 if profile == "quick" else 128
    seeds = seeds_for(profile, quick=3, full=8)
    star = generators.star(n)
    expander = generators.random_regular(n, 6, rng=random.Random(1))
    rows = []
    for cap in (None, 4, 1):
        for label, graph in (("star", star), ("expander", expander)):
            rounds, rejected = zip(
                *map_trials(
                    functools.partial(_push_pull_rounds_with_cap, graph, cap), seeds
                )
            )
            rows.append(
                {
                    "cap": "unbounded" if cap is None else cap,
                    "graph": f"{label} n={n}",
                    "rounds": statistics.fmean(rounds),
                    "rejected_initiations": statistics.fmean(rejected),
                }
            )
    star_unbounded = next(
        r["rounds"] for r in rows if r["cap"] == "unbounded" and "star" in r["graph"]
    )
    star_capped = next(
        r["rounds"] for r in rows if r["cap"] == 1 and "star" in r["graph"]
    )
    return ExperimentTable(
        experiment_id="E16",
        title="Conclusion — bounded in-degree: hubs congest, expanders do not",
        columns=["cap", "graph", "rounds", "rejected_initiations"],
        rows=rows,
        expectation=(
            "on the star, capping accepted connections at 1 forces Θ(n) "
            "rounds (the center serves one leaf per round); the expander's "
            "load is already spread, so the cap costs little"
        ),
        conclusion=(
            f"star slows {star_capped / star_unbounded:.1f}x under cap=1"
        ),
    )


def _payload_config(n: int) -> dict:
    """One size trial (module-level so it pickles for REPRO_JOBS)."""
    graph = generators.random_regular(n, 6, rng=random.Random(n))
    # Push--pull one-to-all broadcast: a single rumor spreads.
    source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    make_rng = per_node_rng_factory(7)
    engine = Engine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
    )
    done = broadcast_complete(rumor)
    while not done(engine):
        engine.step()
    pp_max = engine.metrics.max_payload_rumors
    pp_avg = engine.metrics.rumor_tokens_sent / max(1, 2 * engine.metrics.exchanges)
    # DTG local broadcast (the spanner pipeline's workhorse): whole
    # rumor sets travel.
    runner = PhaseRunner(graph)
    phase_engine = runner.run_phase(ldtg_factory(graph, 1), latencies_known=True)
    dtg_max = phase_engine.metrics.max_payload_rumors
    dtg_avg = phase_engine.metrics.rumor_tokens_sent / max(
        1, 2 * phase_engine.metrics.exchanges
    )
    return {
        "n": n,
        "pushpull_max_payload": pp_max,
        "pushpull_avg_payload": pp_avg,
        "dtg_max_payload": dtg_max,
        "dtg_avg_payload": dtg_avg,
        "dtg_max/n": dtg_max / n,
    }


@register("E17")
def run_e17(profile: Profile = "quick") -> ExperimentTable:
    """Conclusion: message sizes — push--pull small, DTG/spanner large."""
    sizes = [16, 32] if profile == "quick" else [16, 32, 64, 128]
    rows = map_trials(_payload_config, sizes)
    return ExperimentTable(
        experiment_id="E17",
        title="Conclusion — message sizes: push--pull stays small, DTG ships sets",
        columns=[
            "n",
            "pushpull_max_payload",
            "pushpull_avg_payload",
            "dtg_max_payload",
            "dtg_avg_payload",
            "dtg_max/n",
        ],
        rows=rows,
        expectation=(
            "push--pull one-to-all payloads are O(1) rumors regardless of n; "
            "DTG payloads grow linearly with n (whole rumor sets)"
        ),
        conclusion=(
            "push--pull max payload constant; DTG max payload ≈ "
            + ", ".join(f"{r['dtg_max/n']:.2f}·n" for r in rows)
        ),
    )
