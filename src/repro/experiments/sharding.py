"""Sharded, checkpointed, resumable experiment sweeps.

The plain harness runs a sweep as one monolithic process: a crash loses
everything since the last printed table, and nothing spans machines.
This module turns a sweep into a content-addressed DAG of **trial
records**: every ``map_trials`` call inside an experiment becomes a node
whose per-trial outputs — ``(result, span delta, metric delta)``, exactly
the triple pool workers already ship home — are persisted to an
:class:`~repro.experiments.artifacts.ArtifactStore` as they complete.
Interrupt the sweep anywhere; a later ``repro sweep --resume`` reloads
completed trials and recomputes only the rest, producing an
:class:`~repro.experiments.harness.ExperimentTable` byte-identical to an
uninterrupted run.

Addressing
----------
A trial's identity is ``(recipe fingerprint, map_trials call index,
item index)``:

* the **recipe fingerprint** (:meth:`SweepRecipe.fingerprint`) hashes
  everything that determines the trial list — experiment id, profile,
  checked flag, backend, the store format version, and the library
  version — so a store can never serve records from a different sweep;
* the **call index** counts ``map_trials`` calls in execution order
  (experiments are deterministic, so this is stable);
* the **item index** is the trial's position within its call.

Notably *absent* from the address: the shard count and ``REPRO_JOBS``.
Records written by a ``--shard 0/4`` run are read verbatim by a
``--shard 1/2`` run, a resume, or a serial coordinator.  Each record also
stores a digest of its pickled input item; a mismatch (the experiment
code changed what it maps over) is treated as a miss and recomputed.

Sharding and "borrowing"
------------------------
``--shard i/k`` assigns trial *ordinals* (global position across all
calls) round-robin: ordinal ``o`` belongs to shard ``o % k``.  Experiments
interleave ``map_trials`` calls with aggregation code that consumes real
results (``statistics.fmean`` over the returned list, say), so a shard
cannot simply skip the other shards' trials.  Instead it *borrows* them:
any trial that is neither stored nor assigned to this shard is computed
in-memory so the experiment function runs to completion, but only
assigned trials are **persisted**.  Shards running concurrently therefore
duplicate some work (bounded by the aggregation structure) but never
write outside their assignment; shards running sequentially against a
shared store load instead of borrowing.  The coordinator (``--resume`` or
a plain ``repro sweep`` over a warm store) loads every stored record and
computes nothing but the gaps.

Bit-identity
------------
Loaded trials replay their stored span/metric deltas through
:func:`repro.obs.profile.merge_spans` / :func:`repro.obs.metrics.merge_metrics`
— the same protocol that already makes ``REPRO_JOBS=N`` tables
bit-identical to serial ones.  Counters and histogram cells add, gauges
max-merge over touched windows, so the scoped metrics on the final table
match an uninterrupted run exactly.  (The manifest is environment-
dependent by design and excluded, as everywhere else in the repo;
:func:`table_to_json` is the canonical manifest-free byte form.)

Fault injection
---------------
``REPRO_FAULT_AT=kind[:ordinal][:mode]`` arms exactly one deterministic
fault point, checked in the sweep parent process only (never inside pool
workers), so the store state at the kill is identical regardless of
``REPRO_JOBS``:

* ``trial:N`` fires just before trial ordinal ``N`` is persisted;
* ``call:N`` fires at the end of ``map_trials`` call ``N`` (a shard
  boundary in the DAG);
* ``merge`` fires after the experiment function returns, before the
  final table is stored;
* ``final`` fires after the table is stored.

Modes: ``raise`` (default — raise :class:`~repro.errors.FaultInjected`),
``exit`` (``os._exit(70)``), ``kill`` (``SIGKILL`` to self).  Tests use
the :func:`fault_injection` scope; CI uses the env var directly.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import numbers
import os
import pickle
import signal
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence

import repro
from repro.errors import ExperimentError, FaultInjected
from repro.experiments import harness
from repro.experiments.artifacts import ArtifactStore
from repro.obs.metrics import (
    delta_from_wire,
    delta_to_wire,
    merge_metrics,
)
from repro.obs.profile import (
    merge_spans,
    spans_from_wire,
    spans_to_wire,
)

__all__ = [
    "FORMAT_VERSION",
    "ShardSpec",
    "SweepRecipe",
    "SweepReport",
    "SweepResult",
    "SweepStore",
    "active_sweep",
    "default_store_root",
    "fault_injection",
    "maybe_fault",
    "parse_fault",
    "parse_shard",
    "run_sweep",
    "shard_assignment",
    "shard_of",
    "sweep_status",
    "table_to_json",
    "table_to_jsonable",
    "trial_plan",
]

#: Bump when the on-disk record schema changes; part of the fingerprint,
#: so old stores are simply never matched rather than misread.
FORMAT_VERSION = 1

_FAULT_ENV = "REPRO_FAULT_AT"
_FAULT_KINDS = ("trial", "call", "merge", "final")
_FAULT_MODES = ("raise", "exit", "kill")
#: Exit status for ``exit``-mode faults (BSD EX_SOFTWARE, greppable in CI).
FAULT_EXIT_STATUS = 70


# ----------------------------------------------------------------------
# Recipes and shard addressing (pure, heavily property-tested)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepRecipe:
    """Everything that determines a sweep's trial list, hence its store.

    ``backend`` is deliberately *not* normalized: ``None`` (ambient
    default) and ``"scalar"`` fingerprint differently even though they
    usually behave the same, because "usually" is not a provenance
    guarantee.  The CLI always passes an explicit backend.
    """

    experiment_id: str
    profile: str = "quick"
    checked: bool = False
    backend: Optional[str] = None

    def canonical(self) -> str:
        """Canonical JSON identity (stable across processes/platforms)."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "profile": self.profile,
                "checked": self.checked,
                "backend": self.backend,
                "format_version": FORMAT_VERSION,
                "repro_version": repro.__version__,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def fingerprint(self) -> str:
        """blake2b-16 hex digest of :meth:`canonical` — the store key."""
        return hashlib.blake2b(
            self.canonical().encode("utf-8"), digest_size=16
        ).hexdigest()


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard of a ``k``-way split: ``index`` ∈ [0, count)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ExperimentError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(spec: str) -> ShardSpec:
    """Parse ``"i/k"`` (e.g. ``"0/4"``) into a validated :class:`ShardSpec`."""
    parts = spec.split("/")
    if len(parts) != 2:
        raise ExperimentError(f"shard spec must look like 'i/k', got {spec!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ExperimentError(
            f"shard spec must be two integers 'i/k', got {spec!r}"
        ) from None
    return ShardSpec(index, count)


def shard_of(ordinal: int, count: int) -> int:
    """The shard owning global trial ordinal ``ordinal`` in a ``count``-way
    split (round-robin, so shard loads differ by at most one trial)."""
    if ordinal < 0:
        raise ExperimentError(f"trial ordinal must be >= 0, got {ordinal}")
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    return ordinal % count


def trial_plan(call_sizes: Sequence[int]) -> list[tuple[int, int, int]]:
    """Flatten per-call trial counts into ``(ordinal, call, item)`` triples.

    The plan is the DAG's address space: ordinals number trials globally
    in execution order, which is what :func:`shard_of` partitions.
    """
    plan = []
    ordinal = 0
    for call, size in enumerate(call_sizes):
        if size < 0:
            raise ExperimentError(f"call size must be >= 0, got {size}")
        for item in range(size):
            plan.append((ordinal, call, item))
            ordinal += 1
    return plan


def shard_assignment(
    call_sizes: Sequence[int], shard: ShardSpec
) -> list[tuple[int, int, int]]:
    """The sub-plan of :func:`trial_plan` owned by ``shard``."""
    return [
        entry
        for entry in trial_plan(call_sizes)
        if shard_of(entry[0], shard.count) == shard.index
    ]


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def parse_fault(spec: str) -> tuple[str, Optional[int], str]:
    """Parse ``kind[:ordinal][:mode]`` into ``(kind, ordinal, mode)``.

    ``trial``/``call`` require an ordinal; ``merge``/``final`` forbid one.
    """
    parts = spec.split(":")
    kind = parts[0]
    if kind not in _FAULT_KINDS:
        raise ExperimentError(
            f"fault kind must be one of {_FAULT_KINDS}, got {spec!r}"
        )
    ordinal: Optional[int] = None
    mode = "raise"
    rest = parts[1:]
    if kind in ("trial", "call"):
        if not rest:
            raise ExperimentError(f"fault {kind!r} needs an ordinal: {spec!r}")
        try:
            ordinal = int(rest[0])
        except ValueError:
            raise ExperimentError(
                f"fault ordinal must be an integer, got {spec!r}"
            ) from None
        if ordinal < 0:
            raise ExperimentError(f"fault ordinal must be >= 0, got {spec!r}")
        rest = rest[1:]
    if rest:
        mode = rest[0]
        rest = rest[1:]
    if rest or mode not in _FAULT_MODES:
        raise ExperimentError(
            f"fault spec must be 'kind[:ordinal][:mode]' with mode in "
            f"{_FAULT_MODES}, got {spec!r}"
        )
    return kind, ordinal, mode


def maybe_fault(kind: str, ordinal: Optional[int] = None) -> None:
    """Fire the armed fault if ``(kind, ordinal)`` matches ``REPRO_FAULT_AT``.

    Reads the env var on every check (cheap: one dict lookup when unset)
    so subprocess tests can arm faults without touching library state.
    Called only from the sweep parent process — never from pool workers —
    so the fault point, and therefore the store state at the kill, is
    deterministic regardless of ``REPRO_JOBS``.
    """
    spec = os.environ.get(_FAULT_ENV)
    if not spec:
        return
    want_kind, want_ordinal, mode = parse_fault(spec)
    if kind != want_kind or (want_ordinal is not None and ordinal != want_ordinal):
        return
    where = kind if want_ordinal is None else f"{kind}:{want_ordinal}"
    if mode == "exit":
        os._exit(FAULT_EXIT_STATUS)
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise FaultInjected(f"injected fault at {where} ({_FAULT_ENV}={spec})")


@contextlib.contextmanager
def fault_injection(spec: str) -> Iterator[None]:
    """Arm ``REPRO_FAULT_AT=spec`` for the scope, validating it eagerly,
    and restore the previous value on exit (even via the injected fault)."""
    parse_fault(spec)
    previous = os.environ.get(_FAULT_ENV)
    os.environ[_FAULT_ENV] = spec
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(_FAULT_ENV, None)
        else:
            os.environ[_FAULT_ENV] = previous


# ----------------------------------------------------------------------
# The on-disk sweep store
# ----------------------------------------------------------------------
def default_store_root() -> Path:
    """``REPRO_SWEEP_STORE`` or ``.repro/sweeps`` under the working dir."""
    return Path(os.environ.get("REPRO_SWEEP_STORE") or ".repro/sweeps")


def _item_digest(item: Any) -> str:
    return hashlib.blake2b(
        pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL), digest_size=16
    ).hexdigest()


class SweepStore:
    """The per-recipe artifact directory: ``<root>/<fingerprint>/``.

    Trial records live at ``trials/cCCCC-tTTTT`` inside an
    :class:`ArtifactStore` (atomic, integrity-framed); the merged table at
    ``table``; the recipe's canonical JSON at ``recipe`` for humans and
    ``sweep_status``.  Bookkeeping counters stay in ``self.artifacts.stats``
    — never obs metrics, which would perturb the very bit-identity the
    store exists to preserve.
    """

    _TRIAL_SCHEMA = 1

    def __init__(self, root: str | os.PathLike, recipe: SweepRecipe) -> None:
        self.recipe = recipe
        self.path = Path(root) / recipe.fingerprint()
        self.artifacts = ArtifactStore(self.path)
        if not self.artifacts.exists("recipe"):
            self.artifacts.save_json("recipe", json.loads(recipe.canonical()))

    @staticmethod
    def trial_name(call: int, item: int) -> str:
        return f"trials-c{call:04d}-t{item:04d}"

    def save_trial(
        self,
        call: int,
        item: int,
        result: Any,
        span_delta: dict,
        metric_delta: dict,
        *,
        item_value: Any,
    ) -> None:
        self.artifacts.save(
            self.trial_name(call, item),
            {
                "schema": self._TRIAL_SCHEMA,
                "item_digest": _item_digest(item_value),
                "result": result,
                "spans": spans_to_wire(span_delta),
                "metrics": delta_to_wire(metric_delta),
            },
        )

    def load_trial(self, call: int, item: int, *, item_value: Any) -> Optional[dict]:
        """The stored record, decoded — or ``None`` on miss/corruption/
        input mismatch (all three mean "recompute")."""
        record = self.artifacts.load(self.trial_name(call, item))
        if (
            not isinstance(record, dict)
            or record.get("schema") != self._TRIAL_SCHEMA
            or record.get("item_digest") != _item_digest(item_value)
        ):
            return None
        return {
            "result": record["result"],
            "spans": spans_from_wire(record["spans"]),
            "metrics": delta_from_wire(record["metrics"]),
        }

    def save_table(self, table: harness.ExperimentTable) -> None:
        self.artifacts.save("table", table)

    def load_table(self) -> Optional[harness.ExperimentTable]:
        table = self.artifacts.load("table")
        return table if isinstance(table, harness.ExperimentTable) else None

    def completed_trials(self) -> list[tuple[int, int]]:
        """Sorted ``(call, item)`` addresses with a stored record."""
        out = []
        for name in self.artifacts.list("trials-"):
            body = name[len("trials-") :]
            call_part, _, item_part = body.partition("-")
            out.append((int(call_part[1:]), int(item_part[1:])))
        return sorted(out)

    def clear(self) -> None:
        self.artifacts.clear()
        self.artifacts.save_json("recipe", json.loads(self.recipe.canonical()))


# ----------------------------------------------------------------------
# The sweep scope: intercepts map_trials inside run_experiment
# ----------------------------------------------------------------------
_ACTIVE: Optional["SweepScope"] = None


def active_sweep() -> Optional["SweepScope"]:
    """The scope :func:`harness.map_trials` should dispatch to, if any."""
    if _ACTIVE is not None and not _ACTIVE.suspended:
        return _ACTIVE
    return None


class SweepScope:
    """Per-sweep state threaded under one ``run_experiment`` call.

    Tracks the call/ordinal counters that give trials their addresses and
    holds the load/compute/borrow tallies for the report.  ``suspended``
    guards reentrancy: a trial that itself calls ``map_trials`` (nested
    fan-out helpers) must fall through to the plain harness path, not
    consume sweep addresses.
    """

    def __init__(self, store: SweepStore, shard: ShardSpec) -> None:
        self.store = store
        self.shard = shard
        self.suspended = False
        self._next_call = 0
        self._next_ordinal = 0
        self.loaded = 0
        self.computed = 0
        self.borrowed = 0

    @contextlib.contextmanager
    def _suspend(self) -> Iterator[None]:
        self.suspended = True
        try:
            yield
        finally:
            self.suspended = False

    @contextlib.contextmanager
    def activate(self) -> Iterator[None]:
        global _ACTIVE
        if _ACTIVE is not None:
            raise ExperimentError("a sweep scope is already active in this process")
        _ACTIVE = self
        try:
            yield
        finally:
            _ACTIVE = None

    def map_call(self, fn: Callable, items: list) -> list:
        """One intercepted ``map_trials`` call.

        Stored trials are loaded (result + replayed telemetry deltas);
        the rest are computed via :func:`harness.execute_trials` — pool or
        serial per ``REPRO_JOBS`` — then persisted in input order, but
        only those this shard owns.  Unowned misses are *borrowed*: their
        results feed the experiment's aggregation code and are dropped.
        Fault checks sit immediately before each persist and at the call
        boundary, in this (parent) process only.
        """
        call = self._next_call
        self._next_call += 1
        results: list[Any] = [None] * len(items)
        pending: list[tuple[int, int, bool]] = []  # (position, ordinal, owned)
        for position in range(len(items)):
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            record = self.store.load_trial(call, position, item_value=items[position])
            if record is not None:
                merge_spans(record["spans"])
                merge_metrics(record["metrics"])
                results[position] = record["result"]
                self.loaded += 1
            else:
                owned = shard_of(ordinal, self.shard.count) == self.shard.index
                pending.append((position, ordinal, owned))
        if pending:
            with self._suspend():
                computed = harness.execute_trials(
                    fn, [items[position] for position, _, _ in pending]
                )
            for (position, ordinal, owned), (result, span_delta, metric_delta) in zip(
                pending, computed
            ):
                results[position] = result
                if owned:
                    maybe_fault("trial", ordinal)
                    self.store.save_trial(
                        call,
                        position,
                        result,
                        span_delta,
                        metric_delta,
                        item_value=items[position],
                    )
                    self.computed += 1
                else:
                    self.borrowed += 1
        maybe_fault("call", call)
        return results


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepReport:
    """What one sweep invocation did, for logs and tests."""

    recipe: SweepRecipe
    fingerprint: str
    shard: ShardSpec
    trials_loaded: int
    trials_computed: int
    trials_borrowed: int
    table_stored: bool

    def summary(self) -> str:
        return (
            f"sweep {self.recipe.experiment_id}[{self.recipe.profile}] "
            f"shard {self.shard} store {self.fingerprint[:12]}: "
            f"computed={self.trials_computed} loaded={self.trials_loaded} "
            f"borrowed={self.trials_borrowed} "
            f"table={'stored' if self.table_stored else 'pending'}"
        )


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """``table`` is ``None`` for shard runs (k > 1): only the coordinator
    (a ``k == 1`` run over the shared store) merges and stores the table."""

    table: Optional[harness.ExperimentTable]
    report: SweepReport


def run_sweep(
    experiment_id: str,
    profile: str = "quick",
    *,
    checked: bool = False,
    backend: Optional[str] = None,
    store_root: Optional[str | os.PathLike] = None,
    shard: Optional[ShardSpec] = None,
    resume: bool = False,
    fresh: bool = False,
) -> SweepResult:
    """Run (or resume, or shard) one experiment sweep against a store.

    * No flags: run the whole sweep, checkpointing every trial; if the
      store already holds the merged table, return it without running.
    * ``shard=ShardSpec(i, k)`` with ``k > 1``: compute and persist this
      shard's trials only; the returned table is ``None``.
    * ``resume=True``: require prior progress in the store (guards
      against a typo'd store path silently starting from scratch), then
      complete the sweep and store the table.
    * ``fresh=True``: drop the store first (mutually exclusive with
      ``resume``).
    """
    harness.validate_profile(profile)
    harness.get_experiment(experiment_id)  # fail fast on unknown ids
    recipe = SweepRecipe(experiment_id, profile, checked=checked, backend=backend)
    shard = shard or ShardSpec(0, 1)
    if resume and fresh:
        raise ExperimentError("--resume and --fresh are mutually exclusive")
    if resume and shard.count > 1:
        raise ExperimentError("--resume is a coordinator operation; drop --shard")
    root = Path(store_root or default_store_root())
    if resume and not (root / recipe.fingerprint()).exists():
        # Guard against a typo'd store path (or wrong recipe) silently
        # starting from scratch.  The per-recipe directory is created the
        # moment a sweep starts, so even a run killed before its first
        # checkpoint is resumable.
        raise ExperimentError(
            f"nothing to resume for {experiment_id}[{profile}] under "
            f"{root} — run `repro sweep {experiment_id}` first"
        )
    store = SweepStore(root, recipe)
    if fresh:
        store.clear()
    if shard.count == 1 and not fresh:
        cached = store.load_table()
        if cached is not None:
            return SweepResult(
                table=cached,
                report=SweepReport(
                    recipe=recipe,
                    fingerprint=recipe.fingerprint(),
                    shard=shard,
                    trials_loaded=0,
                    trials_computed=0,
                    trials_borrowed=0,
                    table_stored=True,
                ),
            )
    scope = SweepScope(store, shard)
    with scope.activate():
        table = harness.run_experiment(
            experiment_id, profile, checked=checked, backend=backend
        )
    stored = False
    if shard.count == 1:
        maybe_fault("merge")
        store.save_table(table)
        stored = True
        maybe_fault("final")
    report = SweepReport(
        recipe=recipe,
        fingerprint=recipe.fingerprint(),
        shard=shard,
        trials_loaded=scope.loaded,
        trials_computed=scope.computed,
        trials_borrowed=scope.borrowed,
        table_stored=stored,
    )
    return SweepResult(table=table if shard.count == 1 else None, report=report)


def sweep_status(
    experiment_id: str,
    profile: str = "quick",
    *,
    checked: bool = False,
    backend: Optional[str] = None,
    store_root: Optional[str | os.PathLike] = None,
) -> dict[str, Any]:
    """Store inspection for ``repro sweep --status`` (no computation)."""
    recipe = SweepRecipe(experiment_id, profile, checked=checked, backend=backend)
    store = SweepStore(store_root or default_store_root(), recipe)
    completed = store.completed_trials()
    return {
        "experiment_id": experiment_id,
        "profile": profile,
        "fingerprint": recipe.fingerprint(),
        "store": str(store.path),
        "trials_completed": len(completed),
        "calls_touched": sorted({call for call, _ in completed}),
        "table_stored": store.load_table() is not None,
    }


# ----------------------------------------------------------------------
# Canonical table bytes (the unit of bit-identity)
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    # ExperimentTable rows hold numpy scalars on the vector backend; JSON
    # needs native types.  bool check first: numpy bools are Integral.
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(cell) for key, cell in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(cell) for cell in value]
    return value


def table_to_jsonable(table: harness.ExperimentTable) -> dict[str, Any]:
    """The table minus its manifest, as plain JSON types.

    The manifest carries wall-clock spans and host provenance — different
    on every run by design — so it is excluded here exactly as the
    serial-vs-parallel equivalence tests exclude it.
    """
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": _jsonable(table.rows),
        "expectation": table.expectation,
        "conclusion": table.conclusion,
        "metrics": _jsonable(table.metrics),
    }


def table_to_json(table: harness.ExperimentTable) -> str:
    """Canonical bytes: two runs are bit-identical iff these strings match."""
    return (
        json.dumps(
            table_to_jsonable(table),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )
        + "\n"
    )
