"""E13: ℓ-DTG behaviour (Appendix C, Figures 4-5).

Figures 4-5 illustrate the binomial *i-tree* witness structures behind
DTG's ``O(log² n)`` bound: a node still active in iteration ``i`` roots a
tree of ``2^i`` informed nodes, so iterations stop after ``O(log n)`` and
each iteration costs ``O(i)`` exchanges.  Empirically:

* the max iteration count over nodes should grow like ``log n``;
* total rounds should grow like ``log² n`` on unweighted graphs;
* scaling the uniform latency ``ℓ`` should scale the round count by
  exactly ``ℓ`` (one DTG round = ℓ network rounds).
"""

from __future__ import annotations

import math

from repro.graphs import generators
from repro.graphs.latency_models import constant_latency
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import LDTGProtocol, ldtg_factory
from repro.sim.runner import local_broadcast_complete
from repro.experiments.harness import ExperimentTable, Profile, map_trials, register

__all__ = ["run_e13"]


def _run_dtg(graph, ell: int):
    runner = PhaseRunner(graph)
    engine = runner.run_phase(
        ldtg_factory(graph, ell), latencies_known=True, name=f"{ell}-DTG"
    )
    iterations = max(
        protocol.iterations_used
        for protocol in (engine.protocol(v) for v in graph.nodes())
        if isinstance(protocol, LDTGProtocol)
    )
    view = type("View", (), {"graph": graph, "state": runner.state})()
    complete = local_broadcast_complete(ell)(view)
    return runner.total_rounds, iterations, complete


def _clique_config(n: int) -> dict:
    """One size trial (module-level so it pickles for REPRO_JOBS)."""
    # Cliques maximize the neighborhood each node must cover — the case
    # where the binomial-tree doubling (and hence the log n iteration
    # count) is actually visible.
    graph = generators.clique(n, latency_model=constant_latency(1))
    rounds_1, iterations, complete = _run_dtg(graph, 1)
    # Same topology with every latency scaled to ℓ = 3.
    scaled = generators.clique(n, latency_model=constant_latency(3))
    rounds_3, _, complete_3 = _run_dtg(scaled, 3)
    log_n = math.log2(n)
    return {
        "n": n,
        "iterations": iterations,
        "iters/log n": iterations / log_n,
        "rounds(ℓ=1)": rounds_1,
        "rounds/log²n": rounds_1 / log_n**2,
        "rounds(ℓ=3)": rounds_3,
        "ℓ-scaling": rounds_3 / rounds_1,
        "complete": complete and complete_3,
    }


@register("E13")
def run_e13(profile: Profile = "quick") -> ExperimentTable:
    """Figures 4-5: DTG iterations ~ log n, rounds ~ log² n, linear in ℓ."""
    sizes = [8, 16, 32, 64] if profile == "quick" else [8, 16, 32, 64, 128]
    rows = map_trials(_clique_config, sizes)
    scaling = [r["ℓ-scaling"] for r in rows]
    return ExperimentTable(
        experiment_id="E13",
        title="Appendix C / Figures 4-5 — ℓ-DTG: log n iterations, ℓ·log² n rounds",
        columns=[
            "n",
            "iterations",
            "iters/log n",
            "rounds(ℓ=1)",
            "rounds/log²n",
            "rounds(ℓ=3)",
            "ℓ-scaling",
            "complete",
        ],
        rows=rows,
        expectation=(
            "iterations/log n and rounds/log² n bounded; rounds(ℓ=3) ≈ "
            "3 × rounds(ℓ=1); local broadcast always completes"
        ),
        conclusion=f"ℓ-scaling factors: {', '.join(f'{x:.2f}' for x in scaling)} (expect ≈ 3)",
    )
