"""E3: the Ω(Δ) lower bound (Theorem 6) made empirical.

Theorem 6's network glues a ``G(2Δ, |T| = 1)`` gadget onto a clique: the
weighted diameter is O(1) and the unweighted conductance constant, yet any
algorithm needs ``Ω(Δ)`` rounds for local broadcast because the single fast
cross edge must be found by (implicit) guessing.

We run the Lemma 3 reduction with real push--pull gossip on the built
network and record the round at which the hidden fast edge is first hit
(the guessing game's end).  That round should grow linearly with Δ even
though every structural parameter the classical theory looks at stays flat.
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.analysis.scaling import loglog_slope
from repro.graphs.gadgets import theorem6_network
from repro.lowerbounds.reduction import simulate_gossip_as_guessing
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e3"]


def _hit_rounds(n: int, delta: int, seed: int) -> int:
    """One seed-ladder trial (module-level so it pickles for REPRO_JOBS)."""
    rng = random.Random(seed)
    gadget = theorem6_network(n, delta, rng)
    make_rng = per_node_rng_factory(seed + 1000)
    outcome = simulate_gossip_as_guessing(
        gadget,
        lambda node: PushPullProtocol(make_rng(node)),
    )
    if not outcome.lemma3_holds:
        raise AssertionError("Lemma 3 violated in E3 run")
    return (
        outcome.game_rounds
        if outcome.game_rounds is not None
        else outcome.gossip_rounds
    )


@register("E3")
def run_e3(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 6: time to find the hidden fast edge grows like Δ."""
    deltas = [4, 8, 16, 32] if profile == "quick" else [4, 8, 16, 32, 64, 128]
    extra_clique = 12
    seeds = seeds_for(profile, quick=5, full=15)
    rows = []
    for delta in deltas:
        n = 2 * delta + extra_clique
        game_rounds = map_trials(functools.partial(_hit_rounds, n, delta), seeds)
        mean_rounds = statistics.fmean(game_rounds)
        rows.append(
            {
                "delta": delta,
                "n": n,
                "rounds_to_hit": mean_rounds,
                "rounds/delta": mean_rounds / delta,
            }
        )
    slope = loglog_slope(
        [r["delta"] for r in rows], [r["rounds_to_hit"] for r in rows]
    )
    return ExperimentTable(
        experiment_id="E3",
        title="Theorem 6 — Ω(Δ) despite D = O(1) and constant hop conductance",
        columns=["delta", "n", "rounds_to_hit", "rounds/delta"],
        rows=rows,
        expectation="rounds to hit the fast edge grow linearly in Δ (slope ≈ 1)",
        conclusion=f"log-log slope of rounds vs Δ = {slope:.2f}",
    )
