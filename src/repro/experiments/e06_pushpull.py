"""E6: the push--pull upper bound (Theorem 12).

Theorem 12: push--pull broadcasts w.h.p. within ``O((ℓ*/φ*) · log n)``.  We
measure broadcast completion time across three graph families with very
different weighted-conductance structure and compare against the predicted
``(ℓ*/φ*)·log n``:

* rings of cliques with growing inter-clique latency (``ℓ*`` grows);
* two-tier datacenters with growing rack count (``φ*`` shrinks);
* random regular expanders with bimodal latencies (``ℓ*`` selects the
  fast-edge backbone).

The paper predicts the measured/predicted ratio stays bounded across each
family (the bound is tight up to constants), and the measured time
correlates strongly with the predictor across all rows.
"""

from __future__ import annotations

import functools
import random
import statistics

from repro.analysis.bounds import compute_bounds
from repro.analysis.scaling import correlation
from repro.graphs import generators
from repro.graphs.latency_models import bimodal_latency
from repro.protocols.push_pull import run_push_pull
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e6"]


def _broadcast_rounds(graph, source, seed: int) -> int:
    """One seed-ladder trial (module-level so it pickles for REPRO_JOBS)."""
    return run_push_pull(graph, source=source, seed=seed).rounds


def _family(profile: Profile):
    if profile == "quick":
        ring_latencies = [2, 8, 32]
        rack_counts = [4, 8]
        expander_sizes = [32, 64]
    else:
        ring_latencies = [2, 4, 8, 16, 32, 64]
        rack_counts = [4, 8, 16, 32]
        expander_sizes = [32, 64, 128, 256]
    for ell in ring_latencies:
        yield (
            f"ring-of-cliques ℓ={ell}",
            lambda rng, ell=ell: generators.ring_of_cliques(
                6, 6, inter_latency=ell, rng=rng
            ),
        )
    for racks in rack_counts:
        yield (
            f"datacenter racks={racks}",
            lambda rng, racks=racks: generators.two_tier_datacenter(
                racks, 6, inter_rack_latency=12
            ),
        )
    for n in expander_sizes:
        yield (
            f"expander n={n}",
            lambda rng, n=n: generators.random_regular(
                n, 6, latency_model=bimodal_latency(1, 20, 0.5), rng=rng
            ),
        )


@register("E6")
def run_e6(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 12: push--pull time vs (ℓ*/φ*)·log n across families."""
    seeds = seeds_for(profile, quick=3, full=8)
    rows = []
    for label, build in _family(profile):
        graph = build(random.Random(0))
        bounds = compute_bounds(graph, conductance_method="sweep")
        times = map_trials(
            functools.partial(_broadcast_rounds, graph, graph.nodes()[0]), seeds
        )
        measured = statistics.fmean(times)
        predicted = bounds.push_pull_bound
        rows.append(
            {
                "family": label,
                "n": bounds.n,
                "ell*": bounds.conductance.critical_latency,
                "phi*": bounds.conductance.phi_star,
                "predicted": predicted,
                "measured": measured,
                "measured/predicted": measured / predicted,
            }
        )
    corr = correlation([r["predicted"] for r in rows], [r["measured"] for r in rows])
    return ExperimentTable(
        experiment_id="E6",
        title="Theorem 12 — push--pull completes in O((ℓ*/φ*)·log n)",
        columns=[
            "family",
            "n",
            "ell*",
            "phi*",
            "predicted",
            "measured",
            "measured/predicted",
        ],
        rows=rows,
        expectation=(
            "measured/predicted bounded above by an O(1) constant across all "
            "families (the bound may be loose, never violated by more than "
            "constants)"
        ),
        conclusion=f"corr(measured, (ℓ*/φ*)·log n) = {corr:.2f}",
    )
