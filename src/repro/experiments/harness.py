"""Experiment harness: result tables, profiles, and the registry.

Every experiment in the index of DESIGN.md is a function
``run(profile) -> ExperimentTable``.  The ``profile`` selects parameter
scales:

* ``"quick"`` — seconds; used by the test suite and default benchmarks;
* ``"full"`` — minutes; larger ladders for tighter scaling fits.

Benchmarks print the returned tables, which is the library's analogue of
the rows/series a systems paper's evaluation section reports.
"""

from __future__ import annotations

import atexit
import contextlib
import dataclasses
import functools
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.errors import ExperimentError
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    merge_metrics,
    metrics_since,
    metrics_snapshot,
)
from repro.obs.profile import merge_spans, span, span_snapshot, spans_since
from repro.obs.manifest import run_manifest

__all__ = [
    "ExperimentTable",
    "Profile",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "validate_profile",
    "trial_jobs",
    "map_trials",
    "execute_trials",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

PROFILES = ("quick", "full")
Profile = str


def validate_profile(profile: Profile) -> Profile:
    """Reject unknown profiles before any work is spent on them.

    Every entry point that takes a profile should call this first: a typo
    like ``"fulll"`` must fail immediately with a clear message, not leak
    into ``seeds_for`` deep inside an experiment (or, worse, into an
    experiment that never consults the seed ladder and silently runs at
    some default scale).
    """
    if profile not in PROFILES:
        raise ExperimentError(
            f"unknown profile {profile!r}; use one of {PROFILES}"
        )
    return profile


@dataclasses.dataclass
class ExperimentTable:
    """One reproduced table/series with provenance.

    Attributes
    ----------
    experiment_id:
        Index id from DESIGN.md (e.g. ``"E5"``).
    title:
        Human-readable description with the paper reference.
    columns:
        Column names, in display order.
    rows:
        One dict per row; keys must cover ``columns``.
    expectation:
        What the paper predicts this table should show.
    conclusion:
        Free-text verdict filled by the experiment (e.g. fitted slope).
    manifest:
        Run provenance (:func:`repro.obs.manifest.run_manifest`) stamped by
        :func:`run_experiment`: git revision, interpreter, ``REPRO_JOBS``,
        profile, plus the aggregated profiling spans of the run.
        Environment-dependent by design, so bit-identity comparisons
        (serial vs parallel tables) look at ``rows``/``conclusion``, never
        the manifest.
    metrics:
        Canonical dump (:meth:`~repro.obs.metrics.MetricsRegistry.collect`
        shape) of the metrics this run produced — the default-registry
        delta scoped to the experiment, workers' deltas already merged in.
        Unlike the manifest's spans, these are clock-free and therefore
        identical between serial and ``REPRO_JOBS=N`` runs.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    expectation: str = ""
    conclusion: str = ""
    manifest: Optional[dict[str, Any]] = None
    metrics: Optional[dict[str, Any]] = None

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r} in {self.experiment_id}")
        values = []
        for index, row in enumerate(self.rows):
            if name not in row:
                raise ExperimentError(
                    f"row {index} of {self.experiment_id} is missing column "
                    f"{name!r}"
                )
            values.append(row[name])
        return values

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""

        def fmt(value: Any) -> str:
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return f"{value:.3g}"
            return str(value)

        header = [self.columns]
        body = [[fmt(row.get(col, "")) for col in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.expectation:
            lines.append(f"expectation: {self.expectation}")
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
        if self.conclusion:
            lines.append(f"conclusion: {self.conclusion}")
        if self.manifest is not None:
            provenance = " ".join(
                f"{key}={self.manifest[key]}"
                for key in ("git_rev", "python", "repro_jobs", "profile")
                if self.manifest.get(key) is not None
            )
            if provenance:
                lines.append(f"manifest: {provenance}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


_REGISTRY: dict[str, Callable[[Profile], ExperimentTable]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator registering an experiment function under its index id."""

    def wrap(fn: Callable[[Profile], ExperimentTable]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[[Profile], ExperimentTable]:
    """Look up an experiment by index id (importing the experiment modules)."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[experiment_id]


def all_experiments() -> dict[str, Callable[[Profile], ExperimentTable]]:
    """All registered experiments by id."""
    _ensure_loaded()
    return dict(_REGISTRY)


def seeds_for(profile: Profile, quick: int = 3, full: int = 10) -> Sequence[int]:
    """The seed ladder for a profile."""
    validate_profile(profile)
    return range(quick) if profile == "quick" else range(full)


def trial_jobs() -> int:
    """Worker count for seed-ladder fan-out, from the ``REPRO_JOBS`` env var.

    Parallelism is strictly opt-in: unset, empty, or ``1`` means serial
    (the default — simulations are deterministic and debugging is easiest
    in-process).  ``auto`` or ``0`` means one worker per CPU; any other
    value must parse as a positive integer.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip().lower()
    if not raw or raw == "1":
        return 1
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExperimentError(
            f"REPRO_JOBS must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 1:
        raise ExperimentError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _force_serial_worker() -> None:
    # Worker initializer: a trial that itself calls map_trials (an
    # experiment helper reused inside a trial) must run serially — nested
    # pools would fork a pool per worker.
    os.environ["REPRO_JOBS"] = "1"


def _shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The process pool shared by every ``map_trials`` call in this process.

    Experiments issue many small fan-outs (one per parameter config), so
    paying worker startup per call would swamp the trials themselves; the
    pool is created once, resized if ``REPRO_JOBS`` changes between calls,
    and shut down at interpreter exit.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None and _POOL_JOBS != jobs:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(
            max_workers=jobs, initializer=_force_serial_worker
        )
        _POOL_JOBS = jobs
    return _POOL


@atexit.register
def _shutdown_pool() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def _run_trial_with_spans(fn: Callable[[_T], _R], item: _T):
    # Pool-worker wrapper: run the trial and ship the profiling spans and
    # metrics it produced back alongside the result, so the parent can
    # merge worker telemetry into its own registries (workers are separate
    # processes with separate registries).  Module-level so it pickles.
    # The worker registry is dropped outright rather than snapshotted:
    # pool workers outlive individual experiments, and a surviving peak
    # gauge (set_max) from an earlier experiment's trial would otherwise
    # ride home inside this trial's delta and break serial/parallel
    # metric equivalence.
    spans_before = span_snapshot()
    default_registry().reset()
    with span("harness.trial"):
        result = fn(item)
    return result, spans_since(spans_before), metrics_since({})


def map_trials(fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
    """Map ``fn`` over independent trials, preserving input order.

    Runs serially when :func:`trial_jobs` is 1, otherwise fans the trials
    over the shared :class:`~concurrent.futures.ProcessPoolExecutor`.
    ``pool.map`` returns results in input order regardless of completion
    order and each trial re-seeds its own RNGs, so a parallel run produces
    bit-identical tables to a serial one.  ``fn`` and the items must be
    picklable — use a module-level function (or :func:`functools.partial`
    over one), not a closure.

    Either way every trial is timed under the ``harness.trial`` profiling
    span, and in the parallel case each worker's span and metrics deltas
    are merged back into the parent registries — span *counts* and all
    metric values are identical between serial and parallel runs of the
    same trials (metrics never read a clock).
    """
    items = list(items)
    # Sweep interception: under an active repro.experiments.sharding
    # scope, trials are addressed, checkpointed, and possibly loaded from
    # the sweep store instead of recomputed.  Lazy import — the plain
    # harness must not pay for (or depend on) the sharding layer.
    from repro.experiments import sharding

    scope = sharding.active_sweep()
    if scope is not None:
        return scope.map_call(fn, items)
    jobs = trial_jobs()
    if jobs <= 1 or len(items) <= 1:
        results = []
        for item in items:
            with span("harness.trial"):
                results.append(fn(item))
        return results
    wrapped = functools.partial(_run_trial_with_spans, fn)
    triples = list(_shared_pool(jobs).map(wrapped, items))
    for _, span_delta, metrics_delta in triples:
        merge_spans(span_delta)
        merge_metrics(metrics_delta)
    return [result for result, _, _ in triples]


def execute_trials(fn: Callable[[_T], _R], items: Sequence[_T]) -> list[tuple]:
    """Run trials and return ``(result, span delta, metrics delta)`` triples.

    The telemetry-preserving core of :func:`map_trials`, exposed for the
    sweep layer: each trial's deltas are folded into the ambient
    registries here (so in-process consumers see them exactly as
    ``map_trials`` would deliver) *and* returned per-trial so the caller
    can persist them — the same triple pool workers ship home, whichever
    path executed the trial.

    Serial trials capture their delta by snapshot/``since`` around the
    ``harness.trial`` span without resetting the registries (the writes
    already landed in-registry, so merging again would double-count);
    pooled trials use the existing worker wrapper and are merged here.
    """
    items = list(items)
    jobs = trial_jobs()
    if jobs <= 1 or len(items) <= 1:
        triples = []
        for item in items:
            spans_before = span_snapshot()
            metrics_before = metrics_snapshot()
            with span("harness.trial"):
                result = fn(item)
            triples.append(
                (result, spans_since(spans_before), metrics_since(metrics_before))
            )
        return triples
    wrapped = functools.partial(_run_trial_with_spans, fn)
    triples = list(_shared_pool(jobs).map(wrapped, items))
    for _, span_delta, metrics_delta in triples:
        merge_spans(span_delta)
        merge_metrics(metrics_delta)
    return triples


def run_experiment(
    experiment_id: str,
    profile: Profile = "quick",
    checked: bool = False,
    backend: Optional[str] = None,
) -> ExperimentTable:
    """Run one experiment, optionally under full model-invariant checking.

    With ``checked=True`` every :class:`~repro.sim.engine.Engine` the
    experiment constructs (directly or through any protocol runner) gets
    the default invariant checkers attached via the
    :func:`repro.sim.invariants.checked` scope — a run that violates the
    model raises :class:`~repro.errors.SimulationError` instead of
    producing a quietly wrong table.

    ``backend`` selects the engine backend every protocol runner inside
    the experiment defaults to (via the
    :func:`repro.sim.vector.engine_backend` scope); ``None`` leaves the
    ambient default in place.  Only experiments built from oblivious
    protocols can run on the vector backend.
    """
    validate_profile(profile)
    fn = get_experiment(experiment_id)
    spans_before = span_snapshot()
    metrics_before = metrics_snapshot()
    with contextlib.ExitStack() as stack:
        stack.enter_context(span(f"experiment.{experiment_id}"))
        if backend is not None:
            from repro.sim.vector import engine_backend

            stack.enter_context(engine_backend(backend))
        if checked:
            from repro.sim import invariants

            stack.enter_context(invariants.checked())
        table = fn(profile)
    scoped = MetricsRegistry()
    scoped.merge(metrics_since(metrics_before))
    table.metrics = scoped.collect()
    extras: dict[str, object] = {}
    state_cells = table.metrics.get("sim_state_bytes", {}).get("values", ())
    if state_cells:
        # Peak rumor-state bytes across the experiment's runs, so memory
        # regressions show up in provenance next to the timing spans.
        extras["peak_state_bytes"] = max(cell["value"] for cell in state_cells)
        extras["state_layouts"] = sorted(
            {cell["labels"].get("layout", "unknown") for cell in state_cells}
        )
    table.manifest = run_manifest(
        experiment=experiment_id,
        profile=profile,
        checked=checked,
        backend=backend,
        spans={
            name: {"count": count, "seconds": total, "max_seconds": maximum}
            for name, (count, total, maximum) in sorted(
                spans_since(spans_before).items()
            )
        },
        **extras,
    )
    return table


def _ensure_loaded() -> None:
    # Import experiment modules for their registration side effects.
    from repro.experiments import (  # noqa: F401
        e01_guessing,
        e03_theorem6,
        e04_theorem7,
        e05_theorem8,
        e06_pushpull,
        e07_spanner,
        e08_eid,
        e10_path_discovery,
        e11_unified,
        e12_ring,
        e13_dtg,
        e14_ablations,
        e15_failures,
        e16_restricted,
    )
