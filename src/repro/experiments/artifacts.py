"""Content-keyed artifact cache for expensive per-(generator, params, seed) products.

Experiments recompute the same derived objects constantly: E8/E9/E10 all
measure weighted diameters of ring-of-cliques instances, E14 builds the
same Baswana--Sen spanner twice in one run, and every conductance audit
re-sweeps graphs the previous experiment already profiled.  This module
memoizes those products behind content-addressed keys so repeated work is
a dictionary hit — within a run, across experiments in a process, and in
every worker of a ``REPRO_JOBS`` fan-out (each worker process keeps its
own cache; results are deterministic, so caches never disagree).

Keying and invalidation rules
-----------------------------
* **Graphs** are keyed by *recipe*: ``(generator_name, params, seed)``.
  Two calls with the same recipe return the same (cached) object, which
  is safe because generators are deterministic functions of their rng
  seed.  Callers must treat cached graphs as immutable — mutating one
  would poison every later recipe hit.  :func:`cached_graph` verifies at
  build time that the recipe is hashable.
* **Derived products** (spanners, distance maps, diameters, conductance
  values/profiles) are keyed by :meth:`LatencyGraph.fingerprint` — a
  blake2b digest of the node list and the dense edge/latency arrays —
  plus the parameters of the product.  Deriving the key from *content*
  rather than identity means a graph mutated after caching gets a new
  fingerprint and therefore new cache entries; stale entries for the old
  content are never served (they are merely unreachable until cleared).
* Randomized products (spanners, sweeps) include their integer seed in
  the key, never a live ``random.Random`` — the cache must be a pure
  function of ``(content, params, seed)``.

The cache is process-local and unbounded (experiment working sets are
dozens of artifacts, not millions); :func:`clear` resets it, and
:func:`stats` exposes hit/miss counters for tests and tuning.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import random
import struct
import tempfile
from pathlib import Path
from typing import Any, Callable, Hashable, Optional

from repro.obs.manifest import run_manifest
from repro.obs.metrics import default_registry

__all__ = [
    "ArtifactStore",
    "cached",
    "cached_graph",
    "cached_spanner",
    "cached_weighted_diameter",
    "cached_hop_distances",
    "cached_weighted_distances",
    "cached_sweep_conductance",
    "cached_conductance_profile",
    "clear",
    "provenance",
    "stats",
]

_CACHE: dict[tuple, Any] = {}
#: Per-entry build provenance: the run manifest captured at build time.
_PROVENANCE: dict[tuple, dict[str, Any]] = {}
_HITS = 0
_MISSES = 0


def cached(kind: str, key: Hashable, build: Callable[[], Any]) -> Any:
    """Memoize ``build()`` under ``(kind, key)``; the generic entry point.

    On a miss, a :func:`~repro.obs.manifest.run_manifest` describing the
    build (kind, key, environment) is stamped alongside the entry —
    readable back via :func:`provenance`.
    """
    global _HITS, _MISSES
    full_key = (kind, key)
    try:
        value = _CACHE[full_key]
    except KeyError:
        _MISSES += 1
        default_registry().counter(
            "artifact_cache_misses_total", "artifact-cache misses by kind"
        ).inc(kind=kind)
        value = _CACHE[full_key] = build()
        _PROVENANCE[full_key] = run_manifest(artifact_kind=kind, artifact_key=repr(key))
        return value
    _HITS += 1
    default_registry().counter(
        "artifact_cache_hits_total", "artifact-cache hits by kind"
    ).inc(kind=kind)
    return value


def provenance(kind: str, key: Hashable) -> Optional[dict[str, Any]]:
    """The build manifest of a cached entry (``None`` if never built here)."""
    return _PROVENANCE.get((kind, key))


def clear() -> None:
    """Drop every cached artifact and reset the hit/miss counters."""
    global _HITS, _MISSES
    _CACHE.clear()
    _PROVENANCE.clear()
    _HITS = 0
    _MISSES = 0


def stats() -> dict[str, int]:
    """Cache effectiveness counters: ``{"hits", "misses", "entries"}``."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


# ----------------------------------------------------------------------
# Durable on-disk store (sweep shards, checkpoints)
# ----------------------------------------------------------------------
#: File framing: magic + little-endian payload length + blake2b-16 digest.
#: Any prefix-truncation (a worker killed mid-write on a filesystem without
#: atomic replace, or a copy that died) fails either the length or the
#: digest check and the entry is treated as absent, never half-loaded.
_STORE_MAGIC = b"repro-artifact/1\n"
_STORE_SUFFIX = ".art"


class ArtifactStore:
    """A crash-safe on-disk artifact store under one directory.

    In-memory caching above is process-local; sweeps need artifacts that
    survive the process (trial checkpoints, shard outputs).  Entries are
    named by caller-chosen keys (``/``-free strings) and written with the
    two standard durability tricks:

    * **Atomic visibility** — payloads are written to a ``.tmp-*`` file in
      the same directory, fsynced, then :func:`os.replace`'d into place.
      A reader never observes a partially-written entry; a killed writer
      leaves only an ignorable temp file.
    * **Integrity framing** — each file is ``magic + length + blake2b
      digest + payload``.  Truncated or corrupted entries (however they
      got that way) fail verification and :meth:`load` returns the
      default, so callers recompute instead of deserializing garbage.

    Payloads are pickled Python objects (:meth:`save`/:meth:`load`) or
    JSON documents (:meth:`save_json`/:meth:`load_json`); JSON entries use
    the same framing.  ``stats`` counts saved/loaded/missing/corrupt for
    tests — deliberately a plain dict, not obs metrics, so store traffic
    cannot perturb an experiment's metric bit-identity.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = {"saved": 0, "loaded": 0, "missing": 0, "corrupt": 0}

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        return self.root / (name + _STORE_SUFFIX)

    def _write(self, name: str, payload: bytes) -> None:
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        framed = _STORE_MAGIC + struct.pack("<Q", len(payload)) + digest + payload
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=self.root)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(framed)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._path(name))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats["saved"] += 1

    def _read(self, name: str) -> Optional[bytes]:
        try:
            framed = self._path(name).read_bytes()
        except FileNotFoundError:
            self.stats["missing"] += 1
            return None
        header = len(_STORE_MAGIC) + 8 + 16
        if len(framed) < header or not framed.startswith(_STORE_MAGIC):
            self.stats["corrupt"] += 1
            return None
        (length,) = struct.unpack_from("<Q", framed, len(_STORE_MAGIC))
        digest = framed[len(_STORE_MAGIC) + 8 : header]
        payload = framed[header:]
        if len(payload) != length:
            self.stats["corrupt"] += 1
            return None
        if hashlib.blake2b(payload, digest_size=16).digest() != digest:
            self.stats["corrupt"] += 1
            return None
        self.stats["loaded"] += 1
        return payload

    def save(self, name: str, value: Any) -> None:
        """Durably store a picklable value under ``name``."""
        self._write(name, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def load(self, name: str, default: Any = None) -> Any:
        """Load ``name``; missing, truncated, or corrupt → ``default``."""
        payload = self._read(name)
        if payload is None:
            return default
        try:
            return pickle.loads(payload)
        except Exception:
            self.stats["corrupt"] += 1
            return default

    def save_json(self, name: str, value: Any) -> None:
        """Store a JSON document (canonical form) under ``name``."""
        text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        self._write(name, text.encode("utf-8"))

    def load_json(self, name: str, default: Any = None) -> Any:
        payload = self._read(name)
        if payload is None:
            return default
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self.stats["corrupt"] += 1
            return default

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def list(self, prefix: str = "") -> list[str]:
        """Entry names (sorted) starting with ``prefix``; temp files excluded."""
        names = []
        for path in self.root.iterdir():
            if path.name.startswith(".tmp-") or not path.name.endswith(_STORE_SUFFIX):
                continue
            name = path.name[: -len(_STORE_SUFFIX)]
            if name.startswith(prefix):
                names.append(name)
        return sorted(names)

    def delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> None:
        """Remove every entry (and stale temp files) in the store."""
        for path in self.root.iterdir():
            if path.name.endswith(_STORE_SUFFIX) or path.name.startswith(".tmp-"):
                with contextlib.suppress(OSError):
                    path.unlink()


# ----------------------------------------------------------------------
# Graphs (keyed by recipe)
# ----------------------------------------------------------------------
def cached_graph(recipe: Hashable, build: Callable[[], Any]):
    """A generator product keyed by its recipe, e.g.
    ``("ring_of_cliques", 6, 5, 4, 0)``.  The recipe must identify the
    generator, all parameters, and the rng seed."""
    hash(recipe)  # fail fast on accidentally-unhashable params
    return cached("graph", recipe, build)


# ----------------------------------------------------------------------
# Derived products (keyed by graph content)
# ----------------------------------------------------------------------
def cached_spanner(graph, k: int, seed: int, n_hat: int | None = None):
    """The Baswana--Sen spanner of ``graph`` for ``(k, seed, n_hat)``."""
    from repro.protocols.spanner import baswana_sen_spanner

    return cached(
        "spanner",
        (graph.fingerprint(), k, seed, n_hat),
        lambda: baswana_sen_spanner(graph, k, random.Random(seed), n_hat=n_hat),
    )


def cached_weighted_diameter(graph) -> int:
    """``graph.weighted_diameter()`` (exact, all sources)."""
    return cached(
        "weighted_diameter", graph.fingerprint(), graph.weighted_diameter
    )


def cached_weighted_distances(graph, source) -> dict:
    """Latency-weighted single-source distance map."""
    return cached(
        "weighted_distances",
        (graph.fingerprint(), source),
        lambda: graph.weighted_distances(source),
    )


def cached_hop_distances(graph, source) -> dict:
    """Hop-count single-source distance map."""
    return cached(
        "hop_distances",
        (graph.fingerprint(), source),
        lambda: graph.hop_distances(source),
    )


def cached_sweep_conductance(graph, max_latency: int, seed: int = 0) -> float:
    """Single-threshold sweep ``φ_ℓ`` with the candidate rng seeded to ``seed``."""
    from repro.conductance.sweep import sweep_conductance

    return cached(
        "sweep_conductance",
        (graph.fingerprint(), max_latency, seed),
        lambda: sweep_conductance(graph, max_latency, rng=random.Random(seed)),
    )


def cached_conductance_profile(graph) -> dict[int, float]:
    """The full default-rng sweep profile ``{ℓ: φ_ℓ}`` over all thresholds."""
    from repro.conductance.sweep import sweep_conductance_profile

    return cached(
        "conductance_profile",
        graph.fingerprint(),
        lambda: sweep_conductance_profile(graph),
    )
