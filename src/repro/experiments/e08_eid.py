"""E8 + E9: EID and General EID (Lemmas 15, 17, 18; Theorem 19; Figure 3).

* **E8** — EID with a known diameter: completion time vs the ``D log³ n``
  budget as ``D`` grows (sweeping inter-clique latency on a fixed ring of
  cliques so that only ``D`` changes), plus the Lemma 15 audit: the RR
  Broadcast phase on the spanner always finishes within its
  ``k·Δ_out + k`` budget (which also exercises Figure 3's worst-case path
  decomposition).

* **E9** — General EID with *unknown* diameter: validates Lemma 18 (all
  verdicts unanimous, nobody terminates before dissemination completed)
  and measures the guess-and-double overhead against known-D EID.
"""

from __future__ import annotations

import functools
import math
import random
import statistics

from repro.graphs import generators
from repro.protocols.eid import run_eid, run_general_eid
from repro.sim.state import NetworkState
from repro.protocols.base import PhaseRunner
from repro.experiments import artifacts
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e8", "run_e9"]


def _ring_family(profile: Profile):
    latencies = [1, 4, 16] if profile == "quick" else [1, 2, 4, 8, 16, 32]
    for ell in latencies:
        yield ell, artifacts.cached_graph(
            ("ring_of_cliques", 6, 5, ell, 0),
            lambda ell=ell: generators.ring_of_cliques(
                6, 5, inter_latency=ell, rng=random.Random(0)
            ),
        )


def _eid_trial(graph, diameter: int, seed: int) -> tuple[int, bool]:
    """One seed-ladder trial: (rounds, all-to-all completed)."""
    runner = PhaseRunner(graph)
    report = run_eid(graph, diameter, seed=seed, runner=runner)
    everyone = set(graph.nodes())
    complete = all(everyone <= runner.state.rumors(v) for v in everyone)
    return report.rounds, complete


def _general_eid_trial(graph, diameter: int, seed: int) -> dict:
    """One seed-ladder trial comparing known-D EID against General EID."""
    known = run_eid(graph, diameter, seed=seed)
    unknown = run_general_eid(graph, seed=seed)
    return {
        "seed": seed,
        "D": diameter,
        "final_k": unknown.final_estimate,
        "eid(D)_rounds": known.rounds,
        "general_rounds": unknown.rounds,
        "overhead": unknown.rounds / known.rounds,
        "complete_at": unknown.first_complete_round,
        "detect_lag": unknown.rounds
        - (unknown.first_complete_round or unknown.rounds),
    }


@register("E8")
def run_e8(profile: Profile = "quick") -> ExperimentTable:
    """Lemma 17: EID(D) completes within O(D log³ n)."""
    seeds = seeds_for(profile, quick=2, full=5)
    rows = []
    for ell, graph in _ring_family(profile):
        n = graph.num_nodes
        diameter = artifacts.cached_weighted_diameter(graph)
        budget = diameter * math.log2(n) ** 3
        trials = map_trials(functools.partial(_eid_trial, graph, diameter), seeds)
        rounds_runs, complete_runs = map(list, zip(*trials))
        measured = statistics.fmean(rounds_runs)
        rows.append(
            {
                "inter_latency": ell,
                "n": n,
                "D": diameter,
                "rounds": measured,
                "D·log³n": budget,
                "rounds/budget": measured / budget,
                "all_to_all_ok": all(complete_runs),
            }
        )
    ratios = [r["rounds/budget"] for r in rows]
    return ExperimentTable(
        experiment_id="E8",
        title="Lemma 17 — EID(D) solves all-to-all within O(D·log³ n)",
        columns=[
            "inter_latency",
            "n",
            "D",
            "rounds",
            "D·log³n",
            "rounds/budget",
            "all_to_all_ok",
        ],
        rows=rows,
        expectation=(
            "all-to-all always completes; rounds/(D log³ n) stays in a "
            "bounded constant band as D sweeps"
        ),
        conclusion=(
            f"rounds/budget in [{min(ratios):.2f}, {max(ratios):.2f}]; "
            f"dissemination complete on every run: {all(r['all_to_all_ok'] for r in rows)}"
        ),
    )


@register("E9")
def run_e9(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 19 / Lemma 18: General EID with unknown diameter."""
    seeds = seeds_for(profile, quick=2, full=5)
    graphs = [
        ("ring-of-cliques ℓ=4", generators.ring_of_cliques(5, 5, inter_latency=4, rng=random.Random(0))),
        ("grid 5x5", generators.grid(5, 5)),
    ]
    if profile == "full":
        graphs.append(
            (
                "datacenter 6x5",
                generators.two_tier_datacenter(6, 5, inter_rack_latency=9),
            )
        )
    rows = []
    for label, graph in graphs:
        diameter = artifacts.cached_weighted_diameter(graph)
        for trial in map_trials(
            functools.partial(_general_eid_trial, graph, diameter), seeds
        ):
            rows.append({"graph": label, **trial})
    overheads = [r["overhead"] for r in rows]
    return ExperimentTable(
        experiment_id="E9",
        title="Theorem 19 — General EID: guess-and-double + termination check",
        columns=[
            "graph",
            "seed",
            "D",
            "final_k",
            "eid(D)_rounds",
            "general_rounds",
            "overhead",
            "complete_at",
            "detect_lag",
        ],
        rows=rows,
        expectation=(
            "no premature termination (complete_at <= general_rounds, "
            "detect_lag >= 0); verdicts unanimous (enforced inside "
            "run_general_eid); bounded overhead vs known-D EID — note the "
            "check may legitimately pass at k < D when dissemination "
            "already completed through low-latency edges"
        ),
        conclusion=f"overhead range [{min(overheads):.1f}, {max(overheads):.1f}]x",
    )
