"""E7: Baswana--Sen spanner quality (Lemma 13 / Theorem 14).

Claims audited:

* the spanner has ``O(n log n)`` edges for ``k = log₂ n``;
* the computed orientation gives every node out-degree ``O(log n)``;
* the (undirected, weighted) stretch is at most ``2k - 1``;
* with only an estimate ``n̂ = n^c``, the out-degree degrades gracefully to
  ``O(n^{c/k} log n)`` (Lemma 13) — we compare ``n̂ = n`` against
  ``n̂ = n²``.
"""

from __future__ import annotations

import functools
import math
import random
import statistics

from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.experiments import artifacts
from repro.experiments.harness import (
    ExperimentTable,
    Profile,
    map_trials,
    register,
    seeds_for,
)

__all__ = ["run_e7"]


def _spanner_trial(n: int, k: int, seed: int) -> tuple[int, int, float, int]:
    """One seed-ladder trial: (edges, max out-degree, stretch, out-degree @ n̂=n²)."""
    rng = random.Random(seed)
    graph = artifacts.cached_graph(
        ("random_regular", n, 8, "uniform1-10", seed),
        lambda: generators.random_regular(
            n, 8, latency_model=uniform_latency(1, 10), rng=rng
        ),
    )
    spanner = artifacts.cached_spanner(graph, k, seed + 1)
    stretch = spanner.measured_stretch(num_pairs=10, rng=random.Random(seed + 2))
    loose = artifacts.cached_spanner(graph, k, seed + 1, n_hat=n * n)
    return spanner.num_edges, spanner.max_out_degree(), stretch, loose.max_out_degree()


@register("E7")
def run_e7(profile: Profile = "quick") -> ExperimentTable:
    """Lemma 13: spanner size, out-degree, stretch, and the n̂ penalty."""
    sizes = [32, 64, 128] if profile == "quick" else [32, 64, 128, 256, 512]
    seeds = seeds_for(profile, quick=3, full=8)
    rows = []
    for n in sizes:
        k = max(2, math.ceil(math.log2(n)))
        trials = map_trials(functools.partial(_spanner_trial, n, k), seeds)
        edge_counts, out_degrees, stretches, out_degrees_sq = map(list, zip(*trials))
        stretch = max(stretches)
        rows.append(
            {
                "n": n,
                "k": k,
                "edges": statistics.fmean(edge_counts),
                "edges/(n·log n)": statistics.fmean(edge_counts)
                / (n * math.log2(n)),
                "max_outdeg": statistics.fmean(out_degrees),
                "max_outdeg(n̂=n²)": statistics.fmean(out_degrees_sq),
                "stretch": stretch,
                "2k-1": 2 * k - 1,
                "stretch_ok": stretch <= 2 * k - 1,
            }
        )
    return ExperimentTable(
        experiment_id="E7",
        title="Lemma 13 / Theorem 14 — directed Baswana--Sen spanner quality",
        columns=[
            "n",
            "k",
            "edges",
            "edges/(n·log n)",
            "max_outdeg",
            "max_outdeg(n̂=n²)",
            "stretch",
            "2k-1",
            "stretch_ok",
        ],
        rows=rows,
        expectation=(
            "edges/(n log n) bounded; out-degree O(log n), slightly larger "
            "with n̂ = n²; measured stretch never exceeds 2k-1"
        ),
        conclusion="stretch bound held on every sampled instance"
        if all(r["stretch_ok"] for r in rows)
        else "STRETCH BOUND VIOLATED",
    )
