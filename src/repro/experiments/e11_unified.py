"""E11: the unified upper bound and latency discovery (Theorem 20, Sec. 4.2).

Theorem 20 composes push--pull with the spanner pipeline so the system
always lands within polylogs of ``min((D+Δ) log³ n, (ℓ*/φ*) log n)``.  Two
things are checked, carefully separated:

* **the analytic crossover** — we build one graph per regime and evaluate
  both branch *bounds*: on the low-conductance family the spanner branch
  ``(D+Δ) log³ n`` is smaller, on the well-connected family the push--pull
  branch ``(ℓ*/φ*) log n`` is smaller.  This is the min() the theorem is
  about, and it must flip between regimes.
* **measured behaviour** — we also run both components.  At laptop scale
  (n of a few hundred) the spanner pipeline's log³ n constant is hundreds
  of rounds, so push--pull usually finishes first in *raw measured rounds*
  even where its asymptotic bound is worse; the composition still tracks
  whichever component actually finished first (within its 2x interleaving
  cost).  The table reports both so the constant-versus-asymptotic gap is
  visible rather than hidden.
"""

from __future__ import annotations

import random

from repro.analysis.bounds import compute_bounds
from repro.graphs import generators
from repro.graphs.latency_models import bimodal_latency
from repro.protocols.unified import run_unified
from repro.experiments.harness import ExperimentTable, Profile, map_trials, register

__all__ = ["run_e11"]


def _regime_rows(spec: tuple) -> list[dict]:
    """One regime trial (module-level so it pickles for REPRO_JOBS)."""
    label, expected_branch, graph = spec
    bounds = compute_bounds(graph, conductance_method="sweep")
    spanner_bound = (bounds.diameter + bounds.max_degree) * bounds.log_n**3
    pushpull_bound = bounds.push_pull_bound
    analytic_winner = "spanner" if spanner_bound < pushpull_bound else "push-pull"
    rows = []
    for known in (True, False):
        report = run_unified(graph, latencies_known=known, seed=0)
        rows.append(
            {
                "regime": label,
                "latencies_known": known,
                "bound_spanner": spanner_bound
                if not known
                else bounds.diameter * bounds.log_n**3,
                "bound_pushpull": pushpull_bound,
                "analytic_winner": analytic_winner,
                "expected": expected_branch,
                "analytic_matches": analytic_winner == expected_branch,
                "measured_pushpull": report.push_pull_rounds,
                "measured_spanner": report.spanner_rounds,
                "measured_winner": report.winner,
                "unified_rounds": report.rounds,
            }
        )
    return rows


def _regimes(profile: Profile):
    clique = 48 if profile == "quick" else 96
    expander_n = 48 if profile == "quick" else 128
    # Low weighted conductance: two big cliques over one direct edge.
    # ℓ*/φ* = Θ(n²) while D = 3 and Δ = Θ(n): the spanner branch's
    # (D+Δ)·log³n is smaller once the clique side beats log²n.
    yield (
        "dumbbell of big cliques (low φ*)",
        "spanner",
        generators.dumbbell(clique, bridge_length=1),
    )
    # Constant conductance over the fast backbone: push--pull branch smaller.
    yield (
        "bimodal expander (high φ*)",
        "push-pull",
        generators.random_regular(
            expander_n,
            6,
            latency_model=bimodal_latency(1, 40, 0.5),
            rng=random.Random(2),
        ),
    )


@register("E11")
def run_e11(profile: Profile = "quick") -> ExperimentTable:
    """Theorem 20: the min() branch flips between regimes."""
    rows = [
        row
        for regime_rows in map_trials(_regime_rows, _regimes(profile))
        for row in regime_rows
    ]
    flips = all(r["analytic_matches"] for r in rows)
    return ExperimentTable(
        experiment_id="E11",
        title="Theorem 20 — unified bound: min((D+Δ)log³n, (ℓ*/φ*)log n) flips by regime",
        columns=[
            "regime",
            "latencies_known",
            "bound_spanner",
            "bound_pushpull",
            "analytic_winner",
            "expected",
            "analytic_matches",
            "measured_pushpull",
            "measured_spanner",
            "measured_winner",
            "unified_rounds",
        ],
        rows=rows,
        expectation=(
            "the analytic min() branch flips between the low-φ* and high-φ* "
            "regimes; measured times show the composition tracking its "
            "faster component (push--pull's small constants usually win raw "
            "rounds at these n — the spanner branch's advantage is "
            "asymptotic, kicking in once ℓ*/φ* ≳ D·log² n)"
        ),
        conclusion=(
            "analytic crossover flipped between regimes as predicted"
            if flips
            else "ANALYTIC CROSSOVER DID NOT FLIP"
        ),
    )
