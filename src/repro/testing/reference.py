"""A deliberately naive reference implementation of the gossip model.

:class:`ReferenceEngine` re-implements the communication model of
``docs/MODEL.md`` from scratch with the dumbest data structures that can
possibly work: in-flight exchanges live in a plain list that is re-scanned
and re-sorted every round (``O(n·m)`` per round, no heap, no incremental
bookkeeping).  It exists purely as a *differential-testing oracle*: the
production :class:`~repro.sim.engine.Engine` and this class are two
independent realizations of the same spec, so any disagreement in rounds,
knowledge, or metrics on the same protocol and seed is a bug in one of
them.  Keep it slow and obvious — its only job is to be correct for small
inputs, and every performance refactor of the real engine is verified
against it (see ``tests/test_differential.py`` and ``repro check``).

It mirrors the :class:`~repro.sim.engine.Engine` surface that protocols
and runners touch (``step``/``run``/``round``/``state``/``metrics``/
``all_done``/``protocol``/``last_initiations``), reusing the real
:class:`~repro.sim.engine.NodeContext` and :class:`Delivery` types so any
:class:`~repro.sim.engine.NodeProtocol` runs unmodified on either engine.
Invariant checkers are *not* supported here — the reference engine is the
thing checkers are cross-validated against, not a consumer of them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Delivery, NodeContext, NodeProtocol, ProtocolFactory
from repro.sim.failures import FailureModel
from repro.sim.metrics import EngineMetrics
from repro.sim.state import NetworkState, Note, Payload

__all__ = ["ReferenceEngine", "ReferenceNetworkState"]

_EMPTY_PAYLOAD = Payload(rumors=frozenset(), notes=())


class ReferenceNetworkState:
    """The original hash-set-backed :class:`~repro.sim.state.NetworkState`.

    One plain ``set`` per node, no interning, no caches: this is the
    pre-optimization data layout, preserved verbatim as the oracle the
    bitset-backed production state is checked against (see
    ``tests/test_state_equivalence.py`` and the differential suites).  It
    mirrors the full ``NetworkState`` API and ships interchangeable
    :class:`~repro.sim.state.Payload` objects, so either state backend can
    drive either engine.
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._rumors: dict[Node, set] = {node: set() for node in nodes}
        self._notes: dict[Node, dict[Node, Note]] = {node: {} for node in self._rumors}

    def nodes(self) -> list[Node]:
        return list(self._rumors)

    # -- rumors ---------------------------------------------------------
    def add_rumor(self, node: Node, rumor: Any) -> None:
        self._rumors[node].add(rumor)

    def seed_self_rumors(self) -> None:
        for node in self._rumors:
            self._rumors[node].add(node)

    def rumors(self, node: Node) -> frozenset:
        return frozenset(self._rumors[node])

    def rumor_count(self, node: Node) -> int:
        return len(self._rumors[node])

    def knows(self, node: Node, rumor: Any) -> bool:
        return rumor in self._rumors[node]

    def count_knowing(self, rumor: Any) -> int:
        return sum(1 for rumors in self._rumors.values() if rumor in rumors)

    # -- notes ----------------------------------------------------------
    def publish_note(self, origin: Node, **data: Any) -> None:
        old = self._notes[origin].get(origin)
        version = (old.version + 1) if old is not None else 1
        self._notes[origin][origin] = Note(
            version=version, data=tuple(sorted(data.items()))
        )

    def note_of(self, reader: Node, origin: Node) -> Optional[Note]:
        return self._notes[reader].get(origin)

    def known_note_origins(self, reader: Node) -> list[Node]:
        return list(self._notes[reader])

    def clear_notes(self) -> None:
        for board in self._notes.values():
            board.clear()

    # -- exchange plumbing ----------------------------------------------
    def snapshot(self, node: Node) -> Payload:
        return Payload(
            rumors=frozenset(self._rumors[node]),
            notes=tuple(self._notes[node].items()),
        )

    def merge(self, node: Node, payload: Payload) -> bool:
        changed = False
        before = len(self._rumors[node])
        self._rumors[node] |= payload.rumors
        if len(self._rumors[node]) != before:
            changed = True
        board = self._notes[node]
        for origin, note in payload.notes:
            current = board.get(origin)
            if current is None or note.version > current.version:
                board[origin] = note
                changed = True
        return changed


class _PendingExchange:
    """One in-flight exchange, stored as a dumb record (no ordering tricks)."""

    def __init__(
        self,
        sequence: int,
        initiator: Node,
        responder: Node,
        initiated_at: int,
        delivers_at: int,
        initiator_payload: Payload,
        responder_payload: Payload,
        ping_only: bool,
    ) -> None:
        self.sequence = sequence
        self.initiator = initiator
        self.responder = responder
        self.initiated_at = initiated_at
        self.delivers_at = delivers_at
        self.initiator_payload = initiator_payload
        self.responder_payload = responder_payload
        self.ping_only = ping_only


class ReferenceEngine:
    """Naive drop-in replacement for :class:`~repro.sim.engine.Engine`.

    Accepts the same constructor arguments (minus ``checkers``) and
    produces — by design — bit-identical rounds, knowledge, and
    :class:`~repro.sim.metrics.EngineMetrics` for any deterministic
    protocol.  See the module docstring for why it stays naive.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        protocol_factory: ProtocolFactory,
        state: Optional["NetworkState | ReferenceNetworkState"] = None,
        latencies_known: bool = False,
        fresh_snapshots: bool = False,
        failure_model: Optional[FailureModel] = None,
        max_incoming_per_round: Optional[int] = None,
        enforce_blocking: bool = False,
    ) -> None:
        if max_incoming_per_round is not None and max_incoming_per_round < 1:
            raise SimulationError(
                f"max_incoming_per_round must be >= 1, got {max_incoming_per_round}"
            )
        self.graph = graph
        self.state = state if state is not None else ReferenceNetworkState(graph.nodes())
        self.latencies_known = latencies_known
        self.fresh_snapshots = fresh_snapshots
        self.failure_model = failure_model
        self.max_incoming_per_round = max_incoming_per_round
        self.enforce_blocking = enforce_blocking
        self.round = 0
        self.metrics = EngineMetrics()
        if enforce_blocking:
            # Mirror the production engine: tracked-but-clean is 0, "never
            # tracked" stays None (run_differential compares full metrics).
            self.metrics.blocked_initiations = 0
        self.last_initiations: list[tuple[Node, Node]] = []
        self._sequence = 0
        self._pending: list[_PendingExchange] = []
        self._protocols: dict[Node, NodeProtocol] = {}
        self._contexts: dict[Node, NodeContext] = {}
        for node in graph.nodes():
            self._protocols[node] = protocol_factory(node)
            self._contexts[node] = NodeContext(self, node)  # duck-typed engine
        for node in graph.nodes():
            self._protocols[node].setup(self._contexts[node])

    # ------------------------------------------------------------------
    def protocol(self, node: Node) -> NodeProtocol:
        """The protocol instance for ``node`` (for post-run inspection)."""
        return self._protocols[node]

    def all_done(self) -> bool:
        """Whether every non-crashed node's protocol reports termination."""
        for node in self.graph.nodes():
            if self._crashed(node):
                continue
            if not self._protocols[node].is_done(self._contexts[node]):
                return False
        return True

    def pending_exchanges(self) -> int:
        """Number of exchanges still in flight."""
        return len(self._pending)

    def finish_checks(self) -> None:
        """No-op: the reference engine carries no invariant checkers."""

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One round, by the book: deliver everything due, then ask everyone."""
        self.last_initiations = []
        self._deliver_due()
        accepted_incoming: dict[Node, int] = {}
        for node in self.graph.nodes():
            if self._crashed(node):
                continue
            protocol = self._protocols[node]
            ctx = self._contexts[node]
            if protocol.is_done(ctx):
                continue
            target = protocol.on_round(ctx)
            if target is None:
                continue
            if not self.graph.has_edge(node, target):
                raise ProtocolError(
                    f"node {node!r} tried to contact non-neighbor {target!r}"
                )
            if self.max_incoming_per_round is not None:
                if accepted_incoming.get(target, 0) >= self.max_incoming_per_round:
                    self.metrics.rejected_initiations += 1
                    continue
                accepted_incoming[target] = accepted_incoming.get(target, 0) + 1
            self._initiate(node, target)
        self.round += 1
        self.metrics.rounds = self.round

    def run(
        self,
        until: Optional[Callable[["ReferenceEngine"], bool]] = None,
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run until ``until(engine)`` (default: every protocol done)."""
        predicate = until if until is not None else (lambda engine: engine.all_done())
        while not predicate(self):
            if self.round >= max_rounds:
                raise SimulationError(
                    f"reference simulation exceeded max_rounds={max_rounds} "
                    f"(round={self.round}, pending={len(self._pending)})"
                )
            self.step()
        return self.round

    # ------------------------------------------------------------------
    def _crashed(self, node: Node) -> bool:
        return self.failure_model is not None and self.failure_model.node_crashed(
            node, self.round
        )

    def _initiate(self, initiator: Node, responder: Node) -> None:
        latency = self.graph.latency(initiator, responder)
        if self.enforce_blocking and any(
            exchange.initiator == initiator for exchange in self._pending
        ):
            self.metrics.blocked_initiations += 1
            raise ProtocolError(
                f"blocking violation: node {initiator!r} initiated while a "
                "previous exchange of its own is still in flight"
            )
        if self.failure_model is not None and self.failure_model.exchange_lost(
            initiator, responder, self.round
        ):
            self.metrics.lost_exchanges += 1
            return
        self._sequence += 1
        ping_only = not getattr(self._protocols[initiator], "sends_payload", True)
        if ping_only or self.fresh_snapshots:
            initiator_payload = responder_payload = _EMPTY_PAYLOAD
        else:
            initiator_payload = self.state.snapshot(initiator)
            responder_payload = self.state.snapshot(responder)
        self._pending.append(
            _PendingExchange(
                sequence=self._sequence,
                initiator=initiator,
                responder=responder,
                initiated_at=self.round,
                delivers_at=self.round + latency,
                initiator_payload=initiator_payload,
                responder_payload=responder_payload,
                ping_only=ping_only,
            )
        )
        self.last_initiations.append((initiator, responder))
        if not self.fresh_snapshots:
            self._account_payloads(initiator_payload, responder_payload)
        self.metrics.exchanges += 1
        self.metrics.messages += 2
        self.metrics.activated_edges.add(self.graph.canonical_edge(initiator, responder))

    def _account_payloads(
        self, initiator_payload: Payload, responder_payload: Payload
    ) -> None:
        self.metrics.rumor_tokens_sent += (
            initiator_payload.rumor_count + responder_payload.rumor_count
        )
        self.metrics.max_payload_rumors = max(
            self.metrics.max_payload_rumors,
            initiator_payload.rumor_count,
            responder_payload.rumor_count,
        )

    def _deliver_due(self) -> None:
        # Full scan of everything in flight, every round; deliver in the
        # same (delivers_at, sequence) order the production engine's heap
        # pops so callback order is comparable too.
        due = sorted(
            (x for x in self._pending if x.delivers_at <= self.round),
            key=lambda x: (x.delivers_at, x.sequence),
        )
        if not due:
            return
        due_sequences = {x.sequence for x in due}
        self._pending = [x for x in self._pending if x.sequence not in due_sequences]
        for exchange in due:
            initiator_alive = not self._crashed(exchange.initiator)
            if self._crashed(exchange.responder):
                self.metrics.lost_exchanges += 1
                continue
            if exchange.ping_only:
                initiator_payload = responder_payload = _EMPTY_PAYLOAD
            elif self.fresh_snapshots:
                initiator_payload = self.state.snapshot(exchange.initiator)
                responder_payload = self.state.snapshot(exchange.responder)
                self._account_payloads(initiator_payload, responder_payload)
            else:
                initiator_payload = exchange.initiator_payload
                responder_payload = exchange.responder_payload
            self.state.merge(exchange.responder, initiator_payload)
            if initiator_alive:
                self.state.merge(exchange.initiator, responder_payload)
            endpoints = [(exchange.responder, False)]
            if initiator_alive:
                endpoints.insert(0, (exchange.initiator, True))
            for node, by_me in endpoints:
                peer = exchange.responder if by_me else exchange.initiator
                self._protocols[node].on_deliver(
                    self._contexts[node],
                    Delivery(
                        peer=peer,
                        initiated_at=exchange.initiated_at,
                        delivered_at=self.round,
                        initiated_by_me=by_me,
                    ),
                )
