"""Differential testing: run one protocol on both engines, compare everything.

The production :class:`~repro.sim.engine.Engine` and the naive
:class:`~repro.testing.reference.ReferenceEngine` realize the same model
independently.  :func:`run_differential` drives both in **lockstep** over
the same graph with freshly built (hence identically seeded) protocol
instances, comparing per-node rumor sets after every round, and reports
the first divergence — so an engine bug is localized to the exact round it
first changed observable knowledge, not just to a final mismatch.

``make_factory``/``make_state`` are zero-argument builders called once per
engine: protocol instances and network states are stateful, so each engine
needs its own copies, constructed identically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Engine, ProtocolFactory
from repro.sim.state import NetworkState
from repro.testing.reference import ReferenceEngine

__all__ = ["DifferentialReport", "run_differential", "assert_engines_agree"]


@dataclasses.dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one lockstep differential run.

    Attributes
    ----------
    rounds, reference_rounds:
        Completion round of each engine (``None`` when the run was cut off
        by ``max_rounds`` before that engine completed).
    mismatches:
        Human-readable divergence descriptions, earliest first; empty means
        the engines agreed on every compared observable.
    """

    rounds: Optional[int]
    reference_rounds: Optional[int]
    mismatches: tuple[str, ...]

    @property
    def equivalent(self) -> bool:
        """Whether the two engines agreed on everything compared."""
        return not self.mismatches


def _knowledge_mismatches(
    graph: LatencyGraph, round_number: int, state: NetworkState, reference: NetworkState
) -> list[str]:
    out = []
    for node in graph.nodes():
        mine, theirs = state.rumors(node), reference.rumors(node)
        if mine != theirs:
            extra = sorted(mine - theirs, key=repr)
            missing = sorted(theirs - mine, key=repr)
            out.append(
                f"round {round_number}: node {node!r} knowledge diverged "
                f"(engine-only {extra[:3]!r}, reference-only {missing[:3]!r})"
            )
    return out


def run_differential(
    graph: LatencyGraph,
    make_factory: Callable[[], ProtocolFactory],
    make_state: Optional[Callable[[], NetworkState]] = None,
    make_reference_state: Optional[Callable[[], NetworkState]] = None,
    predicate: Optional[Callable] = None,
    latencies_known: bool = False,
    fresh_snapshots: bool = False,
    make_failure_model: Optional[Callable] = None,
    max_incoming_per_round: Optional[int] = None,
    max_rounds: int = 100_000,
    engine_cls: Callable = Engine,
    reference_cls: Callable = ReferenceEngine,
    backend: Optional[str] = None,
) -> DifferentialReport:
    """Run both engines in lockstep and compare knowledge, rounds, metrics.

    Parameters
    ----------
    graph:
        The network, shared by both engines (it is never mutated).
    make_factory:
        Zero-argument builder returning a fresh protocol factory; called
        once per engine so the two runs start from identical protocol
        state and RNG streams.
    make_state:
        Optional zero-argument builder for the initial
        :class:`NetworkState` (e.g. seeding the source rumor); called once
        per engine.  Defaults to each engine's own default state, which
        cross-tests the bitset-backed production state against the
        set-backed reference state for free.
    make_reference_state:
        Optional separate state builder for the reference engine; defaults
        to ``make_state``.  Pass distinct builders to pit the two state
        backends against each other on a seeded initial state.
    predicate:
        Completion condition evaluated against each engine (e.g.
        ``broadcast_complete(rumor)``).  Defaults to ``all_done()``.
    make_failure_model:
        Optional zero-argument builder for a
        :class:`~repro.sim.failures.FailureModel`; called once per engine
        (models may hold RNG state, so each engine needs its own copy).
    max_incoming_per_round:
        Responder-capacity cap forwarded to both engines.
    max_rounds:
        Lockstep budget; engines still incomplete at the budget get
        ``None`` as their completion round (reported as a mismatch only if
        the two disagree).
    engine_cls, reference_cls:
        The two implementations to compare (overridable so the suite can
        prove a deliberately broken engine *is* caught).
    backend:
        Engine-backend name for the candidate side; overrides
        ``engine_cls`` via :func:`~repro.sim.vector.resolve_engine_backend`
        (e.g. ``backend="vector"`` pits the array backend against the
        reference oracle).
    """
    if backend is not None:
        from repro.sim.vector import resolve_engine_backend

        engine_cls = resolve_engine_backend(backend)
    if make_reference_state is None:
        make_reference_state = make_state
    engines = []
    for cls, build_state in ((engine_cls, make_state), (reference_cls, make_reference_state)):
        engines.append(
            cls(
                graph,
                make_factory(),
                state=build_state() if build_state is not None else None,
                latencies_known=latencies_known,
                fresh_snapshots=fresh_snapshots,
                failure_model=make_failure_model() if make_failure_model is not None else None,
                max_incoming_per_round=max_incoming_per_round,
            )
        )
    engine, reference = engines

    def is_complete(candidate) -> bool:
        if predicate is not None:
            return bool(predicate(candidate))
        return candidate.all_done()

    completed: list[Optional[int]] = [None, None]
    mismatches: list[str] = []
    for round_number in range(max_rounds + 1):
        for i, candidate in enumerate(engines):
            if completed[i] is None and is_complete(candidate):
                completed[i] = candidate.round
        if all(done is not None for done in completed):
            break
        diverged = _knowledge_mismatches(
            graph, round_number, engine.state, reference.state
        )
        if diverged:
            mismatches.extend(diverged)
            break
        # Step only engines that have not completed: a completed engine's
        # protocols may keep exchanging (push--pull never stops on its
        # own), which is irrelevant to the quantities being compared.
        for i, candidate in enumerate(engines):
            if completed[i] is None:
                candidate.step()

    if completed[0] != completed[1]:
        mismatches.append(
            f"completion rounds diverged: engine={completed[0]} "
            f"reference={completed[1]}"
        )
    if not mismatches:
        mismatches.extend(
            _knowledge_mismatches(graph, engine.round, engine.state, reference.state)
        )
        if engine.metrics != reference.metrics:
            mismatches.append(
                f"metrics diverged: engine={engine.metrics} "
                f"reference={reference.metrics}"
            )
    return DifferentialReport(
        rounds=completed[0],
        reference_rounds=completed[1],
        mismatches=tuple(mismatches),
    )


def assert_engines_agree(report: DifferentialReport) -> DifferentialReport:
    """Raise :class:`SimulationError` if a differential run diverged."""
    if not report.equivalent:
        raise SimulationError(
            "Engine and ReferenceEngine diverged:\n  "
            + "\n  ".join(report.mismatches)
        )
    return report
