"""Trace replay: the determinism oracle.

A :class:`~repro.sim.trace.TraceRecorder` captures *what* a run did (who
initiated toward whom, each round).  :func:`replay` re-executes exactly
that initiation schedule on a fresh engine — no protocol logic, no RNG —
and asserts the re-run produces the identical event stream and (optionally)
bit-identical :class:`~repro.sim.metrics.EngineMetrics`.  Because the
engine is supposed to be a deterministic function of the initiation
schedule and the initial state, any divergence means hidden
nondeterminism or order-dependence crept into the engine — the class of
bug that silently invalidates every seed-averaged experiment table.

:func:`record_and_replay` packages the full oracle: run a protocol once
(recorded), replay the trace, compare.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.sim.engine import Engine, NodeContext, NodeProtocol, ProtocolFactory
from repro.sim.metrics import EngineMetrics
from repro.sim.state import NetworkState
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = ["ReplayReport", "ScheduledProtocol", "replay", "record_and_replay"]


class ScheduledProtocol(NodeProtocol):
    """Replays one node's recorded initiations verbatim, round by round."""

    def __init__(self, schedule: dict[int, Node], sends_payload: bool = True) -> None:
        self._schedule = schedule
        self.sends_payload = sends_payload

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        return self._schedule.get(ctx.round)


@dataclasses.dataclass(frozen=True)
class ReplayReport:
    """Outcome of a replay: the re-run's metrics and event stream."""

    rounds: int
    metrics: EngineMetrics
    events: tuple[TraceEvent, ...]


def _schedules(events: list[TraceEvent]) -> dict[Node, dict[int, Node]]:
    schedules: dict[Node, dict[int, Node]] = {}
    for event in events:
        if event.kind != "initiate":
            continue
        per_round = schedules.setdefault(event.node, {})
        if event.round in per_round:
            raise SimulationError(
                f"trace has two initiations by {event.node!r} in round "
                f"{event.round}; cannot replay an invalid trace"
            )
        per_round[event.round] = event.peer
    return schedules


def replay(
    recorder: TraceRecorder,
    graph: LatencyGraph,
    rounds: int,
    state: Optional[NetworkState] = None,
    latencies_known: bool = False,
    fresh_snapshots: bool = False,
    sends_payload: bool = True,
    expected_metrics: Optional[EngineMetrics] = None,
) -> ReplayReport:
    """Re-execute a recorded trace and assert the engine reproduces it.

    Parameters
    ----------
    recorder:
        The recorded trace of the original run.
    graph:
        The same network the original run used.
    rounds:
        How many rounds the original run executed (replay runs exactly as
        many).
    state:
        Initial knowledge, seeded exactly as the original run seeded it.
    sends_payload:
        Whether the original protocol shipped payloads (``False`` for
        ping-only phases such as latency discovery).
    expected_metrics:
        When given, the replayed engine's metrics must equal these
        bit-for-bit.

    Raises
    ------
    SimulationError
        If the replayed event stream or metrics differ from the recording
        — i.e. the engine is not a deterministic function of the schedule.
    """
    schedules = _schedules(recorder.events)
    check = TraceRecorder()
    engine = Engine(
        graph,
        check.wrap(
            lambda node: ScheduledProtocol(
                schedules.get(node, {}), sends_payload=sends_payload
            )
        ),
        state=state,
        latencies_known=latencies_known,
        fresh_snapshots=fresh_snapshots,
    )
    for _ in range(rounds):
        engine.step()
    if check.events != recorder.events:
        for original, replayed in zip(recorder.events, check.events):
            if original != replayed:
                raise SimulationError(
                    f"replay diverged: recorded {original} but replayed "
                    f"{replayed}"
                )
        raise SimulationError(
            f"replay diverged: {len(recorder.events)} recorded events vs "
            f"{len(check.events)} replayed"
        )
    if expected_metrics is not None and engine.metrics != expected_metrics:
        raise SimulationError(
            f"replay metrics diverged:\n  recorded {expected_metrics}\n  "
            f"replayed {engine.metrics}"
        )
    return ReplayReport(
        rounds=engine.round,
        metrics=engine.metrics,
        events=tuple(check.events),
    )


def record_and_replay(
    graph: LatencyGraph,
    make_factory: Callable[[], ProtocolFactory],
    make_state: Optional[Callable[[], NetworkState]] = None,
    predicate: Optional[Callable[[Engine], bool]] = None,
    latencies_known: bool = False,
    fresh_snapshots: bool = False,
    max_rounds: int = 100_000,
) -> ReplayReport:
    """Run a protocol once, then replay its trace: the one-call oracle.

    The protocol run is driven until ``predicate`` (default: every node
    done); the recorded schedule is then re-executed from an identically
    built initial state and must reproduce the exact event stream and
    metrics.
    """
    recorder = TraceRecorder()
    state = make_state() if make_state is not None else NetworkState(graph.nodes())
    engine = Engine(
        graph,
        recorder.wrap(make_factory()),
        state=state,
        latencies_known=latencies_known,
        fresh_snapshots=fresh_snapshots,
    )
    predicate = predicate if predicate is not None else (lambda e: e.all_done())
    while not predicate(engine):
        if engine.round >= max_rounds:
            raise SimulationError(
                f"record_and_replay exceeded max_rounds={max_rounds}"
            )
        engine.step()
    replay_state = (
        make_state() if make_state is not None else NetworkState(graph.nodes())
    )
    return replay(
        recorder,
        graph,
        rounds=engine.round,
        state=replay_state,
        latencies_known=latencies_known,
        fresh_snapshots=fresh_snapshots,
        expected_metrics=engine.metrics,
    )
