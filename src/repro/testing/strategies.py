"""Shared Hypothesis strategies for randomized engine/protocol testing.

Centralizes the graph/seed/latency-model generators that the property
suites (``tests/test_properties.py``, ``tests/test_differential.py``) and
any future fuzzing harness draw from, so every randomized test explores
the same well-shaped input space: connected weighted graphs built as a
random spanning tree plus extra edges, integer latencies drawn from one
of the paper's latency models, and plain integer seeds.

Importing this module requires ``hypothesis``; the package ``__init__``
gates the import so the rest of :mod:`repro.testing` (reference engine,
differential runner, replay) works without it.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.graphs.latency_graph import LatencyGraph
from repro.graphs.latency_models import (
    LatencyModel,
    bimodal_latency,
    constant_latency,
    uniform_latency,
    zipf_latency,
)
from repro.sim.failures import CrashSchedule

__all__ = [
    "seeds",
    "latency_models",
    "connected_latency_graphs",
    "large_dense_graphs",
    "crash_schedules",
    "engine_configs",
    "state_layouts",
    "sweep_recipes",
    "fault_points",
    "trial_plans",
]


def seeds(max_seed: int = 10_000) -> st.SearchStrategy[int]:
    """Plain integer RNG seeds, shrinking toward 0."""
    return st.integers(min_value=0, max_value=max_seed)


@st.composite
def latency_models(draw, max_latency: int = 8) -> LatencyModel:
    """One of the paper's latency models, with drawn parameters.

    Covers the unweighted baseline (constant 1), uniformly random integer
    latencies, the lower-bound gadgets' bimodal fast/slow mix, and the
    heavy-tailed Zipf model.
    """
    kind = draw(st.sampled_from(["constant", "uniform", "bimodal", "zipf"]))
    if kind == "constant":
        return constant_latency(draw(st.integers(min_value=1, max_value=max_latency)))
    if kind == "uniform":
        low = draw(st.integers(min_value=1, max_value=max_latency))
        high = draw(st.integers(min_value=low, max_value=max_latency))
        return uniform_latency(low, high)
    if kind == "bimodal":
        fast = draw(st.integers(min_value=1, max_value=max(1, max_latency // 2)))
        slow = draw(st.integers(min_value=fast, max_value=max_latency))
        probability = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        return bimodal_latency(fast, slow, probability)
    return zipf_latency(max_latency)


@st.composite
def connected_latency_graphs(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 10,
    max_latency: int = 8,
    latency_model: LatencyModel = None,
    density: float = None,
) -> LatencyGraph:
    """A connected :class:`LatencyGraph`: random spanning tree + extra edges.

    Latencies come from ``latency_model`` when given, otherwise from a
    freshly drawn :func:`latency_models` instance — so by default the
    strategy also varies the latency *distribution*, not just the wiring.

    ``density`` (a fraction of the ``n·(n-1)/2`` possible edges) pins the
    extra-edge budget for denser graphs; by default the strategy draws a
    sparse budget of up to ``2n`` extras.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(seeds())
    model = (
        latency_model
        if latency_model is not None
        else draw(latency_models(max_latency=max_latency))
    )
    rng = random.Random(seed)
    graph = LatencyGraph(nodes=range(n))
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        parent = order[rng.randrange(i)]
        graph.add_edge(order[i], parent, model(order[i], parent, rng))
    if density is None:
        extra = draw(st.integers(min_value=0, max_value=2 * n))
    else:
        cap = max(0, int(density * n * (n - 1) / 2))
        extra = draw(st.integers(min_value=cap // 2, max_value=cap))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, model(u, v, rng))
    return graph


def large_dense_graphs(
    min_nodes: int = 20, max_nodes: int = 40, max_latency: int = 8
) -> st.SearchStrategy[LatencyGraph]:
    """Larger, denser connected graphs for stressing the fast-path layout.

    Bitset masks, adjacency index arrays, and the delivery buckets all
    behave differently once node counts and degrees grow past toy sizes;
    the differential and equivalence suites draw from this strategy to
    cover that regime.
    """
    return connected_latency_graphs(
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        max_latency=max_latency,
        density=0.5,
    )


@st.composite
def crash_schedules(
    draw, nodes, max_round: int = 10, protect=()
) -> CrashSchedule:
    """A deterministic :class:`CrashSchedule` over a subset of ``nodes``.

    At least one node always survives, and nodes in ``protect`` (e.g. the
    broadcast source) are never crashed.
    """
    candidates = [node for node in nodes if node not in set(protect)]
    max_crashes = max(0, len(candidates) - (0 if protect else 1))
    victims = draw(
        st.lists(
            st.sampled_from(candidates) if candidates else st.nothing(),
            unique=True,
            max_size=max_crashes,
        )
        if candidates
        else st.just([])
    )
    rounds = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_round),
            min_size=len(victims),
            max_size=len(victims),
        )
    )
    return CrashSchedule(dict(zip(victims, rounds)))


def state_layouts() -> st.SearchStrategy[str]:
    """One of the vector backend's rumor-state layout names.

    Draws from :data:`repro.sim.vector.STATE_LAYOUTS` (``dense``,
    ``broadcast``, ``chunked``) so the layout differential matrix keeps
    covering every layout automatically as new ones are registered.
    """
    from repro.sim.vector import STATE_LAYOUTS

    return st.sampled_from(sorted(STATE_LAYOUTS))


@st.composite
def sweep_recipes(draw, experiment_ids=None):
    """A :class:`repro.experiments.sharding.SweepRecipe` over the registry.

    By default draws the experiment id from a fixed, registry-shaped pool
    (``E1``..``E16``) rather than importing every experiment module —
    fingerprint properties (determinism, sensitivity to each field) hold
    for any id string.  Pass ``experiment_ids`` to restrict to runnable
    experiments for end-to-end sweep properties.
    """
    from repro.experiments.sharding import SweepRecipe

    pool = (
        list(experiment_ids)
        if experiment_ids is not None
        else [f"E{index}" for index in range(1, 17)]
    )
    return SweepRecipe(
        experiment_id=draw(st.sampled_from(pool)),
        profile=draw(st.sampled_from(["quick", "full"])),
        checked=draw(st.booleans()),
        backend=draw(st.sampled_from([None, "scalar", "vector"])),
    )


@st.composite
def fault_points(draw, max_ordinal: int = 64) -> str:
    """A valid ``REPRO_FAULT_AT`` spec string.

    Spans the whole grammar: all four kinds, explicit and defaulted
    modes.  Feed to :func:`repro.experiments.sharding.parse_fault` or the
    :func:`~repro.experiments.sharding.fault_injection` scope.  ``exit``
    and ``kill`` modes are included — callers that can only survive
    ``raise`` (in-process suites) should pass the spec through
    ``parse_fault`` and filter on the mode, or draw with
    ``fault_points().filter(lambda s: s.endswith(':raise'))``.
    """
    kind = draw(st.sampled_from(["trial", "call", "merge", "final"]))
    parts = [kind]
    if kind in ("trial", "call"):
        parts.append(str(draw(st.integers(min_value=0, max_value=max_ordinal))))
    explicit_mode = draw(st.booleans())
    if explicit_mode:
        parts.append(draw(st.sampled_from(["raise", "exit", "kill"])))
    return ":".join(parts)


def trial_plans(
    max_calls: int = 6, max_call_size: int = 8
) -> st.SearchStrategy[list]:
    """Per-call trial counts shaped like a real sweep's ``map_trials`` calls.

    The raw input to :func:`repro.experiments.sharding.trial_plan` /
    :func:`~repro.experiments.sharding.shard_assignment` — a short list of
    small call sizes (including empty calls, which real experiments
    produce for degenerate parameter rungs).
    """
    return st.lists(
        st.integers(min_value=0, max_value=max_call_size),
        min_size=0,
        max_size=max_calls,
    )


@st.composite
def engine_configs(draw) -> dict:
    """Engine keyword arguments spanning the model variants.

    Draws ``fresh_snapshots`` (initiation-time vs delivery-time payload
    snapshots) and ``max_incoming_per_round`` (the restricted in-degree
    model of E16); pass the dict straight to ``Engine(**config)`` or
    ``run_differential``.
    """
    return {
        "fresh_snapshots": draw(st.booleans()),
        "max_incoming_per_round": draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=4))
        ),
    }
