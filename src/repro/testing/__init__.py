"""Differential-testing and determinism-oracle toolkit.

Three independent ways to catch engine bugs, built to be cheap to run
after any :mod:`repro.sim` refactor (and wired into ``repro check``):

* :class:`~repro.testing.reference.ReferenceEngine` — a naive O(n·m)
  re-implementation of the model, for differential testing via
  :func:`~repro.testing.differential.run_differential`;
* :func:`~repro.testing.replay.replay` /
  :func:`~repro.testing.replay.record_and_replay` — re-execute a recorded
  trace and demand bit-identical events and metrics (determinism oracle);
* :mod:`repro.testing.strategies` — shared Hypothesis strategies for
  random graphs, latency models and seeds (imported lazily: everything
  else here works without ``hypothesis`` installed).
"""

from repro.testing.differential import (
    DifferentialReport,
    assert_engines_agree,
    run_differential,
)
from repro.testing.reference import ReferenceEngine, ReferenceNetworkState
from repro.testing.replay import (
    ReplayReport,
    ScheduledProtocol,
    record_and_replay,
    replay,
)

from repro.experiments.sharding import fault_injection

try:  # pragma: no cover - exercised implicitly by environments without hypothesis
    from repro.testing.strategies import (
        connected_latency_graphs,
        crash_schedules,
        engine_configs,
        fault_points,
        large_dense_graphs,
        latency_models,
        seeds,
        state_layouts,
        sweep_recipes,
        trial_plans,
    )
except ImportError:  # hypothesis not installed; strategies stay unavailable
    connected_latency_graphs = None
    crash_schedules = None
    engine_configs = None
    fault_points = None
    large_dense_graphs = None
    latency_models = None
    seeds = None
    state_layouts = None
    sweep_recipes = None
    trial_plans = None

__all__ = [
    "DifferentialReport",
    "ReferenceEngine",
    "ReferenceNetworkState",
    "ReplayReport",
    "ScheduledProtocol",
    "assert_engines_agree",
    "connected_latency_graphs",
    "crash_schedules",
    "engine_configs",
    "fault_injection",
    "fault_points",
    "large_dense_graphs",
    "latency_models",
    "record_and_replay",
    "replay",
    "run_differential",
    "seeds",
    "state_layouts",
    "sweep_recipes",
    "trial_plans",
]
