"""The synchronous, non-blocking gossip engine (the paper's communication model).

Model recap (Section 1 of the paper):

* Time proceeds in synchronous **rounds**.
* In each round every node may **initiate** at most one exchange with one
  chosen neighbor.  Responding costs nothing and is automatic (push--pull).
* An exchange over an edge of latency ``ℓ`` initiated in round ``t``
  **delivers** at round ``t + ℓ``: both endpoints atomically merge the other
  endpoint's knowledge *as of round* ``t``.
* Communication is **non-blocking**: a node may initiate a new exchange every
  round even while earlier exchanges are still in flight.

Knowledge lives in a shared :class:`~repro.sim.state.NetworkState`; protocol
logic is supplied as one :class:`NodeProtocol` instance per node (see
:mod:`repro.sim.programs` for a sequential, generator-based way to write
them).  The engine is fully deterministic given the protocol's RNG seeds.
"""

from __future__ import annotations

import abc
import collections
import dataclasses
from typing import Callable, Optional, Sequence

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.events import (
    BlockedInitiationEvent,
    DeliveryEvent,
    InitiationEvent,
    RejectedInitiationEvent,
    RoundEvent,
    VoidExchangeEvent,
    WakeupEvent,
)
from repro.obs.recorder import Recorder
from repro.sim import invariants as _invariants
from repro.sim.failures import FailureModel
from repro.sim.invariants import DeliveryView, ExchangeView, InvariantChecker
from repro.sim.metrics import EngineMetrics
from repro.sim.state import NetworkState, Payload

__all__ = ["Delivery", "NodeContext", "NodeProtocol", "Engine"]

#: How many recent events the violation trace excerpt keeps.
_CHECKER_LOG_SIZE = 24


@dataclasses.dataclass(frozen=True)
class Delivery:
    """Completion record handed to both endpoints of an exchange.

    Attributes
    ----------
    peer:
        The other endpoint.
    initiated_at, delivered_at:
        Round numbers; ``delivered_at - initiated_at`` is the edge latency,
        which is how protocols *measure* latencies they do not know.
    initiated_by_me:
        Whether the receiving node was the initiator of this exchange.
    """

    peer: Node
    initiated_at: int
    delivered_at: int
    initiated_by_me: bool

    @property
    def measured_latency(self) -> int:
        """The edge latency, as observable by either endpoint."""
        return self.delivered_at - self.initiated_at


class NodeContext:
    """Per-node view of the network handed to protocol callbacks."""

    def __init__(self, engine: "Engine", node: Node) -> None:
        self._engine = engine
        self.node = node

    @property
    def round(self) -> int:
        """The current round number (starting at 0)."""
        return self._engine.round

    @property
    def state(self) -> NetworkState:
        """The shared network state (read/write your own node's entries only)."""
        return self._engine.state

    def neighbors(self) -> list[Node]:
        """Neighbors of this node."""
        return self._engine.graph.neighbors(self.node)

    def degree(self) -> int:
        """Degree of this node."""
        return self._engine.graph.degree(self.node)

    def latency_to(self, neighbor: Node) -> int:
        """Latency of the adjacent edge — only if latencies are known.

        Raises
        ------
        ProtocolError
            If the engine was built with ``latencies_known=False``; protocols
            for the unknown-latency model must measure instead (Section 4.2).
        """
        if not self._engine.latencies_known:
            raise ProtocolError(
                "edge latencies are unknown in this model; measure them via "
                "Delivery.measured_latency instead"
            )
        return self._engine.graph.latency(self.node, neighbor)

    def known_latencies(self) -> dict[Node, int]:
        """All adjacent latencies — only if latencies are known."""
        if not self._engine.latencies_known:
            raise ProtocolError("edge latencies are unknown in this model")
        return self._engine.graph.neighbor_latencies(self.node)


class NodeProtocol(abc.ABC):
    """Per-node protocol logic driven by the engine.

    Subclasses override :meth:`on_round` (and optionally :meth:`on_deliver`
    and :meth:`setup`).  A protocol signals completion by returning ``True``
    from :meth:`is_done`; done nodes stop initiating but keep responding.

    Class attribute ``sends_payload``: when ``False``, exchanges initiated
    by this protocol are pure request/ack pings — they measure latency but
    carry no knowledge in either direction.  The latency-discovery phase of
    Section 4.2 uses this: "broadcast a request ... wait for a response to
    determine the latency" is a probe, not a rumor exchange, and letting
    probes ship rumor sets over arbitrarily slow edges would let the
    termination check pass before the dissemination protocol proper could
    have delivered anything.

    Scheduling contract: once :meth:`is_done` returns ``True`` the engine
    parks the node and re-queries it only after one of the node's exchanges
    next delivers (i.e. after :meth:`on_deliver` ran).  Since a parked node
    neither acts nor observes anything except deliveries, this is invisible
    to any protocol whose done-ness depends on its own state and the
    deliveries it has seen — which is every protocol in this library —
    and it lets the engine skip finished nodes instead of scanning all
    ``n`` every round.
    """

    sends_payload: bool = True

    def setup(self, ctx: NodeContext) -> None:
        """Called once before round 0."""

    @abc.abstractmethod
    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        """Return the neighbor to contact this round, or ``None`` to stay idle."""

    def on_deliver(self, ctx: NodeContext, delivery: Delivery) -> None:
        """Called when an exchange involving this node delivers.

        The knowledge merge has already happened; this hook is for protocol
        bookkeeping (latency measurement, wake-ups, ...).
        """

    def is_done(self, ctx: NodeContext) -> bool:
        """Whether this node has locally terminated (default: never)."""
        return False


ProtocolFactory = Callable[[Node], NodeProtocol]

_EMPTY_PAYLOAD = Payload(rumors=frozenset(), notes=())


@dataclasses.dataclass(slots=True)
class _InFlight:
    delivers_at: int
    sequence: int
    initiator: Node
    responder: Node
    initiated_at: int
    initiator_payload: Payload
    responder_payload: Payload
    ping_only: bool = False


class Engine:
    """Drives one protocol over one graph, round by round.

    Parameters
    ----------
    graph:
        The network.
    protocol_factory:
        Called once per node to create its :class:`NodeProtocol`.
    state:
        Optional pre-seeded :class:`NetworkState` (used to chain protocol
        phases); a fresh empty one is created by default.
    latencies_known:
        Whether protocols may read adjacent latencies (Section 5 model)
        or must measure them (Sections 3--4 model).
    fresh_snapshots:
        Snapshot-semantics ablation.  ``False`` (default, the conservative
        reading of the paper's model): an exchange carries both endpoints'
        knowledge *as of initiation*.  ``True``: knowledge is read at
        delivery time instead — optimistic "state piggybacks on the wire"
        semantics.  Bounds hold for both; the ablation benchmark measures
        the constant-factor gap.
    failure_model:
        Optional :class:`~repro.sim.failures.FailureModel` injecting node
        crashes and message loss (the fault-tolerance extension the paper's
        conclusion calls for).
    max_incoming_per_round:
        Optional cap ``c`` on how many exchanges a node can *accept* as the
        responder in one round — the restricted bounded-in-degree model the
        conclusion points to (Daum et al.).  Initiations beyond the cap are
        rejected; the initiator's round is wasted.  ``None`` (the paper's
        main model) means unbounded.
    enforce_blocking:
        Appendix E claims its algorithm "works even when nodes cannot
        initiate a new exchange in every round, and wait till the
        acknowledgement of the previous message, i.e., communication is
        blocking."  With this flag the engine *verifies* such claims: a
        node initiating while one of its own initiations is still in
        flight raises :class:`~repro.errors.ProtocolError`.  Push--pull is
        expected to violate it; ℓ-DTG / T(k) / Path Discovery must not.
    checkers:
        Optional :class:`~repro.sim.invariants.InvariantChecker` instances
        observing every round/initiation/delivery and raising
        :class:`~repro.errors.SimulationError` on a model violation.  With
        the default ``None``, a fresh set of
        :func:`~repro.sim.invariants.default_checkers` is attached when a
        :func:`~repro.sim.invariants.checked` scope is active, and nothing
        otherwise.  Pass ``()`` to force checking off even inside a
        ``checked`` scope.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder` receiving typed
        events (initiations, deliveries with coverage deltas, wakeups,
        void exchanges, blocked/rejected initiations, per-round
        summaries).  ``None`` (the default) costs the hot path exactly one
        ``is None`` check per potential event site — the recorder-off run
        is bit-identical to a recorder-on run of the same seed.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        protocol_factory: ProtocolFactory,
        state: Optional[NetworkState] = None,
        latencies_known: bool = False,
        fresh_snapshots: bool = False,
        failure_model: Optional["FailureModel"] = None,
        max_incoming_per_round: Optional[int] = None,
        enforce_blocking: bool = False,
        checkers: Optional[Sequence[InvariantChecker]] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_incoming_per_round is not None and max_incoming_per_round < 1:
            raise SimulationError(
                f"max_incoming_per_round must be >= 1, got {max_incoming_per_round}"
            )
        self.graph = graph
        self.state = state if state is not None else NetworkState(graph.nodes())
        self.latencies_known = latencies_known
        self.fresh_snapshots = fresh_snapshots
        self.failure_model = failure_model
        self.max_incoming_per_round = max_incoming_per_round
        self.enforce_blocking = enforce_blocking
        self.recorder = recorder
        self.metrics = EngineMetrics()
        if enforce_blocking:
            # Tracked-but-clean is 0; "never tracked" stays None.
            self.metrics.blocked_initiations = 0
        #: Per-initiator count of the initiator's own exchanges still in
        #: flight.  Maintained only under ``enforce_blocking`` (its sole
        #: reader) and entries are deleted as soon as they drop to zero, so
        #: the dict never accumulates dead keys over a long run.
        self._in_flight_initiations: dict[Node, int] = {}
        self.round = 0
        #: Exchanges initiated during the most recent :meth:`step`, as
        #: ``(initiator, responder)`` pairs — the hook the Lemma 3 reduction
        #: uses to turn edge activations into guessing-game guesses.
        self.last_initiations: list[tuple[Node, Node]] = []
        self._sequence = 0
        #: Per-round delivery buckets: delivers_at -> exchanges in initiation
        #: order.  Since rounds advance one at a time, the due work each
        #: round is exactly one ``dict.pop`` — no heap, no re-sorting.
        self._in_flight: dict[int, list[_InFlight]] = {}
        self._pending_count = 0
        self._order = graph.nodes()
        self._protocols: dict[Node, NodeProtocol] = {}
        self._contexts: dict[Node, NodeContext] = {}
        for node in self._order:
            self._protocols[node] = protocol_factory(node)
            self._contexts[node] = NodeContext(self, node)
        for node in self._order:
            self._protocols[node].setup(self._contexts[node])
        #: Active-set schedule: nodes not yet known-done, in dense-id order.
        #: A node leaves when ``is_done`` reports True and re-enters when
        #: one of its exchanges delivers (see the NodeProtocol contract).
        self._active: list[Node] = list(self._order)
        self._parked: set[Node] = set()
        self._woken: list[Node] = []
        self._node_index = {node: i for i, node in enumerate(self._order)}
        if checkers is None:
            checkers = (
                _invariants.default_checkers()
                if _invariants.checking_enabled()
                else ()
            )
        self._checkers: tuple[InvariantChecker, ...] = tuple(checkers)
        self._checker_log: collections.deque[str] = collections.deque(
            maxlen=_CHECKER_LOG_SIZE
        )
        for checker in self._checkers:
            checker.on_attach(self)

    # ------------------------------------------------------------------
    def protocol(self, node: Node) -> NodeProtocol:
        """The protocol instance for ``node`` (for post-run inspection)."""
        return self._protocols[node]

    def all_done(self) -> bool:
        """Whether every node's protocol reports local termination.

        Crashed nodes count as done: they will never act again, so waiting
        on them would deadlock every fixed-duration protocol.
        """
        parked = self._parked
        for node in self._order:
            if node in parked:
                continue
            if self.failure_model is not None and self.failure_model.node_crashed(
                node, self.round
            ):
                continue
            if not self._protocols[node].is_done(self._contexts[node]):
                return False
        return True

    def pending_exchanges(self) -> int:
        """Number of exchanges still in flight."""
        return self._pending_count

    def recent_checker_events(self) -> list[str]:
        """The most recent logged events (the violation trace excerpt)."""
        return list(self._checker_log)

    def _log_event(self, event: str) -> None:
        if self._checkers:
            self._checker_log.append(event)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one round: deliver due exchanges, then collect initiations."""
        self.last_initiations = []
        for checker in self._checkers:
            checker.on_round_start(self)
        delivered = self._deliver_due()
        if self._woken:
            self._wake_parked()
        recorder = self.recorder
        incoming: dict[Node, int] = {}
        failure_model = self.failure_model
        protocols = self._protocols
        contexts = self._contexts
        graph_adj = self.graph.adjacency_view()
        survivors: list[Node] = []
        keep = survivors.append
        for node in self._active:
            if failure_model is not None and failure_model.node_crashed(
                node, self.round
            ):
                keep(node)  # crashes are observed, never cached
                continue
            protocol = protocols[node]
            ctx = contexts[node]
            if protocol.is_done(ctx):
                self._parked.add(node)  # leaves the active set until a delivery
                continue
            keep(node)
            target = protocol.on_round(ctx)
            if target is None:
                continue
            if target not in graph_adj.get(node, ()):
                raise ProtocolError(
                    f"node {node!r} tried to contact non-neighbor {target!r}"
                )
            if self.max_incoming_per_round is not None:
                accepted = incoming.get(target, 0)
                if accepted >= self.max_incoming_per_round:
                    self.metrics.rejected_initiations += 1
                    if recorder is not None:
                        recorder.record(
                            RejectedInitiationEvent(
                                round=self.round, initiator=node, responder=target
                            )
                        )
                    continue  # the responder is saturated; round wasted
                incoming[target] = accepted + 1
            self._initiate(node, target)
        self._active = survivors
        for checker in self._checkers:
            checker.on_round_end(self)
        if recorder is not None:
            recorder.record(
                RoundEvent(
                    round=self.round,
                    initiations=len(self.last_initiations),
                    deliveries=delivered,
                    in_flight=self._pending_count,
                )
            )
        self.round += 1
        self.metrics.rounds = self.round

    def _wake_parked(self) -> None:
        """Merge nodes re-activated by a delivery back in dense-id order."""
        index = self._node_index
        woken = sorted(set(self._woken), key=index.__getitem__)
        self._woken = []
        merged: list[Node] = []
        active = self._active
        i = j = 0
        while i < len(active) and j < len(woken):
            if index[active[i]] <= index[woken[j]]:
                merged.append(active[i])
                i += 1
            else:
                merged.append(woken[j])
                j += 1
        merged.extend(active[i:])
        merged.extend(woken[j:])
        self._active = merged

    def run(
        self,
        until: Optional[Callable[["Engine"], bool]] = None,
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run until ``until(engine)`` is true (checked before each round).

        With ``until=None``, runs until every protocol is done.  Returns the
        number of rounds executed.

        Raises
        ------
        SimulationError
            If ``max_rounds`` is exceeded — protocols with a theoretical
            termination guarantee should never hit this.
        """
        predicate = until if until is not None else (lambda engine: engine.all_done())
        while not predicate(self):
            if self.round >= max_rounds:
                raise SimulationError(
                    f"simulation exceeded max_rounds={max_rounds} "
                    f"(round={self.round}, pending={self._pending_count})"
                )
            self.step()
        self.finish_checks()
        return self.round

    def finish_checks(self) -> None:
        """Give every attached invariant checker a final end-of-run look."""
        for checker in self._checkers:
            checker.on_run_end(self)

    # ------------------------------------------------------------------
    def _initiate(self, initiator: Node, responder: Node) -> None:
        latency = self.graph.latency(initiator, responder)
        if self.enforce_blocking and self._in_flight_initiations.get(initiator, 0):
            self.metrics.blocked_initiations += 1
            if self.recorder is not None:
                self.recorder.record(
                    BlockedInitiationEvent(
                        round=self.round, initiator=initiator, responder=responder
                    )
                )
            raise ProtocolError(
                f"blocking violation: node {initiator!r} initiated while a "
                "previous exchange of its own is still in flight"
            )
        ping_only = not getattr(self._protocols[initiator], "sends_payload", True)
        lost = self.failure_model is not None and self.failure_model.exchange_lost(
            initiator, responder, self.round
        )
        if self.recorder is not None:
            self.recorder.record(
                InitiationEvent(
                    round=self.round,
                    initiator=initiator,
                    responder=responder,
                    latency=latency,
                    ping=ping_only,
                    lost=lost,
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {initiator!r} -> {responder!r} initiate "
                f"(latency {latency}"
                + (", ping" if ping_only else "")
                + (", lost" if lost else "")
                + ")"
            )
            view = ExchangeView(
                initiator=initiator,
                responder=responder,
                round=self.round,
                latency=latency,
                ping_only=ping_only,
                lost=lost,
            )
            for checker in self._checkers:
                checker.on_initiation(self, view)
        if lost:
            # Lost on the wire: the initiator simply never hears back.
            self.metrics.lost_exchanges += 1
            return
        self._sequence += 1
        if ping_only or self.fresh_snapshots:
            # Pings never carry knowledge; fresh-snapshot payloads are
            # re-read at delivery.  Either way, store cheap placeholders.
            initiator_payload = responder_payload = _EMPTY_PAYLOAD
        else:
            initiator_payload = self.state.snapshot(initiator)
            responder_payload = self.state.snapshot(responder)
        exchange = _InFlight(
            delivers_at=self.round + latency,
            sequence=self._sequence,
            initiator=initiator,
            responder=responder,
            initiated_at=self.round,
            initiator_payload=initiator_payload,
            responder_payload=responder_payload,
            ping_only=ping_only,
        )
        bucket = self._in_flight.get(exchange.delivers_at)
        if bucket is None:
            bucket = self._in_flight[exchange.delivers_at] = []
        bucket.append(exchange)
        self._pending_count += 1
        if self.enforce_blocking:
            self._in_flight_initiations[initiator] = (
                self._in_flight_initiations.get(initiator, 0) + 1
            )
        self.last_initiations.append((initiator, responder))
        if not self.fresh_snapshots:
            self._account_payloads(initiator_payload, responder_payload)
        self.metrics.exchanges += 1
        self.metrics.messages += 2
        self.metrics.activated_edges.add(self.graph.canonical_edge(initiator, responder))

    def _account_payloads(self, initiator_payload: Payload, responder_payload: Payload) -> None:
        sent = initiator_payload.rumor_count
        received = responder_payload.rumor_count
        self.metrics.rumor_tokens_sent += sent + received
        if sent < received:
            sent = received
        if sent > self.metrics.max_payload_rumors:
            self.metrics.max_payload_rumors = sent

    def _deliver_due(self) -> int:
        bucket = self._in_flight.pop(self.round, None)
        if bucket is None:
            return 0
        self._pending_count -= len(bucket)
        for exchange in bucket:
            self._deliver(exchange)
        return len(bucket)

    def _deliver(self, exchange: _InFlight) -> None:
        if self.enforce_blocking:
            remaining = self._in_flight_initiations[exchange.initiator] - 1
            if remaining:
                self._in_flight_initiations[exchange.initiator] = remaining
            else:
                del self._in_flight_initiations[exchange.initiator]
        initiator_alive = responder_alive = True
        if self.failure_model is not None:
            initiator_alive = not self.failure_model.node_crashed(
                exchange.initiator, self.round
            )
            responder_alive = not self.failure_model.node_crashed(
                exchange.responder, self.round
            )
        if self._checkers:
            delivery_view = DeliveryView(
                initiator=exchange.initiator,
                responder=exchange.responder,
                initiated_at=exchange.initiated_at,
                delivered_at=self.round,
                ping_only=exchange.ping_only,
                initiator_alive=initiator_alive,
            )
        if not responder_alive:
            # No response was ever produced: the exchange is void.
            self.metrics.lost_exchanges += 1
            if self.recorder is not None:
                self.recorder.record(
                    VoidExchangeEvent(
                        round=self.round,
                        initiator=exchange.initiator,
                        responder=exchange.responder,
                        initiated_at=exchange.initiated_at,
                    )
                )
            if self._checkers:
                self._log_event(
                    f"round {self.round}: exchange {exchange.initiator!r} -> "
                    f"{exchange.responder!r} (from round "
                    f"{exchange.initiated_at}) void: responder crashed"
                )
                for checker in self._checkers:
                    checker.on_exchange_void(self, delivery_view)
            return
        if exchange.ping_only:
            initiator_payload = responder_payload = _EMPTY_PAYLOAD
        elif self.fresh_snapshots:
            initiator_payload = self.state.snapshot(exchange.initiator)
            responder_payload = self.state.snapshot(exchange.responder)
            self._account_payloads(initiator_payload, responder_payload)
        else:
            # Responder learns the initiator's round-t knowledge and
            # vice versa (conservative initiation-time semantics).
            initiator_payload = exchange.initiator_payload
            responder_payload = exchange.responder_payload
        recorder = self.recorder
        if recorder is not None:
            before_responder = self.state.rumor_count(exchange.responder)
            before_initiator = (
                self.state.rumor_count(exchange.initiator) if initiator_alive else 0
            )
        self.state.merge(exchange.responder, initiator_payload)
        if initiator_alive:
            self.state.merge(exchange.initiator, responder_payload)
        if recorder is not None:
            recorder.record(
                DeliveryEvent(
                    round=self.round,
                    initiator=exchange.initiator,
                    responder=exchange.responder,
                    initiated_at=exchange.initiated_at,
                    ping=exchange.ping_only,
                    initiator_alive=initiator_alive,
                    learned_by_initiator=(
                        self.state.rumor_count(exchange.initiator) - before_initiator
                        if initiator_alive
                        else 0
                    ),
                    learned_by_responder=(
                        self.state.rumor_count(exchange.responder) - before_responder
                    ),
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {exchange.initiator!r} <-> "
                f"{exchange.responder!r} deliver (initiated at "
                f"{exchange.initiated_at}"
                + (", ping" if exchange.ping_only else "")
                + ("" if initiator_alive else ", initiator crashed")
                + ")"
            )
            for checker in self._checkers:
                checker.on_delivery(self, delivery_view)
        endpoints = [(exchange.responder, False)]
        if initiator_alive:
            endpoints.insert(0, (exchange.initiator, True))
        parked = self._parked
        for node, by_me in endpoints:
            peer = exchange.responder if by_me else exchange.initiator
            self._protocols[node].on_deliver(
                self._contexts[node],
                Delivery(
                    peer=peer,
                    initiated_at=exchange.initiated_at,
                    delivered_at=self.round,
                    initiated_by_me=by_me,
                ),
            )
            if node in parked:
                # The delivery may have changed the node's mind about being
                # done: re-activate it for this round's scan.
                parked.discard(node)
                self._woken.append(node)
                if recorder is not None:
                    recorder.record(WakeupEvent(round=self.round, node=node))
