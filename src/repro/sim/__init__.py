"""Synchronous non-blocking gossip simulation engine (the paper's model)."""

from repro.sim.engine import Delivery, Engine, NodeContext, NodeProtocol
from repro.sim.invariants import (
    CrashedSilenceChecker,
    DeliveryLatencyChecker,
    InvariantChecker,
    MonotoneKnowledgeChecker,
    SingleInitiationChecker,
    SymmetricMergeChecker,
    checked,
    checking_enabled,
    default_checkers,
)
from repro.sim.failures import (
    CompositeFailure,
    CrashSchedule,
    EdgeOutage,
    FailureModel,
    MessageLoss,
    NoFailures,
)
from repro.sim.metrics import DisseminationResult, EngineMetrics
from repro.sim.programs import Command, ProgramProtocol, contact, contact_and_wait, wait
from repro.sim.runner import (
    all_to_all_complete,
    broadcast_complete,
    local_broadcast_complete,
    run_until_complete,
)
from repro.obs.recorder import Recorder
from repro.obs.telemetry import PhaseTiming, RunTelemetry
from repro.sim.state import NetworkState, Note, Payload
from repro.sim.stream import StreamReport, run_streamed_all_to_all
from repro.sim.trace import TraceEvent, TraceRecorder, render_timeline
from repro.sim.vector import (
    ENGINE_BACKENDS,
    VectorEngine,
    VectorProgram,
    VectorState,
    current_engine_backend,
    engine_backend,
    resolve_engine_backend,
)

__all__ = [
    "Command",
    "CompositeFailure",
    "ENGINE_BACKENDS",
    "VectorEngine",
    "VectorProgram",
    "VectorState",
    "current_engine_backend",
    "engine_backend",
    "resolve_engine_backend",
    "CrashSchedule",
    "CrashedSilenceChecker",
    "Delivery",
    "DeliveryLatencyChecker",
    "DisseminationResult",
    "EdgeOutage",
    "Engine",
    "EngineMetrics",
    "FailureModel",
    "InvariantChecker",
    "MessageLoss",
    "MonotoneKnowledgeChecker",
    "NoFailures",
    "NetworkState",
    "NodeContext",
    "NodeProtocol",
    "Note",
    "Payload",
    "PhaseTiming",
    "ProgramProtocol",
    "Recorder",
    "RunTelemetry",
    "SingleInitiationChecker",
    "StreamReport",
    "SymmetricMergeChecker",
    "TraceEvent",
    "TraceRecorder",
    "all_to_all_complete",
    "broadcast_complete",
    "checked",
    "checking_enabled",
    "contact",
    "contact_and_wait",
    "default_checkers",
    "local_broadcast_complete",
    "render_timeline",
    "run_streamed_all_to_all",
    "run_until_complete",
    "wait",
]
