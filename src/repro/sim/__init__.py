"""Synchronous non-blocking gossip simulation engine (the paper's model)."""

from repro.sim.engine import Delivery, Engine, NodeContext, NodeProtocol
from repro.sim.failures import (
    CompositeFailure,
    CrashSchedule,
    EdgeOutage,
    FailureModel,
    MessageLoss,
    NoFailures,
)
from repro.sim.metrics import DisseminationResult, EngineMetrics
from repro.sim.programs import Command, ProgramProtocol, contact, contact_and_wait, wait
from repro.sim.runner import (
    all_to_all_complete,
    broadcast_complete,
    local_broadcast_complete,
    run_until_complete,
)
from repro.sim.state import NetworkState, Note, Payload
from repro.sim.trace import TraceEvent, TraceRecorder, render_timeline

__all__ = [
    "Command",
    "CompositeFailure",
    "CrashSchedule",
    "Delivery",
    "DisseminationResult",
    "EdgeOutage",
    "Engine",
    "EngineMetrics",
    "FailureModel",
    "MessageLoss",
    "NoFailures",
    "NetworkState",
    "NodeContext",
    "NodeProtocol",
    "Note",
    "Payload",
    "ProgramProtocol",
    "TraceEvent",
    "TraceRecorder",
    "all_to_all_complete",
    "broadcast_complete",
    "contact",
    "contact_and_wait",
    "local_broadcast_complete",
    "render_timeline",
    "run_until_complete",
    "wait",
]
