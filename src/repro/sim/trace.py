"""Structured event traces: what happened, round by round.

A :class:`TraceRecorder` attaches to an engine and logs every initiation,
delivery, loss, and rejection as typed events.  Traces serve three
purposes:

* **debugging protocols** — the ASCII timeline shows who contacted whom and
  when replies landed;
* **auditing model properties in tests** — e.g. "no delivery ever precedes
  its edge latency", "each node initiates at most once per round";
* **exporting series** — per-round activity counts for the experiment
  tables.

The recorder wraps protocol factories (no engine changes needed): it
interposes a transparent proxy that forwards every callback and logs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.graphs.latency_graph import Node
from repro.sim.engine import Delivery, Engine, NodeContext, NodeProtocol

__all__ = ["TraceEvent", "TraceRecorder", "render_timeline"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One logged event.

    Attributes
    ----------
    round:
        Round at which the event happened.
    kind:
        ``"initiate"`` or ``"deliver"``.
    node:
        The acting node (initiator for ``initiate``; the receiving endpoint
        for ``deliver``).
    peer:
        The other endpoint.
    initiated_at:
        For deliveries, when the exchange started (equals ``round`` for
        initiations).
    """

    round: int
    kind: str
    node: Node
    peer: Node
    initiated_at: int


class _TracedProtocol(NodeProtocol):
    """Transparent proxy logging a wrapped protocol's actions."""

    def __init__(self, inner: NodeProtocol, recorder: "TraceRecorder") -> None:
        self._inner = inner
        self._recorder = recorder
        # Preserve the payload semantics of the wrapped protocol.
        self.sends_payload = getattr(inner, "sends_payload", True)

    def setup(self, ctx: NodeContext) -> None:
        self._inner.setup(ctx)

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        target = self._inner.on_round(ctx)
        if target is not None:
            self._recorder.events.append(
                TraceEvent(
                    round=ctx.round,
                    kind="initiate",
                    node=ctx.node,
                    peer=target,
                    initiated_at=ctx.round,
                )
            )
        return target

    def on_deliver(self, ctx: NodeContext, delivery: Delivery) -> None:
        self._recorder.events.append(
            TraceEvent(
                round=ctx.round,
                kind="deliver",
                node=ctx.node,
                peer=delivery.peer,
                initiated_at=delivery.initiated_at,
            )
        )
        self._inner.on_deliver(ctx, delivery)

    def is_done(self, ctx: NodeContext) -> bool:
        return self._inner.is_done(ctx)


class TraceRecorder:
    """Collects :class:`TraceEvent` records from a wrapped protocol factory.

    Usage::

        recorder = TraceRecorder()
        engine = Engine(graph, recorder.wrap(my_factory))
        ...
        print(render_timeline(recorder, graph.nodes()))
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def wrap(
        self, factory: Callable[[Node], NodeProtocol]
    ) -> Callable[[Node], NodeProtocol]:
        """Wrap a protocol factory so every instance is traced."""

        def traced(node: Node) -> NodeProtocol:
            return _TracedProtocol(factory(node), self)

        return traced

    # -- queries ---------------------------------------------------------
    def initiations(self, node: Optional[Node] = None) -> list[TraceEvent]:
        """All initiation events, optionally for one node."""
        return [
            e
            for e in self.events
            if e.kind == "initiate" and (node is None or e.node == node)
        ]

    def deliveries(self, node: Optional[Node] = None) -> list[TraceEvent]:
        """All delivery events, optionally for one receiving node."""
        return [
            e
            for e in self.events
            if e.kind == "deliver" and (node is None or e.node == node)
        ]

    def per_round_activity(self) -> dict[int, int]:
        """``{round: initiations}`` — the network's activity profile."""
        counts: dict[int, int] = {}
        for event in self.initiations():
            counts[event.round] = counts.get(event.round, 0) + 1
        return counts

    def verify_single_initiation_per_round(self) -> bool:
        """The model invariant: no node initiates twice in one round."""
        seen: set[tuple] = set()
        for event in self.initiations():
            key = (event.node, event.round)
            if key in seen:
                return False
            seen.add(key)
        return True

    def verify_causal_deliveries(self) -> bool:
        """Deliveries never precede their initiation."""
        return all(
            e.round >= e.initiated_at + 1 for e in self.deliveries()
        )


def render_timeline(
    recorder: TraceRecorder,
    nodes: list[Node],
    max_rounds: Optional[int] = None,
    width: int = 60,
) -> str:
    """An ASCII per-node timeline: ``>`` initiation, ``*`` delivery, ``.`` idle.

    Rounds beyond ``width`` (or ``max_rounds``) are truncated.
    """
    if recorder.events:
        last_round = max(e.round for e in recorder.events)
    else:
        last_round = 0
    horizon = min(last_round + 1, max_rounds or last_round + 1, width)
    grid = {node: ["."] * horizon for node in nodes}
    for event in recorder.events:
        if event.round >= horizon or event.node not in grid:
            continue
        cell = grid[event.node]
        mark = ">" if event.kind == "initiate" else "*"
        # A round with both initiation and delivery shows as '#'.
        if cell[event.round] not in (".", mark):
            cell[event.round] = "#"
        else:
            cell[event.round] = mark
    label_width = max((len(repr(node)) for node in nodes), default=1)
    lines = [
        f"{'round':>{label_width}} " + "".join(
            str(i % 10) for i in range(horizon)
        )
    ]
    for node in nodes:
        lines.append(f"{node!r:>{label_width}} " + "".join(grid[node]))
    return "\n".join(lines)
