"""Failure injection: node crashes, message loss, edge outages.

The paper's conclusion flags fault tolerance as an open direction and
conjectures that "push--pull is relatively robust to failures, while our
other approaches are not."  This module makes that claim testable: a
:class:`FailureModel` plugs into the engine and decides, deterministically
from its own seeded RNG,

* whether a node has **crashed** by a given round (crashed nodes neither
  initiate nor respond; exchanges they would answer are void), and
* whether a given exchange is **lost** (it silently never delivers — the
  initiator just never hears back, indistinguishable from a very slow
  edge).

Semantics at delivery time, chosen to mirror a real request/response pair:

* responder crashed by the delivery round → the whole exchange is void
  (the request may have arrived, but no response was produced; we
  conservatively void both directions);
* initiator crashed by the delivery round → the responder still merges the
  initiator's payload (the request was already in flight) but the response
  goes nowhere.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import Node, edge_key

__all__ = [
    "FailureModel",
    "NoFailures",
    "MessageLoss",
    "CrashSchedule",
    "EdgeOutage",
    "CompositeFailure",
]


class FailureModel:
    """Base failure model: nothing fails."""

    def node_crashed(self, node: Node, round_number: int) -> bool:
        """Whether ``node`` has crashed at or before ``round_number``."""
        return False

    def exchange_lost(self, u: Node, v: Node, round_number: int) -> bool:
        """Whether an exchange initiated on ``{u, v}`` this round is lost."""
        return False


class NoFailures(FailureModel):
    """Explicit no-op model (the default behaviour, made nameable)."""


class MessageLoss(FailureModel):
    """Every exchange is independently lost with probability ``p``.

    Deterministic given the seed: the loss draw depends only on the model's
    own RNG stream, consumed once per initiated exchange.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"loss probability must be in [0, 1], got {p}")
        self.p = p
        self._rng = random.Random(seed)

    def exchange_lost(self, u: Node, v: Node, round_number: int) -> bool:
        return self._rng.random() < self.p


class CrashSchedule(FailureModel):
    """Nodes crash permanently at scheduled rounds.

    Parameters
    ----------
    crash_rounds:
        ``{node: round}`` — the node is considered crashed from that round
        on (inclusive).
    """

    def __init__(self, crash_rounds: dict[Node, int]) -> None:
        for node, when in crash_rounds.items():
            if when < 0:
                raise SimulationError(
                    f"crash round must be >= 0, got {when} for node {node!r}"
                )
        self._crash_rounds = dict(crash_rounds)

    def node_crashed(self, node: Node, round_number: int) -> bool:
        when = self._crash_rounds.get(node)
        return when is not None and round_number >= when

    @classmethod
    def random_crashes(
        cls,
        nodes: Iterable[Node],
        count: int,
        by_round: int,
        rng: random.Random,
        protect: Iterable[Node] = (),
    ) -> "CrashSchedule":
        """Crash ``count`` random nodes (outside ``protect``) by ``by_round``."""
        candidates = [n for n in nodes if n not in set(protect)]
        if count > len(candidates):
            raise SimulationError(
                f"cannot crash {count} of {len(candidates)} candidate nodes"
            )
        chosen = rng.sample(candidates, count)
        return cls({node: rng.randint(0, by_round) for node in chosen})


class EdgeOutage(FailureModel):
    """Specific edges are down during given round intervals.

    Parameters
    ----------
    outages:
        ``{(u, v): [(start, end), ...]}`` — exchanges initiated on the edge
        while ``start <= round < end`` are lost.  Edge keys are canonical
        (unordered).
    """

    def __init__(self, outages: dict[tuple, list[tuple[int, int]]]) -> None:
        self._outages: dict[tuple, list[tuple[int, int]]] = {}
        for (u, v), intervals in outages.items():
            for start, end in intervals:
                if start < 0 or end <= start:
                    raise SimulationError(
                        f"bad outage interval ({start}, {end}) for edge ({u!r}, {v!r})"
                    )
            self._outages[edge_key(u, v)] = sorted(intervals)

    def exchange_lost(self, u: Node, v: Node, round_number: int) -> bool:
        for start, end in self._outages.get(edge_key(u, v), ()):
            if start <= round_number < end:
                return True
        return False


class CompositeFailure(FailureModel):
    """Combine several failure models: anything any of them fails, fails."""

    def __init__(self, models: Iterable[FailureModel]) -> None:
        self._models = list(models)

    def node_crashed(self, node: Node, round_number: int) -> bool:
        return any(m.node_crashed(node, round_number) for m in self._models)

    def exchange_lost(self, u: Node, v: Node, round_number: int) -> bool:
        # Deliberately not short-circuited: every sub-model consumes its
        # randomness for every exchange, so adding a model never perturbs
        # another model's stream.
        results = [m.exchange_lost(u, v, round_number) for m in self._models]
        return any(results)
