"""High-level run helpers: completion predicates and result packaging.

The paper measures three flavors of dissemination:

* **one-to-all broadcast** — a designated source's rumor must reach everyone;
* **all-to-all dissemination** — every node's rumor must reach everyone;
* **(ℓ-)local broadcast** — every node's rumor must reach all its neighbors
  connected by edges of latency ``<= ℓ``.

Each helper builds the matching completion predicate, runs the engine until
it holds (or a round budget runs out) and returns a
:class:`~repro.sim.metrics.DisseminationResult`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.metrics import default_registry
from repro.obs.telemetry import RunTelemetry
from repro.sim.engine import Engine
from repro.sim.metrics import DisseminationResult

__all__ = [
    "broadcast_complete",
    "all_to_all_complete",
    "local_broadcast_complete",
    "min_rumors_complete",
    "run_until_complete",
]


def broadcast_complete(rumor) -> Callable[[Engine], bool]:
    """Predicate: every node knows ``rumor``."""

    def predicate(engine: Engine) -> bool:
        # O(1) quick reject via the coverage counter; the exact per-node
        # check only runs once enough nodes know the rumor (the state may
        # track nodes outside the graph, so the counter alone is not proof).
        if engine.state.count_knowing(rumor) < engine.graph.num_nodes:
            return False
        return all(engine.state.knows(node, rumor) for node in engine.graph.nodes())

    return predicate


def all_to_all_complete() -> Callable[[Engine], bool]:
    """Predicate: every node knows every node's id-rumor."""

    def predicate(engine: Engine) -> bool:
        nodes = engine.graph.nodes()
        state = engine.state
        # O(n) popcount quick reject: a node knowing fewer rumors than
        # there are nodes certainly misses someone's id-rumor.
        n = len(nodes)
        for node in nodes:
            if state.rumor_count(node) < n:
                return False
        knows_every = getattr(state, "knows_every", None)
        if knows_every is not None:
            return knows_every(nodes, nodes)
        everyone = set(nodes)
        return all(everyone <= state.rumors(node) for node in nodes)

    return predicate


def min_rumors_complete(m: int):
    """State predicate: every node knows at least ``m`` rumors.

    A multi-rumor completion gate for phase-chained runs — pass it as
    ``PhaseRunner.run_phase(..., until=min_rumors_complete(m))`` to end a
    phase as soon as universal coverage of ``m`` rumors is reached,
    whatever those rumors are.  Takes the *state* (not the engine), like
    ``PhaseRunner``'s ``watch``; uses the state's one-pass
    ``min_rumor_count()`` when available (every vector layout and
    :class:`~repro.sim.state.NetworkState` provide it).
    """
    if m < 0:
        raise SimulationError(f"min_rumors_complete needs m >= 0, got {m}")

    def predicate(state) -> bool:
        fast = getattr(state, "min_rumor_count", None)
        if fast is not None:
            return fast() >= m
        return all(state.rumor_count(node) >= m for node in state.nodes())

    return predicate


def local_broadcast_complete(max_latency: Optional[int] = None) -> Callable[[Engine], bool]:
    """Predicate: every node knows the id-rumor of each (ℓ-)neighbor.

    With ``max_latency`` given, only neighbors over edges of latency
    ``<= max_latency`` count (the ℓ-local broadcast of Section 5.1).
    """

    def predicate(engine: Engine) -> bool:
        state = engine.state
        for node in engine.graph.nodes():
            for neighbor, latency in engine.graph.neighbor_latencies(node).items():
                if max_latency is not None and latency > max_latency:
                    continue
                if not state.knows(node, neighbor):
                    return False
        return True

    return predicate


def run_until_complete(
    engine: Engine,
    predicate: Callable[[Engine], bool],
    protocol_name: str,
    max_rounds: int = 1_000_000,
    track_progress: Optional[Callable[[Engine], int]] = None,
    allow_incomplete: bool = False,
    telemetry: bool = False,
) -> DisseminationResult:
    """Run ``engine`` until ``predicate`` holds; package the result.

    Parameters
    ----------
    engine:
        A freshly constructed (or phase-chained) engine.
    predicate:
        Completion condition, checked before every round.
    protocol_name:
        Label stored in the result.
    max_rounds:
        Round budget.
    track_progress:
        Optional per-round progress measure (e.g. informed-node count);
        recorded into ``informed_history``.
    allow_incomplete:
        If ``True``, exhausting the budget returns an incomplete result
        instead of raising :class:`~repro.errors.SimulationError`.
    telemetry:
        If ``True``, attach a :class:`~repro.obs.telemetry.RunTelemetry`
        to the result: the coverage curve (``track_progress`` samples, if
        any) plus the end-of-round in-flight backlog curve.  Telemetry is
        a ``compare=False`` field, so a telemetry-on result still compares
        equal to the telemetry-off run of the same seed.
    """
    history: list[int] = []
    in_flight: list[int] = []
    complete = True
    while not predicate(engine):
        if engine.round >= max_rounds:
            if allow_incomplete:
                complete = False
                break
            raise SimulationError(
                f"{protocol_name} exceeded max_rounds={max_rounds}"
            )
        if track_progress is not None:
            history.append(track_progress(engine))
        engine.step()
        if telemetry:
            in_flight.append(engine.pending_exchanges())
    if track_progress is not None:
        history.append(track_progress(engine))
    # Last look for any attached invariant checkers (duck-typed so the
    # testing package's ReferenceEngine can run through this helper too).
    finish = getattr(engine, "finish_checks", None)
    if finish is not None:
        finish()
    run_telemetry = None
    if telemetry:
        run_telemetry = RunTelemetry(
            coverage_curve=tuple(history) if track_progress is not None else None,
            in_flight_curve=tuple(in_flight),
        )
    # Coarse per-run metrics: clock-free, so serial and REPRO_JOBS=N runs
    # of the same seeds report identical totals after the worker merge.
    registry = default_registry()
    registry.counter("sim_runs_total", "completed run_until_complete calls").inc(
        protocol=protocol_name
    )
    registry.counter("sim_rounds_total", "simulated rounds across all runs").inc(
        engine.round, protocol=protocol_name
    )
    registry.counter(
        "sim_exchanges_total", "completed exchanges across all runs"
    ).inc(engine.metrics.exchanges, protocol=protocol_name)
    state = getattr(engine, "state", None)
    state_nbytes = getattr(state, "state_nbytes", None)
    if state_nbytes is not None:
        layout = getattr(state, "layout", "unknown")
        registry.gauge(
            "sim_state_bytes", "peak rumor-state storage bytes per layout"
        ).set_max(state_nbytes(), layout=layout, protocol=protocol_name)
        registry.gauge(
            "sim_state_layout", "state layouts used, 1 per (layout, protocol)"
        ).set(1, layout=layout, protocol=protocol_name)
    return DisseminationResult(
        rounds=engine.round,
        complete=complete,
        exchanges=engine.metrics.exchanges,
        messages=engine.metrics.messages,
        protocol=protocol_name,
        informed_history=tuple(history) if track_progress is not None else None,
        blocked_initiations=engine.metrics.blocked_initiations,
        telemetry=run_telemetry,
    )
