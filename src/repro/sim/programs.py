"""Write sequential per-node protocols as generators.

Many of the paper's algorithms (ℓ-DTG, RR Broadcast, latency discovery) are
naturally *sequential programs* per node — "contact u, wait ℓ rounds,
contact v, ..." — which are awkward to express as round callbacks.
:class:`ProgramProtocol` lets a protocol author write::

    class MyProtocol(ProgramProtocol):
        def program(self, ctx):
            delivery = yield contact_and_wait(neighbor)      # blocks until reply
            yield wait(3)                                     # idle 3 rounds
            yield contact(other)                              # fire and forget

Each yielded command consumes at least one round (the engine allows one
initiation per node per round).  ``contact_and_wait`` resumes the program at
the round its exchange delivers (or after ``rounds`` if given, which is how
ℓ-DTG keeps lockstep: it waits exactly ``ℓ`` even on faster edges) and sends
the :class:`~repro.sim.engine.Delivery` back into the generator.

The base class also records measured latencies of every delivery it sees in
:attr:`ProgramProtocol.measured_latencies` — the primitive behind the
latency-discovery algorithm of Section 4.2.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Union

from repro.errors import ProtocolError
from repro.graphs.latency_graph import Node
from repro.sim.engine import Delivery, NodeContext, NodeProtocol

__all__ = ["contact", "contact_and_wait", "wait", "Command", "ProgramProtocol"]


@dataclasses.dataclass(frozen=True)
class _Contact:
    neighbor: Node


@dataclasses.dataclass(frozen=True)
class _ContactAndWait:
    neighbor: Node
    rounds: Optional[int]


@dataclasses.dataclass(frozen=True)
class _Wait:
    rounds: int


Command = Union[_Contact, _ContactAndWait, _Wait]


def contact(neighbor: Node) -> Command:
    """Initiate an exchange this round and continue next round (non-blocking)."""
    return _Contact(neighbor)


def contact_and_wait(neighbor: Node, rounds: Optional[int] = None) -> Command:
    """Initiate an exchange and suspend until it delivers.

    With ``rounds`` given, suspend for exactly that many rounds instead
    (must be at least the edge latency for the reply to have arrived; this
    is how ℓ-DTG charges a uniform ``ℓ`` per step to stay in lockstep).
    The engine sends the resulting :class:`Delivery` back into the
    generator, or ``None`` when a fixed ``rounds`` elapsed first.
    """
    if rounds is not None and rounds < 1:
        raise ProtocolError(f"rounds must be >= 1, got {rounds}")
    return _ContactAndWait(neighbor, rounds)


def wait(rounds: int) -> Command:
    """Stay idle for ``rounds`` rounds."""
    if rounds < 1:
        raise ProtocolError(f"rounds must be >= 1, got {rounds}")
    return _Wait(rounds)


class ProgramProtocol(NodeProtocol):
    """A :class:`NodeProtocol` driven by a generator of commands.

    Subclasses implement :meth:`program`.  The node is done when the
    generator returns.  Incoming (passive) deliveries merge knowledge
    automatically via the engine; this base additionally records their
    measured latencies.
    """

    def __init__(self) -> None:
        self.measured_latencies: dict[Node, int] = {}
        self._generator: Optional[Iterator[Command]] = None
        self._finished = False
        self._wake_round: Optional[int] = None
        self._awaiting: Optional[tuple[Node, int]] = None  # (peer, initiated_at)
        self._awaiting_fixed: Optional[tuple[Node, int]] = None
        self._awaited_delivery: Optional[Delivery] = None
        self._pending_result: Optional[Delivery] = None

    def program(self, ctx: NodeContext) -> Iterator[Command]:
        """Override: yield commands; return to terminate."""
        raise NotImplementedError

    # -- NodeProtocol hooks ---------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        self._generator = self.program(ctx)

    def on_round(self, ctx: NodeContext) -> Optional[Node]:
        if self._finished:
            return None
        if self._wake_round is not None and ctx.round < self._wake_round:
            return None
        if self._awaiting is not None:
            if self._awaited_delivery is None:
                return None  # still waiting for the reply
            self._pending_result = self._awaited_delivery
            self._awaiting = None
            self._awaited_delivery = None
        self._wake_round = None
        self._awaiting_fixed = None
        command = self._advance(ctx)
        if command is None:
            return None
        if isinstance(command, _Wait):
            self._wake_round = ctx.round + command.rounds
            return None
        if isinstance(command, _Contact):
            return command.neighbor
        if isinstance(command, _ContactAndWait):
            if command.rounds is not None:
                self._wake_round = ctx.round + command.rounds
                self._awaiting_fixed = (command.neighbor, ctx.round)
            else:
                self._awaiting = (command.neighbor, ctx.round)
            return command.neighbor
        raise ProtocolError(f"program yielded a non-command: {command!r}")

    def on_deliver(self, ctx: NodeContext, delivery: Delivery) -> None:
        if delivery.initiated_by_me:
            current = self.measured_latencies.get(delivery.peer)
            if current is None or delivery.measured_latency < current:
                self.measured_latencies[delivery.peer] = delivery.measured_latency
            if self._awaiting == (delivery.peer, delivery.initiated_at):
                self._awaited_delivery = delivery
            elif self._awaiting_fixed == (delivery.peer, delivery.initiated_at):
                # A fixed-duration contact_and_wait: remember the reply so the
                # program receives it when it wakes.
                self._pending_result = delivery

    def is_done(self, ctx: NodeContext) -> bool:
        return self._finished

    # -- internals -------------------------------------------------------
    def _advance(self, ctx: NodeContext) -> Optional[Command]:
        assert self._generator is not None, "setup() was not called"
        result, self._pending_result = self._pending_result, None
        try:
            if result is not None:
                return self._generator.send(result)
            return next(self._generator)
        except StopIteration:
            self._finished = True
            return None
