"""Simulation metrics and result records."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.graphs.latency_graph import Edge
from repro.obs.telemetry import RunTelemetry

__all__ = ["EngineMetrics", "DisseminationResult"]


@dataclasses.dataclass
class EngineMetrics:
    """Raw counters accumulated by the engine.

    Attributes
    ----------
    rounds:
        Rounds executed so far.
    exchanges:
        Exchanges initiated (each is one bidirectional round trip).
    messages:
        Point-to-point messages: two per exchange (request + response).
    activated_edges:
        The set of distinct edges activated at least once — the quantity the
        lower-bound reduction turns into guessing-game guesses.
    rumor_tokens_sent:
        Total rumors shipped over the wire (both directions of every
        exchange) — the message-size measure the paper's conclusion
        discusses: push--pull works with small messages, the spanner
        pipeline does not.
    max_payload_rumors:
        Largest single payload (in rumors) shipped by any exchange.
    lost_exchanges:
        Exchanges voided by the failure model (message loss or a crashed
        responder).
    rejected_initiations:
        Initiations refused under the bounded-in-degree model.
    blocked_initiations:
        Initiations that violated the blocking model.  ``None`` means the
        engine ran with ``enforce_blocking=False`` and blocking was never
        tracked — deliberately distinct from ``0`` ("tracked, and no node
        ever violated").  Under ``enforce_blocking=True`` the counter is
        bumped *before* the engine raises, so a post-mortem inspection of
        a failed run still shows the violation.
    """

    rounds: int = 0
    exchanges: int = 0
    messages: int = 0
    activated_edges: set = dataclasses.field(default_factory=set)
    rumor_tokens_sent: int = 0
    max_payload_rumors: int = 0
    lost_exchanges: int = 0
    rejected_initiations: int = 0
    blocked_initiations: Optional[int] = None

    def __str__(self) -> str:
        blocked = (
            "n/a (blocking not enforced)"
            if self.blocked_initiations is None
            else str(self.blocked_initiations)
        )
        return (
            f"rounds={self.rounds} exchanges={self.exchanges} "
            f"messages={self.messages} edges={len(self.activated_edges)} "
            f"rumor_tokens={self.rumor_tokens_sent} "
            f"max_payload={self.max_payload_rumors} "
            f"lost={self.lost_exchanges} rejected={self.rejected_initiations} "
            f"blocked={blocked}"
        )


@dataclasses.dataclass(frozen=True)
class DisseminationResult:
    """Outcome of one dissemination run.

    Attributes
    ----------
    rounds:
        Rounds until the completion predicate held (the paper's time metric).
    complete:
        Whether the predicate was actually reached (``False`` only for runs
        capped by a fixed round budget).
    exchanges, messages:
        Communication cost counters.
    informed_history:
        ``informed_history[t]`` is how many nodes satisfied the progress
        measure at round ``t`` (e.g. number of nodes knowing the source
        rumor) — recorded only when the runner is asked to track it.
    protocol:
        Human-readable name of the protocol that produced this result.
    blocked_initiations:
        Blocking-model violation count — ``None`` when the engine did not
        enforce blocking (the counter was never maintained), mirroring
        :attr:`EngineMetrics.blocked_initiations`.
    telemetry:
        Optional per-round series (:class:`~repro.obs.telemetry.RunTelemetry`)
        recorded when the runner was asked for telemetry.  Excluded from
        equality so telemetry-on and telemetry-off runs of the same seed
        compare equal.
    """

    rounds: int
    complete: bool
    exchanges: int
    messages: int
    protocol: str
    informed_history: Optional[tuple[int, ...]] = None
    blocked_initiations: Optional[int] = None
    telemetry: Optional[RunTelemetry] = dataclasses.field(default=None, compare=False)

    def __str__(self) -> str:
        status = "complete" if self.complete else "INCOMPLETE"
        text = (
            f"{self.protocol}: {self.rounds} rounds ({status}), "
            f"{self.exchanges} exchanges, {self.messages} messages"
        )
        if self.blocked_initiations is not None:
            text += f", {self.blocked_initiations} blocked initiations"
        return text
