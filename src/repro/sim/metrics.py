"""Simulation metrics and result records."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.graphs.latency_graph import Edge

__all__ = ["EngineMetrics", "DisseminationResult"]


@dataclasses.dataclass
class EngineMetrics:
    """Raw counters accumulated by the engine.

    Attributes
    ----------
    rounds:
        Rounds executed so far.
    exchanges:
        Exchanges initiated (each is one bidirectional round trip).
    messages:
        Point-to-point messages: two per exchange (request + response).
    activated_edges:
        The set of distinct edges activated at least once — the quantity the
        lower-bound reduction turns into guessing-game guesses.
    rumor_tokens_sent:
        Total rumors shipped over the wire (both directions of every
        exchange) — the message-size measure the paper's conclusion
        discusses: push--pull works with small messages, the spanner
        pipeline does not.
    max_payload_rumors:
        Largest single payload (in rumors) shipped by any exchange.
    lost_exchanges:
        Exchanges voided by the failure model (message loss or a crashed
        responder).
    rejected_initiations:
        Initiations refused under the bounded-in-degree model.
    """

    rounds: int = 0
    exchanges: int = 0
    messages: int = 0
    activated_edges: set = dataclasses.field(default_factory=set)
    rumor_tokens_sent: int = 0
    max_payload_rumors: int = 0
    lost_exchanges: int = 0
    rejected_initiations: int = 0


@dataclasses.dataclass(frozen=True)
class DisseminationResult:
    """Outcome of one dissemination run.

    Attributes
    ----------
    rounds:
        Rounds until the completion predicate held (the paper's time metric).
    complete:
        Whether the predicate was actually reached (``False`` only for runs
        capped by a fixed round budget).
    exchanges, messages:
        Communication cost counters.
    informed_history:
        ``informed_history[t]`` is how many nodes satisfied the progress
        measure at round ``t`` (e.g. number of nodes knowing the source
        rumor) — recorded only when the runner is asked to track it.
    protocol:
        Human-readable name of the protocol that produced this result.
    """

    rounds: int
    complete: bool
    exchanges: int
    messages: int
    protocol: str
    informed_history: Optional[tuple[int, ...]] = None

    def __str__(self) -> str:
        status = "complete" if self.complete else "INCOMPLETE"
        return (
            f"{self.protocol}: {self.rounds} rounds ({status}), "
            f"{self.exchanges} exchanges, {self.messages} messages"
        )
