"""Streamed all-to-all dissemination: replay one schedule over rumor blocks.

All-to-all at ``n = 10^6`` needs ``n^2 = 10^12`` bits of rumor state —
~125 GB as a dense bitset, far past any single-allocation budget.  But the
protocols this module accepts are **oblivious and ungated**: who contacts
whom in round ``t`` is a pure function of the per-node RNG streams and the
round number, never of the rumor state.  That makes the run separable by
*rumor*:

1. **Record the contact schedule once.**  A selection-only
   :class:`~repro.sim.vector.VectorEngine` draws each round's
   ``(initiator, responder, latency)`` arrays without simulating any
   deliveries (the draws consume the RNG streams exactly like a real
   run), extended lazily to whatever round the replay needs.
2. **Replay the schedule per rumor block.**  The rumor universe is split
   into blocks of ``B`` rumors sized to the state-memory budget; each
   block replays the same schedule over a chunked-layout state holding
   only its own ``n x B`` bit slice, using the layout's array kernels
   (gather payload rows at initiation, OR-scatter them at delivery).
3. **Combine.**  Knowledge is a monotone OR, so the full run's state at
   any round is exactly the disjoint union of the block states, and the
   completion round of the monolithic run is the max over blocks.  The
   exchange count is read off the schedule alone.

The returned :class:`~repro.sim.metrics.DisseminationResult` is therefore
**bit-identical** (``==``) to ``run_push_pull(graph, mode="all_to_all",
backend="vector")`` on the same seed — while peak memory stays at one
block slice plus its in-flight payloads instead of the full matrix.

Saturation shortcut (bit-exact): once a node's row holds all ``B`` block
rumors it can never change again — deliveries into it are skipped, and
its outgoing payload is the shared all-ones row instead of a fresh
gather.  Late rounds, where most rows are saturated, become nearly free;
a block completes exactly when every row is saturated, which doubles as
the completion predicate without a full-state popcount pass per round.
Symmetrically, a row still *empty* for this block carries nothing, so
its outgoing payloads are dropped without a gather — early rounds, where
a block's rumors have reached only a few rows, are nearly free too.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.graphs.latency_graph import LatencyGraph
from repro.obs.metrics import default_registry
from repro.obs.telemetry import PhaseTiming
from repro.sim.metrics import DisseminationResult
from repro.sim.vector import (
    ChunkedVectorState,
    VectorEngine,
    VectorState,
    _popcount_rows,
    current_max_state_bytes,
    state_budget,
)

__all__ = ["StreamReport", "run_streamed_all_to_all"]


@dataclasses.dataclass(frozen=True)
class StreamReport:
    """Outcome of one streamed all-to-all run.

    ``result`` compares equal to the monolithic vector-backend run of the
    same seed; the remaining fields describe the streaming itself.
    ``phases`` holds one :class:`~repro.obs.telemetry.PhaseTiming` per
    rumor block (wall-clock ``seconds`` is noise by definition).
    """

    result: DisseminationResult
    blocks: int
    block_rumors: int
    schedule_rounds: int
    peak_state_bytes: int
    phases: tuple[PhaseTiming, ...] = dataclasses.field(
        default=(), compare=False
    )


class _RecordedSchedule:
    """The contact schedule of an oblivious run, drawn lazily per round.

    Wraps a :class:`VectorEngine` used *only* for partner selection: each
    recorded round calls ``_select_initiations()`` (consuming the per-node
    RNG streams exactly as a real round would) and advances ``round``
    without delivering anything.  Valid only for ungated programs — a
    gate reads the rumor state, which this engine never evolves.
    """

    def __init__(self, engine: VectorEngine) -> None:
        for program in engine._programs:
            if program.gate is not None:
                raise SimulationError(
                    "streamed all-to-all requires an ungated oblivious "
                    "protocol: a gate makes partner selection depend on "
                    "the rumor state, so the schedule cannot be replayed "
                    "per rumor block"
                )
        if engine.max_incoming_per_round is not None:
            raise SimulationError(
                "streamed all-to-all does not support an incoming cap"
            )
        self._engine = engine
        # Compact per-round copies: int32 endpoints (n < 2^31) and the
        # smallest latency dtype, so a 10^6-node, ~10^2-round schedule
        # stays around 10 bytes per (node, round).
        lat_dtype = np.int16 if engine.graph.max_latency() < 2**15 else np.int64
        self._lat_dtype = lat_dtype
        self._rounds: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._sizes: list[int] = []

    def round(self, t: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(initiators, responders, latencies)`` of round ``t``, dense ids."""
        engine = self._engine
        while len(self._rounds) <= t:
            initiators, responders, latencies, _ = engine._select_initiations()
            engine.round += 1
            self._rounds.append(
                (
                    initiators.astype(np.int32),
                    responders.astype(np.int32),
                    latencies.astype(self._lat_dtype),
                )
            )
            self._sizes.append(int(initiators.shape[0]))
        return self._rounds[t]

    def exchanges_before(self, t: int) -> int:
        """Total initiations in rounds ``0 .. t-1`` (all are accepted)."""
        return sum(self._sizes[:t])


def _pick_block_rumors(
    n: int, max_latency: int, budget: int, requested: Optional[int]
) -> int:
    """Rumors per block: fit state plus worst-case in-flight payloads.

    A block's resident set is its ``n x B`` bit slice plus the payload
    rows in flight — every round gathers two rows per exchange (one per
    direction) that live until delivery, at most ``max_latency`` rounds,
    so the worst case is ``2 * n * max_latency`` extra row copies.
    """
    if requested is not None:
        if requested < 1:
            raise SimulationError(
                f"block_rumors must be >= 1, got {requested}"
            )
        return min(requested, n)
    per_bit = n * (1 + 2 * max(1, max_latency))  # bits resident per rumor
    block = int(budget * 8 // per_bit)
    block = max(64, block - block % 64)  # whole uint64 words
    return min(block, n)


class _BlockReplay:
    """One rumor block: the schedule replayed over an ``n x B`` bit slice.

    The replay drives the block's word matrix directly instead of going
    through the layout kernels: the state is private to the replay (no
    scalar consumer reads it mid-run), so the kernels' copy-on-write
    cache invalidation is dead weight, and fusing the duplicate-safe
    scatter with the saturation popcount lets the freshly merged rows be
    counted in place of a second gather.
    """

    #: Bucket-entry payload marker: "every source row was saturated, the
    #: payload is the all-ones row" (no gather was taken).
    _SATURATED = None

    def __init__(self, graph: LatencyGraph, lo: int, hi: int) -> None:
        nodes = graph.nodes()
        n = len(nodes)
        # Chunked layout holding this block's slice.  Rows are in node
        # order, so row index == the dense node id the schedule speaks.
        # The block's rumor universe is interned up front and the
        # storage allocated once at its exact width as a single column
        # part: one-at-a-time ``add_rumor`` would grow the layout
        # geometrically into many narrow parts, each charging its own
        # fancy-indexing pass per kernel call.
        state = ChunkedVectorState(nodes)
        for node in nodes[lo:hi]:
            state._space.intern(node)
        words = (hi - lo + 63) // 64
        state._init_storage(n, hi - lo, max_state_bytes=n * words * 8)
        for node in nodes[lo:hi]:
            state.add_rumor(node, node)
        self.state = state
        self.m = hi - lo
        self._words = state._blocks[0]  # the single (n, words) part
        popcounts = _popcount_rows(self._words)
        self._saturated = popcounts >= self.m
        self._nonzero = popcounts > 0
        self._full_row = None  # lazily: one copy of a saturated row

    def _fill_full(self, rows: np.ndarray) -> None:
        """Set ``rows`` to the all-ones row (delivery from saturated sources)."""
        if self._full_row is None:
            donor = int(np.flatnonzero(self._saturated)[0])
            self._full_row = self._words[donor].copy()
        self._words[rows] = self._full_row
        self._saturated[rows] = True
        self._nonzero[rows] = True

    def _deliver(self, rows: np.ndarray, pack: np.ndarray) -> None:
        """OR payload rows into ``rows``, duplicate-safe, and mark any row
        that reached all ``m`` block rumors as saturated — counting the
        freshly merged rows instead of re-gathering the state."""
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
        if starts.shape[0] == rows.shape[0]:
            targets, merged = rows, pack
        else:
            targets = sorted_rows[starts]
            sizes = np.diff(np.r_[starts, sorted_rows.shape[0]])
            merged = pack[order[starts]]
            for rank in range(1, int(sizes.max())):
                deep = np.flatnonzero(sizes > rank)
                merged[deep] |= pack[order[starts[deep] + rank]]
        words = self._words
        updated = words[targets]
        np.bitwise_or(updated, merged, out=updated)
        words[targets] = updated
        self._nonzero[targets] = True
        now_full = _popcount_rows(updated) >= self.m
        if now_full.any():
            self._saturated[targets[now_full]] = True

    def run(self, schedule: _RecordedSchedule, max_rounds: int) -> int:
        """Replay until every row holds all ``m`` block rumors; the round
        count equals the monolithic engine's completion round restricted
        to this block's rumors (checked before each round, like
        :func:`~repro.sim.runner.run_until_complete`).
        """
        words = self._words
        saturated = self._saturated
        buckets: dict[int, list[tuple[np.ndarray, object]]] = {}
        rnd = 0
        while not saturated.all():
            if rnd >= max_rounds:
                raise SimulationError(
                    f"streamed all-to-all exceeded max_rounds={max_rounds} "
                    f"(block of {self.m} rumors, round={rnd})"
                )
            # Deliveries due this round (initiated at rnd - latency).
            for rows, pack in buckets.pop(rnd, ()):
                live = ~saturated[rows]
                if not live.any():
                    continue
                if pack is self._SATURATED:
                    self._fill_full(rows[live])
                    continue
                if not live.all():
                    rows = rows[live]
                    pack = pack[live]
                self._deliver(rows, pack)
            # Initiations: snapshot payload rows *after* this round's
            # deliveries (the engine's deliver-then-initiate order), one
            # bucket entry per direction and latency.
            initiators, responders, latencies = schedule.round(rnd)
            for latency in np.unique(latencies).tolist():
                pick = latencies == latency
                src = initiators[pick]
                dst = responders[pick]
                due = buckets.setdefault(rnd + int(latency), [])
                for a, b in ((src, dst), (dst, src)):
                    # Payload of a -> merged into b at delivery.  A zero
                    # source row carries nothing for this block and a
                    # saturated destination can never change, so either
                    # way the delivery ORs to a no-op: drop those pairs
                    # before paying for the gather.
                    keep = self._nonzero[a] & ~saturated[b]
                    if not keep.all():
                        if not keep.any():
                            continue
                        a, b = a[keep], b[keep]
                    sat = saturated[a]
                    if sat.all():
                        due.append((b, self._SATURATED))
                        continue
                    if sat.any():
                        due.append((b[sat], self._SATURATED))
                        a, b = a[~sat], b[~sat]
                    due.append((b, words[a]))
            rnd += 1
        return rnd


def run_streamed_all_to_all(
    graph: LatencyGraph,
    seed: int = 0,
    max_rounds: int = 1_000_000,
    max_state_bytes: Optional[int] = None,
    block_rumors: Optional[int] = None,
) -> StreamReport:
    """Push--pull all-to-all dissemination, streamed over rumor blocks.

    Produces the *same* :class:`~repro.sim.metrics.DisseminationResult`
    as ``run_push_pull(graph, mode="all_to_all", seed=seed,
    backend="vector")`` — identical rounds, exchanges, and messages —
    while holding only one rumor block's state slice (plus its in-flight
    payload rows) resident at a time, so ``n = 10^6`` all-to-all runs in
    bounded memory where the monolithic dense matrix would need ~125 GB.

    Parameters
    ----------
    graph:
        The network.
    seed:
        Per-node RNG seed, matching :func:`~repro.protocols.push_pull.
        run_push_pull`.
    max_rounds:
        Round budget, enforced per block like
        :func:`~repro.sim.runner.run_until_complete`.
    max_state_bytes:
        Memory budget steering both the block size and the chunked
        layout's column blocks; ``None`` defers to the ambient
        :func:`~repro.sim.vector.state_budget` scope.
    block_rumors:
        Explicit rumors-per-block override (tests use a tiny value to
        force multi-block streaming on small graphs).
    """
    from repro.protocols.base import per_node_rng_factory
    from repro.protocols.push_pull import PushPullProtocol

    nodes = graph.nodes()
    n = len(nodes)
    if n == 0:
        raise SimulationError("streamed all-to-all needs a non-empty graph")
    budget = (
        max_state_bytes if max_state_bytes is not None else current_max_state_bytes()
    )
    block = _pick_block_rumors(n, graph.max_latency(), budget, block_rumors)

    make_rng = per_node_rng_factory(seed)
    # Selection-only engine over an empty dense state: its kernels never
    # run, only the cohort partner draws (identical RNG consumption to a
    # monolithic run of the same factory).
    recorder_engine = VectorEngine(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=VectorState(nodes),
    )
    schedule = _RecordedSchedule(recorder_engine)

    registry = default_registry()
    phases: list[PhaseTiming] = []
    rounds = 0
    peak_state = 0
    with state_budget(budget):
        for index, lo in enumerate(range(0, n, block)):
            hi = min(lo + block, n)
            started = time.perf_counter()
            replay = _BlockReplay(graph, lo, hi)
            block_rounds = replay.run(schedule, max_rounds)
            state_bytes = replay.state.state_nbytes()
            peak_state = max(peak_state, state_bytes)
            registry.gauge(
                "sim_state_bytes", "peak rumor-state storage bytes per layout"
            ).set_max(
                state_bytes,
                layout=replay.state.layout,
                protocol="streamed-push-pull[all_to_all]",
            )
            phases.append(
                PhaseTiming(
                    name=f"rumor block {index} [{lo}:{hi})",
                    rounds=block_rounds,
                    exchanges=schedule.exchanges_before(block_rounds),
                    seconds=time.perf_counter() - started,
                    backend="vector",
                )
            )
            rounds = max(rounds, block_rounds)
    registry.gauge(
        "sim_state_layout", "state layouts used, 1 per (layout, protocol)"
    ).set(1, layout="chunked", protocol="streamed-push-pull[all_to_all]")
    exchanges = schedule.exchanges_before(rounds)
    result = DisseminationResult(
        rounds=rounds,
        complete=True,
        exchanges=exchanges,
        messages=2 * exchanges,
        protocol="push-pull[all_to_all]",
    )
    return StreamReport(
        result=result,
        blocks=len(phases),
        block_rumors=block,
        schedule_rounds=len(schedule._rounds),
        peak_state_bytes=peak_state,
        phases=tuple(phases),
    )
