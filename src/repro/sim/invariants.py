"""Machine-checked model invariants for the gossip engine.

Every theorem reproduced in this library (Theorems 12, 14, 19, 20) is only
as trustworthy as the simulator's fidelity to the paper's synchronous
non-blocking latency model.  This module turns the prose of
``docs/MODEL.md`` into executable checks: an :class:`InvariantChecker`
plugs into either engine backend — the scalar
:class:`~repro.sim.engine.Engine` or the
:class:`~repro.sim.vector.VectorEngine` (which drops to its sequential
mirror path whenever checkers are attached, so I1–I5 observe the exact
same per-exchange event stream on both backends) — opt-in via
``Engine(..., checkers=default_checkers())``, and observes every round,
initiation, and delivery.  A violation raises
:class:`~repro.errors.SimulationError` carrying a round-stamped excerpt of
the most recent events, so a broken engine refactor fails loudly at the
exact round the model was first violated.

The invariants (numbered as in ``docs/MODEL.md`` section 6):

I1. **Single initiation** — each node initiates at most one exchange per
    round.
I2. **Exact latency** — an exchange over an edge of latency ``ℓ``
    initiated at round ``t`` delivers at exactly ``t + ℓ``.
I3. **Monotone knowledge** — rumor sets only grow, and note versions only
    increase (knowledge is never forgotten).
I4. **Symmetric merge** — at delivery, both live endpoints know at least
    the other endpoint's knowledge as of initiation (the push--pull
    symmetry of footnote 2; under ``fresh_snapshots`` the shipped state is
    delivery-time state, which monotonicity makes a superset of this).
I5. **Crashed silence** — a node crashed under the failure model never
    initiates.

Checkers are stateful per run: create fresh instances per engine (which is
what :func:`default_checkers` and the :func:`checked` context do).

Usage::

    engine = Engine(graph, factory, checkers=default_checkers())

    # or: force checking on every engine built in a scope, whichever
    # backend (``repro check --backend vector`` does exactly this)
    with checked():
        run_push_pull(graph, seed=0)
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import TYPE_CHECKING, NoReturn, Optional

from repro.errors import SimulationError
from repro.graphs.latency_graph import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim.engine imports us)
    from repro.sim.engine import Engine

__all__ = [
    "ExchangeView",
    "DeliveryView",
    "InvariantChecker",
    "SingleInitiationChecker",
    "DeliveryLatencyChecker",
    "MonotoneKnowledgeChecker",
    "SymmetricMergeChecker",
    "CrashedSilenceChecker",
    "default_checkers",
    "checked",
    "checking_enabled",
]


@dataclasses.dataclass(frozen=True)
class ExchangeView:
    """What a checker sees when an exchange is initiated.

    Attributes
    ----------
    initiator, responder:
        The endpoints (``initiator`` chose this contact).
    round:
        The initiation round.
    latency:
        The edge latency the engine believes it is using.
    ping_only:
        Whether the initiating protocol sends no payload.
    lost:
        Whether the failure model voided the exchange on the wire (it will
        never deliver, but it still consumes the initiator's turn).
    """

    initiator: Node
    responder: Node
    round: int
    latency: int
    ping_only: bool
    lost: bool


@dataclasses.dataclass(frozen=True)
class DeliveryView:
    """What a checker sees when an exchange delivers (or is voided).

    ``initiator_alive`` is ``False`` when the initiator crashed while the
    exchange was in flight: the responder still merges the request payload
    but the response goes nowhere.
    """

    initiator: Node
    responder: Node
    initiated_at: int
    delivered_at: int
    ping_only: bool
    initiator_alive: bool


class InvariantChecker:
    """Base class: observes engine events, raises on model violations.

    All hooks default to no-ops; subclasses override the ones they need
    and call :meth:`fail` on a violation.  One instance observes one
    engine run.  The ``engine`` the hooks receive is duck-typed: any
    backend exposing ``graph``/``state``/``round``/``failure_model`` and
    ``recent_checker_events()`` works (the scalar ``Engine`` and the
    ``VectorEngine`` sequential path both do).
    """

    #: Short name used in violation messages.
    name = "invariant"

    def on_attach(self, engine: "Engine") -> None:
        """Called once from ``Engine.__init__`` (protocols already set up)."""

    def on_round_start(self, engine: "Engine") -> None:
        """Called at the top of every ``Engine.step()``."""

    def on_initiation(self, engine: "Engine", exchange: ExchangeView) -> None:
        """Called for every accepted initiation (including lost ones)."""

    def on_delivery(self, engine: "Engine", delivery: DeliveryView) -> None:
        """Called after both merges of a delivered exchange, before the
        protocols' ``on_deliver`` callbacks run."""

    def on_exchange_void(self, engine: "Engine", delivery: DeliveryView) -> None:
        """Called when a due exchange is voided (responder crashed)."""

    def on_round_end(self, engine: "Engine") -> None:
        """Called at the bottom of every ``Engine.step()`` (same round)."""

    def on_run_end(self, engine: "Engine") -> None:
        """Called from ``Engine.finish_checks()`` when a run completes."""

    # ------------------------------------------------------------------
    def fail(self, engine: "Engine", message: str) -> NoReturn:
        """Raise :class:`SimulationError` with a round-stamped trace excerpt."""
        excerpt = engine.recent_checker_events()
        lines = [
            f"model invariant violated [{self.name}] at round {engine.round}: "
            f"{message}"
        ]
        if excerpt:
            lines.append("recent events:")
            lines.extend(f"  {event}" for event in excerpt)
        raise SimulationError("\n".join(lines))


class SingleInitiationChecker(InvariantChecker):
    """I1: at most one initiation per node per round."""

    name = "single-initiation"

    def __init__(self) -> None:
        self._initiated_this_round: set[Node] = set()

    def on_round_start(self, engine: "Engine") -> None:
        self._initiated_this_round.clear()

    def on_initiation(self, engine: "Engine", exchange: ExchangeView) -> None:
        if exchange.initiator in self._initiated_this_round:
            self.fail(
                engine,
                f"node {exchange.initiator!r} initiated twice in round "
                f"{exchange.round}",
            )
        self._initiated_this_round.add(exchange.initiator)


class DeliveryLatencyChecker(InvariantChecker):
    """I2: every delivery lands exactly ``latency(edge)`` after initiation."""

    name = "delivery-latency"

    def on_delivery(self, engine: "Engine", delivery: DeliveryView) -> None:
        if not engine.graph.has_edge(delivery.initiator, delivery.responder):
            self.fail(
                engine,
                f"delivery over non-edge ({delivery.initiator!r}, "
                f"{delivery.responder!r})",
            )
        expected = engine.graph.latency(delivery.initiator, delivery.responder)
        elapsed = delivery.delivered_at - delivery.initiated_at
        if elapsed != expected:
            self.fail(
                engine,
                f"exchange {delivery.initiator!r} -> {delivery.responder!r} "
                f"initiated at {delivery.initiated_at} delivered after "
                f"{elapsed} rounds; edge latency is {expected}",
            )


class MonotoneKnowledgeChecker(InvariantChecker):
    """I3: rumor sets never shrink; note versions never decrease."""

    name = "monotone-knowledge"

    def __init__(self) -> None:
        self._rumors: dict[Node, frozenset] = {}
        self._note_versions: dict[tuple[Node, Node], int] = {}

    def on_attach(self, engine: "Engine") -> None:
        self._scan(engine, initial=True)

    def on_round_end(self, engine: "Engine") -> None:
        self._scan(engine)

    def on_run_end(self, engine: "Engine") -> None:
        self._scan(engine)

    def _scan(self, engine: "Engine", initial: bool = False) -> None:
        state = engine.state
        for node in engine.graph.nodes():
            current = state.rumors(node)
            if not initial:
                previous = self._rumors.get(node, frozenset())
                if not previous <= current:
                    lost = sorted(previous - current, key=repr)
                    self.fail(
                        engine,
                        f"node {node!r} forgot rumors {lost[:5]!r} "
                        f"(knowledge must be monotone)",
                    )
            self._rumors[node] = current
            for origin in state.known_note_origins(node):
                note = state.note_of(node, origin)
                if note is None:
                    continue
                key = (node, origin)
                if not initial and note.version < self._note_versions.get(key, 0):
                    self.fail(
                        engine,
                        f"node {node!r} regressed note of {origin!r} to "
                        f"version {note.version} (had "
                        f"{self._note_versions[key]})",
                    )
                self._note_versions[key] = note.version


class SymmetricMergeChecker(InvariantChecker):
    """I4: both live endpoints absorb the peer's initiation-time knowledge.

    The checker snapshots both endpoints' rumor sets *independently* at
    initiation (it does not trust the payload the engine shipped) and, at
    delivery, asserts each live endpoint's knowledge covers the peer's
    snapshot.  Ping exchanges are exempt by design; under
    ``fresh_snapshots`` the engine ships delivery-time state, which is a
    superset of the initiation-time snapshot whenever I3 holds, so the
    check remains sound.
    """

    name = "symmetric-merge"

    def __init__(self) -> None:
        self._pending: dict[tuple[Node, Node, int], tuple[frozenset, frozenset]] = {}

    def on_initiation(self, engine: "Engine", exchange: ExchangeView) -> None:
        if exchange.ping_only or exchange.lost:
            return
        key = (exchange.initiator, exchange.responder, exchange.round)
        self._pending[key] = (
            engine.state.rumors(exchange.initiator),
            engine.state.rumors(exchange.responder),
        )

    def on_delivery(self, engine: "Engine", delivery: DeliveryView) -> None:
        if delivery.ping_only:
            return
        key = (delivery.initiator, delivery.responder, delivery.initiated_at)
        snapshots = self._pending.pop(key, None)
        if snapshots is None:
            self.fail(
                engine,
                f"delivery {delivery.initiator!r} -> {delivery.responder!r} "
                f"(initiated at {delivery.initiated_at}) has no matching "
                "initiation",
            )
        initiator_knew, responder_knew = snapshots
        if not initiator_knew <= engine.state.rumors(delivery.responder):
            missing = sorted(
                initiator_knew - engine.state.rumors(delivery.responder), key=repr
            )
            self.fail(
                engine,
                f"responder {delivery.responder!r} did not learn "
                f"{missing[:5]!r} from {delivery.initiator!r} "
                f"(round-{delivery.initiated_at} knowledge)",
            )
        if delivery.initiator_alive and not responder_knew <= engine.state.rumors(
            delivery.initiator
        ):
            missing = sorted(
                responder_knew - engine.state.rumors(delivery.initiator), key=repr
            )
            self.fail(
                engine,
                f"initiator {delivery.initiator!r} did not learn "
                f"{missing[:5]!r} from {delivery.responder!r} "
                f"(round-{delivery.initiated_at} knowledge)",
            )

    def on_exchange_void(self, engine: "Engine", delivery: DeliveryView) -> None:
        self._pending.pop(
            (delivery.initiator, delivery.responder, delivery.initiated_at), None
        )


class CrashedSilenceChecker(InvariantChecker):
    """I5: a node crashed under the failure model never initiates."""

    name = "crashed-silence"

    def on_initiation(self, engine: "Engine", exchange: ExchangeView) -> None:
        model = engine.failure_model
        if model is not None and model.node_crashed(exchange.initiator, exchange.round):
            self.fail(
                engine,
                f"crashed node {exchange.initiator!r} initiated an exchange "
                f"with {exchange.responder!r}",
            )


def default_checkers() -> list[InvariantChecker]:
    """Fresh instances of every model-invariant checker (I1--I5)."""
    return [
        SingleInitiationChecker(),
        DeliveryLatencyChecker(),
        MonotoneKnowledgeChecker(),
        SymmetricMergeChecker(),
        CrashedSilenceChecker(),
    ]


_CHECKED_DEPTH = 0


def checking_enabled() -> bool:
    """Whether a :func:`checked` scope is active."""
    return _CHECKED_DEPTH > 0


@contextlib.contextmanager
def checked():
    """Attach :func:`default_checkers` to every Engine built in this scope.

    The knob behind ``run_experiment(..., checked=True)`` and the
    ``repro check`` CLI: engines constructed with ``checkers=None`` (the
    default) pick up a fresh set of default checkers while the context is
    active.  Engines passing an explicit checker list are unaffected.
    Reentrant; not thread-safe (our experiment harness is single-threaded).
    """
    global _CHECKED_DEPTH
    _CHECKED_DEPTH += 1
    try:
        yield
    finally:
        _CHECKED_DEPTH -= 1
