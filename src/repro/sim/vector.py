"""Vectorized engine backend: whole-round array ops for oblivious protocols.

The scalar :class:`~repro.sim.engine.Engine` walks every node with Python
calls each round, which caps experiments near ``n ≈ 10⁴``.  This module
provides a second backend, :class:`VectorEngine`, that advances an entire
round as a handful of numpy array operations:

* **State** lives in one of a family of memory-specialized layouts behind
  the :class:`VectorState` API (see below), so merging all of a round's
  deliveries is one duplicate-safe segmented OR (:func:`_scatter_or`)
  instead of per-exchange Python merges.
* **Partner selection** reads a CSR layout built from
  :meth:`~repro.graphs.latency_graph.LatencyGraph.adjacency_arrays`, with
  neighbor slots ordered by ``repr`` — exactly the order the oblivious
  protocols sort their neighbor lists in — so the same per-node
  ``random.Random`` streams produce the same partners as the scalar run.
  Protocols cycling a *custom* target list (RR Broadcast over spanner
  out-edges) declare it via :attr:`VectorProgram.targets` and get their
  own CSR built — and neighbor-validated — at engine construction.
* **Delivery buckets** are arrays of in-flight exchanges keyed by their
  delivery round (latency slices of one round's initiations), mirroring
  the scalar engine's ``dict.pop`` bucket scheme at array granularity.
* **Metrics and coverage** come from array reductions: payload sizes via
  popcounts, activated edges via a boolean edge-id array folded back into
  the canonical :class:`~repro.sim.metrics.EngineMetrics` set on demand.

State layouts (the ``n = 10⁶`` memory story)
--------------------------------------------
A dense ``n × ceil(B/64)`` uint64 bitset matrix (``B`` = rumor-space
size) is ~125 GB at ``n = 10⁶`` all-to-all — memory, not compute, binds
the fast backend at mega-scale.  Three layouts share the full
:class:`~repro.sim.state.NetworkState` API and produce bit-identical
runs; :meth:`VectorState.from_network_state` picks one automatically from
the *observed* rumor universe and the ambient :func:`state_budget`:

* **dense** (:class:`VectorState`) — the packed uint64 matrix; default
  for small states and the only layout that can grow its rumor space.
* **broadcast** (:class:`BroadcastVectorState`) — one uint8 column per
  rumor, chosen for small universes (``k <= 8``): O(n·k) bytes, which
  covers every broadcast-style run at ~1 byte/node.
* **chunked** (:class:`ChunkedVectorState`) — the bitset matrix split
  into column blocks each at most ``max_state_bytes`` big, streamed
  through the round update so the largest single allocation (and each
  per-block scatter/gather transient) is budget-bounded.  The *sum* of
  resident blocks and the initiation-time payload snapshots in flight
  are inherent to the model and not bounded by the budget.

Backend eligibility (see ``docs/MODEL.md`` §8): only **oblivious**
protocols — whose partner choice does not depend on delivered knowledge
beyond a fixed knows/not-knows gate and which take no per-delivery
actions — can be replayed as whole-round array ops.  Protocols declare
eligibility by returning a :class:`VectorProgram` from a
``vector_program()`` method; a protocol that locally terminates must
declare its fixed round budget via :attr:`VectorProgram.duration`
(RR Broadcast does), anything else is rejected with a
:class:`~repro.errors.SimulationError` naming the offending protocol.

Exactness contract: for the same graph, seeds, and engine options, a
``VectorEngine`` run is **field-identical** to the scalar ``Engine`` run —
same per-node knowledge each round, same ``EngineMetrics``, same
completion round — in every layout.  The differential suites
(``tests/test_vector_differential``, ``tests/test_vector_layouts``) and
the golden-trace parity suite enforce this.

When a run needs observability or model features the array path cannot
replay in order (invariant checkers, a recorder, a failure model,
``fresh_snapshots``, ``enforce_blocking``, or note boards carried in from
a previous phase), the engine transparently drops to a **sequential
path** — a faithful per-exchange mirror of the scalar engine (including
its done-node parking and delivery wake-ups) operating on the layout
state — so event streams stay byte-identical to the scalar backend's at
small ``n``, and a recorder-off run keeps the zero-cost array fast path.
"""

from __future__ import annotations

import bisect
import collections
import contextlib
import dataclasses
import os
import random
import weakref
from typing import Any, Callable, Hashable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.events import (
    BlockedInitiationEvent,
    DeliveryEvent,
    InitiationEvent,
    RejectedInitiationEvent,
    RoundEvent,
    VoidExchangeEvent,
    WakeupEvent,
)
from repro.obs.recorder import Recorder
from repro.sim import invariants as _invariants
from repro.sim.engine import (
    _CHECKER_LOG_SIZE,
    _EMPTY_PAYLOAD,
    Delivery,
    Engine,
    NodeContext,
    NodeProtocol,
    ProtocolFactory,
    _InFlight,
)
from repro.sim.failures import FailureModel
from repro.sim.invariants import DeliveryView, ExchangeView, InvariantChecker
from repro.sim.metrics import EngineMetrics
from repro.sim.state import NetworkState, Note, Payload, _RumorSpace

__all__ = [
    "VectorProgram",
    "VectorState",
    "BroadcastVectorState",
    "ChunkedVectorState",
    "STATE_LAYOUTS",
    "VectorEngine",
    "ENGINE_BACKENDS",
    "DEFAULT_MAX_STATE_BYTES",
    "current_engine_backend",
    "current_max_state_bytes",
    "engine_backend",
    "resolve_engine_backend",
    "state_budget",
    "vector_ineligibility",
]


# ----------------------------------------------------------------------
# Popcount: hardware instruction when numpy provides it, byte LUT otherwise.
if hasattr(np, "bitwise_count"):

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a uint64 bit matrix (vectorized)."""
        return np.bitwise_count(matrix).sum(axis=-1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount via a byte lookup table (numpy < 2 fallback)."""
        return _POPCOUNT_LUT[matrix.view(np.uint8)].sum(axis=-1, dtype=np.int64)


def _scatter_or(bits: np.ndarray, rows: np.ndarray, payloads: np.ndarray) -> None:
    """OR each payload row into ``bits[row]``, duplicate-safe.

    Plain fancy-index assignment (``bits[rows] |= payloads``) silently
    keeps only one update per duplicated row index; a round's deliveries
    routinely hit the same responder many times.  Duplicate-free calls
    (the common case under random partner selection) take the plain
    fancy read-modify-write directly; otherwise duplicated segments are
    pre-merged rank by rank — the deepest pile-up on one row is small
    (Poisson in-degree), so a few bulk ``|=`` passes beat a segmented
    ``np.bitwise_or.reduceat``, which degenerates to per-segment loops.
    """
    if rows.shape[0] == 0:
        return
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
    if starts.shape[0] == rows.shape[0]:
        bits[rows] |= payloads
        return
    sizes = np.diff(np.r_[starts, sorted_rows.shape[0]])
    merged = payloads[order[starts]]
    for rank in range(1, int(sizes.max())):
        deep = np.flatnonzero(sizes > rank)
        merged[deep] |= payloads[order[starts[deep] + rank]]
    bits[sorted_rows[starts]] |= merged


def _randbelow_of(rng: random.Random) -> Callable[[int], int]:
    """The primitive ``Random.choice(seq)`` consumes: ``_randbelow(len(seq))``.

    Binding it once per node keeps the per-round Python cost of the random
    cohorts to one call per initiating node; ``randrange`` consumes the
    underlying stream identically and serves as the fallback.
    """
    return getattr(rng, "_randbelow", rng.randrange)


# ----------------------------------------------------------------------
# State-memory budget scope: how many bytes the largest single state
# allocation may use.  ``from_network_state`` consults this when picking
# a layout; the chunked layout sizes its column blocks from it.
DEFAULT_MAX_STATE_BYTES = 1 << 30  # 1 GiB

_STATE_BUDGET_STACK: list[int] = []


def current_max_state_bytes() -> int:
    """The state-memory budget in effect (innermost scope, env, or default)."""
    if _STATE_BUDGET_STACK:
        return _STATE_BUDGET_STACK[-1]
    raw = os.environ.get("REPRO_MAX_STATE_BYTES", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise SimulationError(
                f"REPRO_MAX_STATE_BYTES must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise SimulationError(
                f"REPRO_MAX_STATE_BYTES must be >= 1, got {value}"
            )
        return value
    return DEFAULT_MAX_STATE_BYTES


@contextlib.contextmanager
def state_budget(max_bytes: int) -> Iterator[None]:
    """Scope during which :func:`current_max_state_bytes` yields ``max_bytes``.

    This is how ``repro --max-state-bytes`` and the runner helpers steer
    layout selection in a call tree without threading a parameter through
    each layer (the same pattern as :func:`engine_backend`).
    """
    if max_bytes < 1:
        raise SimulationError(f"max_state_bytes must be >= 1, got {max_bytes}")
    _STATE_BUDGET_STACK.append(int(max_bytes))
    try:
        yield
    finally:
        _STATE_BUDGET_STACK.pop()


#: CSR layouts are pure functions of a graph revision, and engines are
#: routinely rebuilt over one memoized graph (benchmark repeats, seed
#: ladders), so the repr-sort and edge-id mapping are cached per graph.
#: Keyed by ``id(graph)`` (graphs are unhashable); a weakref callback
#: evicts the entry when the graph is collected, before its id can be
#: reused.
_CSR_CACHE: dict[int, tuple] = {}


def _csr_arrays(graph: LatencyGraph) -> tuple:
    """``(deg, off, nbr, lat, eid, edge_tuples)`` for ``graph``, cached.

    ``nbr`` holds each node's neighbors as dense ids in ``repr`` order —
    the order the oblivious protocols sort their neighbor lists in — so a
    slot index drawn from the same RNG stream lands on the same partner.
    ``eid`` maps each CSR slot to its undirected edge id in
    :meth:`~repro.graphs.latency_graph.LatencyGraph.edge_arrays` order,
    and ``edge_tuples[e]`` is edge ``e`` as a canonical node-pair tuple.
    """
    version = getattr(graph, "_version", None)
    key = id(graph)
    cached = _CSR_CACHE.get(key)
    if (
        cached is not None
        and version is not None
        and cached[0] == version
        and cached[1]() is graph
    ):
        return cached[2:]
    order = graph.nodes()
    n = len(order)
    neighbor_ids, neighbor_lats = graph.adjacency_arrays()
    reprs = [repr(node) for node in order]
    deg = np.fromiter((len(row) for row in neighbor_ids), dtype=np.int64, count=n)
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=off[1:])
    nbr = np.zeros(int(off[-1]), dtype=np.int64)
    lat = np.zeros(int(off[-1]), dtype=np.int64)
    for i in range(n):
        row = neighbor_ids[i]
        if not row:
            continue
        slot_order = sorted(range(len(row)), key=lambda k: reprs[row[k]])
        lrow = neighbor_lats[i]
        nbr[off[i] : off[i + 1]] = [row[k] for k in slot_order]
        lat[off[i] : off[i + 1]] = [lrow[k] for k in slot_order]
    us, vs, _ = graph.edge_arrays()
    keys = us * n + vs
    key_order = np.argsort(keys, kind="stable")
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    lo = np.minimum(src, nbr)
    hi = np.maximum(src, nbr)
    eid = key_order[np.searchsorted(keys[key_order], lo * n + hi)]
    # Canonical (u, v) node tuples per edge id, built once: rebuilding the
    # activated-edges set then costs one list index per active edge.
    edge_tuples = [
        (order[u], order[v]) for u, v in zip(us.tolist(), vs.tolist())
    ]
    arrays = (deg, off, nbr, lat, eid, edge_tuples)
    if version is not None:
        try:
            ref = weakref.ref(
                graph, lambda _ref, key=key: _CSR_CACHE.pop(key, None)
            )
        except TypeError:  # pragma: no cover - non-weakref-able graph type
            pass
        else:
            _CSR_CACHE[key] = (version, ref) + arrays
    return arrays


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VectorProgram:
    """Declarative partner-selection rule an oblivious protocol exports.

    Attributes
    ----------
    kind:
        ``"random"`` — contact a uniform random neighbor (push--pull and
        its gated push/pull variants) — or ``"round_robin"`` — cycle the
        repr-sorted neighbor list (flooding) or the explicit ``targets``
        list (RR Broadcast) deterministically.
    rng:
        For ``kind="random"``: the protocol's own per-node
        :class:`random.Random`.  The backend consumes it exactly as
        ``Random.choice`` over the repr-sorted neighbor list would, so
        scalar and vector runs of the same seed pick the same partners.
    gate:
        ``None`` (always initiate) or ``("knows", rumor)`` /
        ``("not_knows", rumor)``: the node only initiates in rounds where
        the condition holds against the shared state.  Gated-out nodes
        consume no randomness, matching the scalar protocols which return
        early before touching their RNG.
    start:
        Initial round-robin offset, mirroring any counter the protocol
        advanced before the engine adopted it.
    targets:
        ``None`` (cycle the repr-sorted full neighbor list) or an
        explicit tuple of neighbor nodes to cycle instead — the directed
        spanner out-edges of RR Broadcast.  Only ``kind="round_robin"``
        supports targets; every target must be a graph neighbor of the
        node (validated at engine construction, where the scalar engine
        would have raised on first contact).
    duration:
        ``None`` (the protocol never terminates locally — classic
        oblivious gossip) or the number of rounds the node initiates
        before parking, mirroring a fixed-budget ``is_done()``.  A
        protocol overriding ``is_done()`` must declare a duration to be
        vector-eligible; the engine is then all-done once every node's
        budget has elapsed, exactly like the scalar parking scheduler.
    """

    kind: str
    rng: Optional[random.Random] = None
    gate: Optional[tuple[str, Hashable]] = None
    start: int = 0
    targets: Optional[tuple[Node, ...]] = None
    duration: Optional[int] = None


# ----------------------------------------------------------------------
class VectorState:
    """Packed-bitset network state: one row of uint64 rumor bits per node.

    Implements the full :class:`~repro.sim.state.NetworkState` API
    (rumors, coverage, note boards, snapshot/merge interop via
    :class:`~repro.sim.state.Payload`) over an ``n × words`` uint64
    matrix, so the vector engine's array kernels and every scalar
    consumer (completion predicates, invariant checkers, the sequential
    mirror path) read the same storage.

    This class is both the **dense** layout and the base of the
    specialized layouts (:class:`BroadcastVectorState`,
    :class:`ChunkedVectorState`): subclasses replace only the storage
    primitives (``_init_storage``/``_ensure_bit``/``_set_bit``/
    ``_mask_of_row``/``_or_row_storage``) and the array kernels the fast
    path drives (``_k_*``); the shared API layer — snapshots with a
    copy-on-write cache, merges over cached Python-int row masks, note
    boards — is layout-agnostic.
    """

    __slots__ = (
        "_node_index",
        "_node_list",
        "_space",
        "_bits",
        "_notes",
        "_snapshots",
        "_masks_cache",
        "_cache_filled",
    )

    #: Layout name surfaced in metrics/manifests (``sim_state_layout``).
    layout = "dense"

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._node_index: dict[Node, int] = {}
        self._node_list: list[Node] = []
        for node in nodes:
            if node not in self._node_index:
                self._node_index[node] = len(self._node_list)
                self._node_list.append(node)
        n = len(self._node_list)
        self._space = _RumorSpace()
        self._notes: list[dict[Node, Note]] = [{} for _ in range(n)]
        # Copy-on-write caches, invalidated per node on change (the
        # NetworkState pattern): reused Payload snapshots and Python-int
        # row masks, so the sequential mirror path's snapshot/merge
        # hotspots stop re-packing unchanged rows.
        self._snapshots: list[Optional[Payload]] = [None] * n
        self._masks_cache: list[Optional[int]] = [None] * n
        self._cache_filled = False
        self._init_storage(n, 0)

    @classmethod
    def from_network_state(
        cls,
        state: NetworkState,
        *,
        layout: Optional[str] = None,
        max_state_bytes: Optional[int] = None,
    ) -> "VectorState":
        """A bitset copy of a scalar state (same tokens, same bit indices).

        The layout is picked from the **observed** rumor universe: a
        small universe (``k <= 8`` tokens — every broadcast-style run)
        gets the O(n·k)-byte broadcast layout, a universe whose dense
        matrix fits ``max_state_bytes`` (default: the ambient
        :func:`state_budget` scope, the ``REPRO_MAX_STATE_BYTES`` env
        var, or 1 GiB) stays dense, and anything larger is chunked into
        budget-bounded column blocks.  ``layout`` forces a specific
        layout (``"dense"``/``"broadcast"``/``"chunked"``); calling this
        on a subclass keeps that subclass's layout.
        """
        tokens = len(state._space.tokens)
        n = len(state._node_list)
        if layout is not None:
            try:
                chosen = STATE_LAYOUTS[layout]
            except KeyError:
                raise SimulationError(
                    f"unknown state layout {layout!r}; available: "
                    + ", ".join(sorted(STATE_LAYOUTS))
                ) from None
        elif cls is not VectorState:
            chosen = cls
        else:
            budget = (
                max_state_bytes
                if max_state_bytes is not None
                else current_max_state_bytes()
            )
            words = max(1, (tokens + 63) // 64)
            if 0 < tokens <= _BROADCAST_MAX_RUMORS:
                chosen = BroadcastVectorState
            elif n * words * 8 <= budget:
                chosen = VectorState
            else:
                chosen = ChunkedVectorState
        out = chosen.__new__(chosen)
        out._node_index = dict(state._node_index)
        out._node_list = list(state._node_list)
        out._space = _RumorSpace()
        out._space.index = dict(state._space.index)
        out._space.tokens = list(state._space.tokens)
        out._notes = [dict(board) for board in state._notes]
        out._snapshots = [None] * n
        out._masks_cache = [None] * n
        out._cache_filled = False
        out._init_storage(n, tokens, max_state_bytes)
        out._load_masks(state._masks)
        return out

    def to_layout(
        self,
        layout: Optional[str] = None,
        max_state_bytes: Optional[int] = None,
    ) -> "VectorState":
        """This state rebuilt in another layout (same tokens, same bits).

        The phase carry-over API: a scalar-fallback phase may have grown
        the rumor universe past the layout the previous vector phase
        picked, so :class:`~repro.protocols.base.PhaseRunner` re-picks a
        layout here before handing the state to the next vector phase —
        without densifying through a :class:`NetworkState` copy.
        ``layout=None`` re-picks automatically with the same rule as
        :meth:`from_network_state`; the conversion is a whole-matrix
        array transform (no per-row Python masks).  Returns ``self``
        unchanged when the chosen layout is already this one.
        """
        tokens = len(self._space.tokens)
        n = len(self._node_list)
        if layout is not None:
            try:
                chosen = STATE_LAYOUTS[layout]
            except KeyError:
                raise SimulationError(
                    f"unknown state layout {layout!r}; available: "
                    + ", ".join(sorted(STATE_LAYOUTS))
                ) from None
        else:
            budget = (
                max_state_bytes
                if max_state_bytes is not None
                else current_max_state_bytes()
            )
            words = max(1, (tokens + 63) // 64)
            if 0 < tokens <= _BROADCAST_MAX_RUMORS:
                chosen = BroadcastVectorState
            elif n * words * 8 <= budget:
                chosen = VectorState
            else:
                chosen = ChunkedVectorState
        if chosen is type(self):
            return self
        out = chosen.__new__(chosen)
        out._node_index = dict(self._node_index)
        out._node_list = list(self._node_list)
        out._space = _RumorSpace()
        out._space.index = dict(self._space.index)
        out._space.tokens = list(self._space.tokens)
        out._notes = [dict(board) for board in self._notes]
        out._snapshots = [None] * n
        out._masks_cache = [None] * n
        out._cache_filled = False
        out._init_storage(n, tokens, max_state_bytes)
        out._load_words(self._words_matrix())
        return out

    # -- storage primitives (overridden per layout) ----------------------
    def _init_storage(
        self, n: int, bits: int, max_state_bytes: Optional[int] = None
    ) -> None:
        """Allocate zeroed storage addressing bit indices ``0..bits-1``."""
        words = max(1, (bits + 63) // 64)
        self._bits = np.zeros((n, words), dtype=np.uint64)

    def _ensure_bit(self, bit: int) -> None:
        """Grow the matrix (doubling words) until ``bit`` is addressable."""
        words = self._bits.shape[1]
        if bit < words * 64:
            return
        grown_words = words
        while bit >= grown_words * 64:
            grown_words *= 2
        grown = np.zeros((self._bits.shape[0], grown_words), dtype=np.uint64)
        grown[:, :words] = self._bits
        self._bits = grown

    def _set_bit(self, i: int, bit: int) -> None:
        """Set one addressable bit in row ``i`` (no growth, no caches)."""
        word, offset = divmod(bit, 64)
        self._bits[i, word] |= np.uint64(1 << offset)

    def _mask_of_row(self, i: int) -> int:
        """Recompute row ``i`` as an arbitrary-precision Python-int bitmask."""
        return int.from_bytes(self._bits[i].tobytes(), "little")

    def _or_row_storage(self, i: int, mask: int) -> None:
        """OR an addressable ``mask`` into row ``i`` (no growth, no caches)."""
        words = self._bits.shape[1]
        self._bits[i] |= np.frombuffer(
            mask.to_bytes(words * 8, "little"), dtype=np.uint64
        )

    def _load_masks(self, masks: Sequence[int]) -> None:
        """Bulk-load per-node masks into fresh zeroed storage."""
        words = self._bits.shape[1]
        for i, mask in enumerate(masks):
            if mask:
                self._bits[i] = np.frombuffer(
                    mask.to_bytes(words * 8, "little"), dtype=np.uint64
                )

    # -- layout conversion (``to_layout``) -------------------------------
    # Conversions move whole matrices: every layout can export its storage
    # as the canonical ``n × words`` uint64 view and import one, so a
    # layout switch costs one packbits/unpackbits/hstack-style transform
    # instead of n Python-int round-trips.
    def _words_matrix(self) -> np.ndarray:
        """Storage as the canonical dense uint64 word matrix (a view/copy)."""
        return self._bits

    def _load_words(self, words: np.ndarray) -> None:
        """Bulk-load a dense word matrix into fresh zeroed storage.

        Width mismatches are benign: any extra source columns are padding
        beyond the interned rumor universe and therefore all-zero.
        """
        width = min(self._bits.shape[1], words.shape[1])
        self._bits[:, :width] = words[:, :width]

    # -- packed-row plumbing --------------------------------------------
    def _row_mask(self, i: int) -> int:
        """Row ``i`` as a Python-int bitmask (cached until the row changes)."""
        cached = self._masks_cache[i]
        if cached is None:
            cached = self._mask_of_row(i)
            self._masks_cache[i] = cached
            self._cache_filled = True
        return cached

    def _or_row(self, i: int, mask: int) -> None:
        if not mask:
            return
        self._ensure_bit(mask.bit_length() - 1)
        self._or_row_storage(i, mask)
        cached = self._masks_cache[i]
        if cached is not None:
            self._masks_cache[i] = cached | mask
        self._snapshots[i] = None

    def _invalidate_rows(self, rows: np.ndarray) -> None:
        """Drop cached masks/snapshots for rows an array kernel mutated."""
        if not self._cache_filled:
            return
        snapshots = self._snapshots
        masks = self._masks_cache
        for i in set(rows.tolist()):
            snapshots[i] = None
            masks[i] = None

    # -- memory accounting ----------------------------------------------
    def state_nbytes(self) -> int:
        """Resident bytes of the rumor-state storage (the layout's matrix)."""
        return int(self._bits.nbytes)

    # -- NetworkState API -----------------------------------------------
    def nodes(self) -> list[Node]:
        """All nodes this state tracks, in insertion order."""
        return list(self._node_list)

    def add_rumor(self, node: Node, rumor: Hashable) -> None:
        """Give ``node`` knowledge of ``rumor``."""
        i = self._node_index[node]
        bit = self._space.intern(rumor)
        self._ensure_bit(bit)
        self._set_bit(i, bit)
        cached = self._masks_cache[i]
        if cached is not None:
            self._masks_cache[i] = cached | (1 << bit)
        self._snapshots[i] = None

    def seed_self_rumors(self) -> None:
        """Give every node its own id as a rumor (all-to-all dissemination)."""
        for node in self._node_list:
            self.add_rumor(node, node)

    def rumors(self, node: Node) -> frozenset:
        """The rumors ``node`` currently knows."""
        return self._space.unpack(self._row_mask(self._node_index[node]))

    def rumor_count(self, node: Node) -> int:
        """How many rumors ``node`` knows (one vectorized popcount)."""
        return int(_popcount_rows(self._bits[self._node_index[node]]))

    def min_rumor_count(self) -> int:
        """The smallest per-node rumor count (one matrix popcount).

        Multi-rumor phase gates ("every node knows >= m rumors") reduce to
        ``min_rumor_count() >= m``; see
        :func:`~repro.sim.runner.min_rumors_complete`.
        """
        if self._bits.shape[0] == 0:
            return 0
        return int(_popcount_rows(self._bits).min())

    def knows(self, node: Node, rumor: Hashable) -> bool:
        """Whether ``node`` knows ``rumor``."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return False
        word, offset = divmod(bit, 64)
        if word >= self._bits.shape[1]:
            return False
        return bool(self._bits[self._node_index[node], word] & np.uint64(1 << offset))

    def count_knowing(self, rumor: Hashable) -> int:
        """How many nodes know ``rumor`` (one column reduction)."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return 0
        word, offset = divmod(bit, 64)
        if word >= self._bits.shape[1]:
            return 0
        return int(
            np.count_nonzero(self._bits[:, word] & np.uint64(1 << offset))
        )

    def knows_every(
        self, nodes: Iterable[Node], rumors: Iterable[Hashable]
    ) -> bool:
        """Whether every node in ``nodes`` knows every rumor in ``rumors``.

        One vectorized mask comparison over the packed rows instead of
        materializing per-node rumor frozensets (which is O(n²) on an
        all-to-all completeness check).
        """
        index = self._space.index
        words = self._bits.shape[1]
        required = np.zeros(words, dtype=np.uint64)
        for rumor in rumors:
            bit = index.get(rumor)
            if bit is None or bit >= words * 64:
                return False
            word, offset = divmod(bit, 64)
            required[word] |= np.uint64(1 << offset)
        rows = self._bits[[self._node_index[node] for node in nodes]]
        return bool(((rows & required) == required).all())

    # -- notes ----------------------------------------------------------
    def publish_note(self, origin: Node, **data: Any) -> None:
        """Write/overwrite ``origin``'s own note, bumping its version."""
        i = self._node_index[origin]
        old = self._notes[i].get(origin)
        version = (old.version + 1) if old is not None else 1
        self._notes[i][origin] = Note(
            version=version, data=tuple(sorted(data.items()))
        )
        self._snapshots[i] = None

    def note_of(self, reader: Node, origin: Node) -> Optional[Note]:
        """The note of ``origin`` as currently known by ``reader`` (or ``None``)."""
        return self._notes[self._node_index[reader]].get(origin)

    def known_note_origins(self, reader: Node) -> list[Node]:
        """All origins whose notes ``reader`` has seen."""
        return list(self._notes[self._node_index[reader]])

    def clear_notes(self) -> None:
        """Drop every note board."""
        for i, board in enumerate(self._notes):
            if board:
                board.clear()
                self._snapshots[i] = None

    # -- exchange plumbing ----------------------------------------------
    def snapshot(self, node: Node) -> Payload:
        """An immutable snapshot of everything ``node`` knows right now.

        Copy-on-write: the returned :class:`Payload` is cached and reused
        until the node's rumors or note board next change, so
        snapshotting an unchanged node is O(1) — the same contract as
        :meth:`NetworkState.snapshot`.
        """
        i = self._node_index[node]
        payload = self._snapshots[i]
        if payload is None:
            payload = Payload(
                notes=tuple(self._notes[i].items()),
                mask=self._row_mask(i),
                space=self._space,
            )
            self._snapshots[i] = payload
            self._cache_filled = True
        return payload

    def merge(self, node: Node, payload: Payload) -> bool:
        """Merge a received snapshot; returns ``True`` if anything was new."""
        i = self._node_index[node]
        if payload._space is self._space and payload._mask is not None:
            incoming = payload._mask
        else:
            incoming = 0
            for rumor in payload.rumors:
                incoming |= 1 << self._space.intern(rumor)
        mine = self._row_mask(i)
        changed = False
        if incoming & ~mine:
            self._ensure_bit(incoming.bit_length() - 1)
            self._or_row_storage(i, incoming)
            self._masks_cache[i] = mine | incoming
            self._snapshots[i] = None
            changed = True
        board = self._notes[i]
        for origin, note in payload.notes:
            current = board.get(origin)
            if current is None or note.version > current.version:
                board[origin] = note
                self._snapshots[i] = None
                changed = True
        return changed

    # -- array kernels (the vector fast path) ----------------------------
    # A "pack" is the layout's opaque payload representation for a batch
    # of rows: a 2-D array for dense/broadcast, a list of per-block 2-D
    # arrays for chunked.  The engine only moves packs between kernels.
    def _k_width(self) -> tuple:
        """Storage-shape fingerprint; a mid-run change means the rumor
        space grew, which the fast path forbids."""
        return ("dense", self._bits.shape[1])

    def _k_gather(self, rows: np.ndarray) -> Any:
        """Payload pack: a copy of the given state rows."""
        return self._bits[rows]

    def _k_popcounts(self, pack: Any, count: int) -> np.ndarray:
        """Per-row rumor counts of a pack of ``count`` rows."""
        return _popcount_rows(pack)

    def _k_select(self, pack: Any, pick: Any) -> Any:
        """Subset/reorder of a pack (boolean mask, int indices, or
        ``slice(None)``)."""
        return pack[pick]

    def _k_vstack(self, packs: list) -> Any:
        """Concatenate packs row-wise, preserving order."""
        return np.vstack(packs)

    def _k_scatter(self, rows: np.ndarray, pack: Any) -> None:
        """OR a pack into the given state rows, duplicate-safe."""
        _scatter_or(self._bits, rows, pack)
        self._invalidate_rows(rows)

    def _k_row_popcounts(self, rows: np.ndarray) -> np.ndarray:
        """Per-row rumor counts of the given *state* rows (the mirror
        path's learned-count probe)."""
        return _popcount_rows(self._bits[rows])

    def _k_knows_column(self, rows: np.ndarray, rumor: Hashable) -> np.ndarray:
        """Boolean array: whether each given state row knows ``rumor``."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return np.zeros(rows.shape[0], dtype=bool)
        word, offset = divmod(bit, 64)
        if word >= self._bits.shape[1]:
            return np.zeros(rows.shape[0], dtype=bool)
        return (self._bits[rows, word] & np.uint64(1 << offset)) != 0


class BroadcastVectorState(VectorState):
    """Broadcast layout: one uint8 column per rumor — O(n·k) bytes.

    For single-rumor (and small-k) runs the dense layout wastes a full
    64-bit word per node; this layout stores exactly one byte per
    (node, rumor) cell, so an ``n = 10⁶`` broadcast run keeps its whole
    rumor state in ~1 MB.  Bit indices coincide with column indices, so
    runs are bit-identical to the dense layout by construction.
    """

    __slots__ = ("_cols",)

    layout = "broadcast"

    def _init_storage(
        self, n: int, bits: int, max_state_bytes: Optional[int] = None
    ) -> None:
        self._cols = np.zeros((n, bits), dtype=np.uint8)

    def _ensure_bit(self, bit: int) -> None:
        k = self._cols.shape[1]
        if bit < k:
            return
        grown = np.zeros((self._cols.shape[0], bit + 1), dtype=np.uint8)
        grown[:, :k] = self._cols
        self._cols = grown

    def _set_bit(self, i: int, bit: int) -> None:
        self._cols[i, bit] = 1

    def _mask_of_row(self, i: int) -> int:
        row = self._cols[i]
        if not row.any():
            return 0
        return int.from_bytes(
            np.packbits(row, bitorder="little").tobytes(), "little"
        )

    def _or_row_storage(self, i: int, mask: int) -> None:
        width = self._cols.shape[1]
        data = np.frombuffer(
            mask.to_bytes((width + 7) // 8, "little"), dtype=np.uint8
        )
        self._cols[i] |= np.unpackbits(data, count=width, bitorder="little")

    def _load_masks(self, masks: Sequence[int]) -> None:
        for i, mask in enumerate(masks):
            bits = mask
            while bits:
                low = bits & -bits
                self._cols[i, low.bit_length() - 1] = 1
                bits ^= low

    def _words_matrix(self) -> np.ndarray:
        n, k = self._cols.shape
        words = max(1, (k + 63) // 64)
        packed = np.packbits(self._cols, axis=1, bitorder="little")
        padded = np.zeros((n, words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        return padded.view(np.uint64)

    def _load_words(self, words: np.ndarray) -> None:
        n, k = self._cols.shape
        if k == 0:
            return
        as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(n, -1)
        have = min(k, as_bytes.shape[1] * 8)
        self._cols[:, :have] = np.unpackbits(
            as_bytes, axis=1, count=have, bitorder="little"
        )

    def state_nbytes(self) -> int:
        return int(self._cols.nbytes)

    def rumor_count(self, node: Node) -> int:
        return int(self._cols[self._node_index[node]].sum())

    def min_rumor_count(self) -> int:
        if self._cols.shape[0] == 0:
            return 0
        return int(self._cols.sum(axis=1, dtype=np.int64).min())

    def knows(self, node: Node, rumor: Hashable) -> bool:
        bit = self._space.index.get(rumor)
        if bit is None or bit >= self._cols.shape[1]:
            return False
        return bool(self._cols[self._node_index[node], bit])

    def count_knowing(self, rumor: Hashable) -> int:
        bit = self._space.index.get(rumor)
        if bit is None or bit >= self._cols.shape[1]:
            return 0
        return int(np.count_nonzero(self._cols[:, bit]))

    def knows_every(
        self, nodes: Iterable[Node], rumors: Iterable[Hashable]
    ) -> bool:
        index = self._space.index
        width = self._cols.shape[1]
        cols = []
        for rumor in rumors:
            bit = index.get(rumor)
            if bit is None or bit >= width:
                return False
            cols.append(bit)
        rows = self._cols[[self._node_index[node] for node in nodes]]
        return bool(rows[:, cols].all())

    # -- array kernels ---------------------------------------------------
    def _k_width(self) -> tuple:
        return ("broadcast", self._cols.shape[1])

    def _k_gather(self, rows: np.ndarray) -> Any:
        return self._cols[rows]

    def _k_popcounts(self, pack: Any, count: int) -> np.ndarray:
        return pack.sum(axis=1, dtype=np.int64)

    def _k_scatter(self, rows: np.ndarray, pack: Any) -> None:
        _scatter_or(self._cols, rows, pack)
        self._invalidate_rows(rows)

    def _k_row_popcounts(self, rows: np.ndarray) -> np.ndarray:
        return self._cols[rows].sum(axis=1, dtype=np.int64)

    def _k_knows_column(self, rows: np.ndarray, rumor: Hashable) -> np.ndarray:
        bit = self._space.index.get(rumor)
        if bit is None or bit >= self._cols.shape[1]:
            return np.zeros(rows.shape[0], dtype=bool)
        return self._cols[rows, bit] != 0


class ChunkedVectorState(VectorState):
    """Chunked layout: the uint64 matrix split into column blocks.

    Each block is at most ``max_state_bytes`` big, so the largest single
    allocation — and the per-block transient each scatter/gather pass
    creates — is budget-bounded; the round update streams block by
    block.  The blocks' *sum* (the whole matrix) and the payload
    snapshots held by in-flight exchanges are inherent to the model and
    are not bounded by the budget.

    Blocks grow append-only (geometrically up to the per-block word
    budget), so interning rumors one at a time never re-copies earlier
    blocks.  Word ``w`` of the logical matrix lives in the block whose
    ``_block_offsets`` span contains ``w``.
    """

    __slots__ = ("_blocks", "_block_words", "_block_offsets")

    layout = "chunked"

    def _init_storage(
        self, n: int, bits: int, max_state_bytes: Optional[int] = None
    ) -> None:
        budget = (
            max_state_bytes
            if max_state_bytes is not None
            else current_max_state_bytes()
        )
        self._block_words = max(1, budget // (max(n, 1) * 8))
        self._blocks: list[np.ndarray] = []
        self._block_offsets: list[int] = [0]
        if bits:
            words = (bits + 63) // 64
            start = 0
            while start < words:
                width = min(self._block_words, words - start)
                self._blocks.append(np.zeros((n, width), dtype=np.uint64))
                start += width
                self._block_offsets.append(start)

    def _ensure_bit(self, bit: int) -> None:
        needed = bit // 64 + 1
        have = self._block_offsets[-1]
        if needed <= have:
            return
        n = len(self._node_list)
        while have < needed:
            # Geometric growth bounded by the per-block budget: appending
            # (never reallocating) keeps one-at-a-time interning amortized
            # O(1) per word without ever exceeding max_state_bytes in a
            # single allocation.
            width = min(self._block_words, max(needed - have, have, 1))
            self._blocks.append(np.zeros((n, width), dtype=np.uint64))
            have += width
            self._block_offsets.append(have)

    def _block_of(self, word: int) -> tuple[int, int]:
        b = bisect.bisect_right(self._block_offsets, word) - 1
        return b, word - self._block_offsets[b]

    def _set_bit(self, i: int, bit: int) -> None:
        word, offset = divmod(bit, 64)
        b, w = self._block_of(word)
        self._blocks[b][i, w] |= np.uint64(1 << offset)

    def _mask_of_row(self, i: int) -> int:
        if not self._blocks:
            return 0
        return int.from_bytes(
            b"".join(block[i].tobytes() for block in self._blocks), "little"
        )

    def _or_row_storage(self, i: int, mask: int) -> None:
        offsets = self._block_offsets
        data = np.frombuffer(
            mask.to_bytes(offsets[-1] * 8, "little"), dtype=np.uint64
        )
        for b, block in enumerate(self._blocks):
            segment = data[offsets[b] : offsets[b + 1]]
            if segment.any():
                block[i] |= segment

    def _load_masks(self, masks: Sequence[int]) -> None:
        for i, mask in enumerate(masks):
            if not mask:
                continue
            if mask.bit_count() <= 64:
                bits = mask
                while bits:
                    low = bits & -bits
                    self._set_bit(i, low.bit_length() - 1)
                    bits ^= low
            else:
                self._or_row_storage(i, mask)

    def _words_matrix(self) -> np.ndarray:
        if not self._blocks:
            return np.zeros((len(self._node_list), 1), dtype=np.uint64)
        if len(self._blocks) == 1:
            return self._blocks[0]
        return np.hstack(self._blocks)

    def _load_words(self, words: np.ndarray) -> None:
        offsets = self._block_offsets
        for b, block in enumerate(self._blocks):
            lo = min(offsets[b], words.shape[1])
            hi = min(offsets[b + 1], words.shape[1])
            if hi > lo:
                block[:, : hi - lo] = words[:, lo:hi]

    def state_nbytes(self) -> int:
        return int(sum(block.nbytes for block in self._blocks))

    def rumor_count(self, node: Node) -> int:
        i = self._node_index[node]
        return int(
            sum(int(_popcount_rows(block[i])) for block in self._blocks)
        )

    def min_rumor_count(self) -> int:
        n = len(self._node_list)
        if n == 0:
            return 0
        total = np.zeros(n, dtype=np.int64)
        # Streamed per block: each pass touches one budget-bounded matrix.
        for block in self._blocks:
            total += _popcount_rows(block)
        return int(total.min())

    def knows(self, node: Node, rumor: Hashable) -> bool:
        bit = self._space.index.get(rumor)
        if bit is None:
            return False
        word, offset = divmod(bit, 64)
        if word >= self._block_offsets[-1]:
            return False
        b, w = self._block_of(word)
        return bool(
            self._blocks[b][self._node_index[node], w] & np.uint64(1 << offset)
        )

    def count_knowing(self, rumor: Hashable) -> int:
        bit = self._space.index.get(rumor)
        if bit is None:
            return 0
        word, offset = divmod(bit, 64)
        if word >= self._block_offsets[-1]:
            return 0
        b, w = self._block_of(word)
        return int(
            np.count_nonzero(self._blocks[b][:, w] & np.uint64(1 << offset))
        )

    def knows_every(
        self, nodes: Iterable[Node], rumors: Iterable[Hashable]
    ) -> bool:
        index = self._space.index
        offsets = self._block_offsets
        required = np.zeros(offsets[-1], dtype=np.uint64)
        for rumor in rumors:
            bit = index.get(rumor)
            if bit is None or bit >= offsets[-1] * 64:
                return False
            word, offset = divmod(bit, 64)
            required[word] |= np.uint64(1 << offset)
        picks = [self._node_index[node] for node in nodes]
        # Streamed per block: each pass materializes at most one
        # budget-bounded (len(nodes) × block_words) slice.
        for b, block in enumerate(self._blocks):
            need = required[offsets[b] : offsets[b + 1]]
            if not need.any():
                continue
            rows = block[picks]
            if not ((rows & need) == need).all():
                return False
        return True

    # -- array kernels ---------------------------------------------------
    def _k_width(self) -> tuple:
        return ("chunked", tuple(self._block_offsets))

    def _k_gather(self, rows: np.ndarray) -> Any:
        return [block[rows] for block in self._blocks]

    def _k_popcounts(self, pack: Any, count: int) -> np.ndarray:
        total = np.zeros(count, dtype=np.int64)
        for part in pack:
            total += _popcount_rows(part)
        return total

    def _k_select(self, pack: Any, pick: Any) -> Any:
        return [part[pick] for part in pack]

    def _k_vstack(self, packs: list) -> Any:
        return [
            np.vstack([pack[b] for pack in packs])
            for b in range(len(self._blocks))
        ]

    def _k_scatter(self, rows: np.ndarray, pack: Any) -> None:
        if rows.shape[0] == 0 or not self._blocks:
            return
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
        if starts.shape[0] == rows.shape[0]:
            # Duplicate-free: one fancy read-modify-write per column block
            # (same strategy as :func:`_scatter_or`).
            for block, part in zip(self._blocks, pack):
                block[rows] |= part
            self._invalidate_rows(rows)
            return
        targets = sorted_rows[starts]
        sizes = np.diff(np.r_[starts, sorted_rows.shape[0]])
        ranks = [
            np.flatnonzero(sizes > rank) for rank in range(1, int(sizes.max()))
        ]
        first = order[starts]
        for block, part in zip(self._blocks, pack):
            merged = part[first]
            for rank, deep in enumerate(ranks, start=1):
                merged[deep] |= part[order[starts[deep] + rank]]
            block[targets] |= merged
        self._invalidate_rows(targets)

    def _k_row_popcounts(self, rows: np.ndarray) -> np.ndarray:
        total = np.zeros(rows.shape[0], dtype=np.int64)
        for block in self._blocks:
            total += _popcount_rows(block[rows])
        return total

    def _k_knows_column(self, rows: np.ndarray, rumor: Hashable) -> np.ndarray:
        bit = self._space.index.get(rumor)
        if bit is None:
            return np.zeros(rows.shape[0], dtype=bool)
        word, offset = divmod(bit, 64)
        if word >= self._block_offsets[-1]:
            return np.zeros(rows.shape[0], dtype=bool)
        b, w = self._block_of(word)
        return (self._blocks[b][rows, w] & np.uint64(1 << offset)) != 0


#: Broadcast-layout cutoff: with ``k <= 8`` rumor columns the uint8
#: layout never uses more bytes than one dense uint64 word per node.
_BROADCAST_MAX_RUMORS = 8

#: Layout name -> state class (the ``layout=`` argument of
#: :meth:`VectorState.from_network_state` and the test matrix).
STATE_LAYOUTS: dict[str, type] = {
    "dense": VectorState,
    "broadcast": BroadcastVectorState,
    "chunked": ChunkedVectorState,
}


# ----------------------------------------------------------------------
# Eligibility probing.  The engine's validation raises; PhaseRunner's
# per-phase dispatch instead *asks* — the same checks, one protocol
# instance, a reason string back — so ineligible phases can fall back to
# the scalar engine instead of aborting the composite run.
def _class_ineligibility(protocol_cls: type) -> Optional[str]:
    """Why a protocol *class* cannot run on the vector backend (or None)."""
    name = protocol_cls.__name__
    if getattr(protocol_cls, "vector_program", None) is None:
        return (
            f"protocol {name} is not vector-backend eligible: it declares "
            "no vector_program() (only oblivious protocols can run on the "
            "vector backend; see docs/MODEL.md §8)"
        )
    if protocol_cls.on_deliver is not NodeProtocol.on_deliver:
        return (
            f"protocol {name} overrides on_deliver(); the vector backend "
            "cannot replay per-delivery protocol callbacks"
        )
    return None


def _program_ineligibility(
    protocol_cls: type, program: Any
) -> Optional[str]:
    """Why an extracted program cannot run on the vector backend (or None)."""
    name = protocol_cls.__name__
    if not isinstance(program, VectorProgram):
        return (
            f"{name}.vector_program() must return a VectorProgram, got "
            f"{type(program).__name__}"
        )
    if program.kind not in ("random", "round_robin"):
        return f"unknown vector program kind {program.kind!r} from {name}"
    if program.kind == "random" and program.rng is None:
        return f"{name} declares kind='random' but carries no rng"
    if program.gate is not None and program.gate[0] not in (
        "knows",
        "not_knows",
    ):
        return f"unknown vector program gate {program.gate[0]!r} from {name}"
    if program.targets is not None and program.kind != "round_robin":
        return (
            f"{name} declares custom targets with kind={program.kind!r}; "
            "only round_robin programs cycle an explicit target list"
        )
    if program.duration is not None and program.duration < 0:
        return f"{name} declares a negative duration ({program.duration})"
    if (
        protocol_cls.is_done is not NodeProtocol.is_done
        and program.duration is None
    ):
        return (
            f"protocol {name} overrides is_done() but its VectorProgram "
            "declares no duration; only fixed-round-budget termination "
            "can be replayed by the vector backend (see docs/MODEL.md §8)"
        )
    return None


def _payload_ineligibility(protocol: Any) -> Optional[str]:
    """Why a protocol *instance*'s payload mode is ineligible (or None)."""
    if not getattr(protocol, "sends_payload", True):
        return (
            f"protocol {type(protocol).__name__} is ping-only "
            "(sends_payload=False); the vector backend only ships rumor "
            "payloads"
        )
    return None


def _instance_ineligibility(protocol: Any) -> Optional[str]:
    """Instance-level checks, assuming the class already passed."""
    reason = _payload_ineligibility(protocol)
    if reason is not None:
        return reason
    return _program_ineligibility(type(protocol), protocol.vector_program())


def vector_ineligibility(protocol: Any) -> Optional[str]:
    """Why ``protocol`` cannot run on the vector backend — or ``None``.

    The non-raising twin of the engine's construction-time validation
    (identical checks, identical wording), used by
    :class:`~repro.protocols.base.PhaseRunner` to decide per-phase
    backend dispatch from a single probe instance.
    """
    reason = _class_ineligibility(type(protocol))
    if reason is not None:
        return reason
    return _instance_ineligibility(protocol)


# ----------------------------------------------------------------------
@dataclasses.dataclass(slots=True)
class _Batch:
    """One latency bucket's worth of in-flight exchanges, as arrays.

    Rows are in initiation order (initiator dense-id order within the
    round); payloads are layout-opaque packs of row snapshots taken at
    initiation time.  All exchanges in one batch share the same
    initiation round (``initiated_at``, kept for the mirror path's
    delivery events) because they share a delivery round and a latency.
    """

    initiators: np.ndarray
    responders: np.ndarray
    initiator_payloads: Any
    responder_payloads: Any
    initiated_at: int = -1


class VectorEngine:
    """Array-ops drop-in for :class:`~repro.sim.engine.Engine`.

    Accepts the same constructor arguments and exposes the same run-facing
    surface (``step``/``run``/``metrics``/``last_initiations``/
    ``pending_exchanges``/``all_done``/``protocol``/``finish_checks``),
    but requires every protocol instance to export a
    :class:`VectorProgram` (oblivious protocols only — see module
    docstring).  Runs with checkers, a recorder, a failure model,
    ``fresh_snapshots``, ``enforce_blocking``, or inherited note boards
    take the sequential mirror path; plain runs take the array fast path.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        protocol_factory: ProtocolFactory,
        state: Optional[Any] = None,
        latencies_known: bool = False,
        fresh_snapshots: bool = False,
        failure_model: Optional[FailureModel] = None,
        max_incoming_per_round: Optional[int] = None,
        enforce_blocking: bool = False,
        checkers: Optional[Sequence[InvariantChecker]] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_incoming_per_round is not None and max_incoming_per_round < 1:
            raise SimulationError(
                f"max_incoming_per_round must be >= 1, got {max_incoming_per_round}"
            )
        self.graph = graph
        if state is None:
            self.state = VectorState(graph.nodes())
        elif isinstance(state, VectorState):
            self.state = state
        elif isinstance(state, NetworkState):
            self.state = VectorState.from_network_state(state)
        else:
            raise SimulationError(
                "VectorEngine needs a NetworkState or VectorState, got "
                f"{type(state).__name__}"
            )
        self.latencies_known = latencies_known
        self.fresh_snapshots = fresh_snapshots
        self.failure_model = failure_model
        self.max_incoming_per_round = max_incoming_per_round
        self.enforce_blocking = enforce_blocking
        self.recorder = recorder
        self._metrics = EngineMetrics()
        if enforce_blocking:
            self._metrics.blocked_initiations = 0
        self._in_flight_initiations: dict[Node, int] = {}
        self.round = 0
        self._sequence = 0
        self._order = graph.nodes()
        n = graph.num_nodes
        try:
            self._row_of = np.fromiter(
                (self.state._node_index[node] for node in self._order),
                dtype=np.int64,
                count=n,
            )
        except KeyError as exc:
            raise SimulationError(
                f"state does not track graph node {exc.args[0]!r}"
            ) from None

        self._protocols: dict[Node, NodeProtocol] = {}
        self._contexts: dict[Node, NodeContext] = {}
        for node in self._order:
            self._protocols[node] = protocol_factory(node)
            self._contexts[node] = NodeContext(self, node)
        for node in self._order:
            self._protocols[node].setup(self._contexts[node])
        self._programs = [self._program_for(node) for node in self._order]

        deg, off, nbr, lat, eid, edge_tuples = _csr_arrays(graph)
        self._deg, self._off, self._nbr, self._lat = deg, off, nbr, lat
        self._eid = eid
        self._edge_tuples = edge_tuples
        self._edge_active = np.zeros(len(edge_tuples), dtype=bool)
        self._edges_dirty = False

        custom = self._build_target_tables(n)

        # Selection cohorts: nodes sharing (kind, gate, duration, custom
        # targets?) advance together over one slot table.
        cohorts: dict[tuple, list[int]] = {}
        for i, program in enumerate(self._programs):
            fan_out = (
                len(program.targets) if program.targets is not None else deg[i]
            )
            if fan_out:
                key = (
                    program.kind,
                    program.gate,
                    program.duration,
                    program.targets is not None,
                )
                cohorts.setdefault(key, []).append(i)
        self._cohorts = []
        for (kind, gate, duration, is_custom), ids_list in cohorts.items():
            ids = np.array(ids_list, dtype=np.int64)
            if is_custom:
                tdeg, toff, tnbr, tlat, teid = custom
                table = {"off": toff, "nbr": tnbr, "lat": tlat, "eid": teid}
                degs = tdeg[ids]
            else:
                table = {
                    "off": self._off,
                    "nbr": self._nbr,
                    "lat": self._lat,
                    "eid": self._eid,
                }
                degs = deg[ids]
            entry: dict[str, Any] = {
                "kind": kind,
                "gate": gate,
                "duration": duration,
                "ids": ids,
                "degs": degs,
                **table,
            }
            if kind == "random":
                rngs = [self._programs[i].rng for i in ids_list]
                entry["draw"] = [_randbelow_of(rng) for rng in rngs]
                entry["deg_list"] = [int(d) for d in degs.tolist()]
                # CPython's Random._randbelow draws getrandbits(k) with
                # rejection; when every rng is a plain random.Random the
                # fast path replays that primitive directly (one C call
                # per node, vectorized rejection check) — same stream,
                # no Python frame per draw.
                base = getattr(random.Random, "_randbelow", None)
                if base is not None and all(
                    type(rng) is random.Random
                    and rng._randbelow.__func__ is base
                    for rng in rngs
                ):
                    entry["gk"] = [
                        (rng.getrandbits, d.bit_length())
                        for rng, d in zip(rngs, entry["deg_list"])
                    ]
            self._cohorts.append(entry)
        self._rr_next = np.fromiter(
            (program.start for program in self._programs), dtype=np.int64, count=n
        )
        durations = [program.duration for program in self._programs]
        self._all_durations = bool(durations) and all(
            d is not None for d in durations
        )
        self._max_duration = max(
            (d for d in durations if d is not None), default=0
        )

        if checkers is None:
            checkers = (
                _invariants.default_checkers()
                if _invariants.checking_enabled()
                else ()
            )
        self._checkers: tuple[InvariantChecker, ...] = tuple(checkers)
        self._checker_log: collections.deque[str] = collections.deque(
            maxlen=_CHECKER_LOG_SIZE
        )

        # Fast path only when nothing needs per-exchange ordering: checkers,
        # recorder, failures, fresh snapshots, blocking, and inherited note
        # boards all observe (or perturb) individual exchanges.  A recorder
        # *alone* takes the batched mirror path: deliveries are computed
        # with the array kernels and the byte-identical event stream is
        # emitted from the precomputed buckets (REPRO_VECTOR_MIRROR=
        # sequential forces the per-exchange replay instead).
        notes_present = any(self.state._notes)
        wants_sequential = bool(
            self._checkers
            or recorder is not None
            or failure_model is not None
            or fresh_snapshots
            or enforce_blocking
            or notes_present
        )
        self._mirror = (
            recorder is not None
            and not self._checkers
            and failure_model is None
            and not fresh_snapshots
            and not enforce_blocking
            and not notes_present
            and os.environ.get("REPRO_VECTOR_MIRROR", "").strip().lower()
            != "sequential"
        )
        self._sequential = wants_sequential and not self._mirror
        if self._mirror:
            # Done-node parking replayed as a pure function: a node whose
            # program declares duration d parks at round d's scan, so it is
            # parked during the delivery stage of round r iff r > d.
            self._duration_list = [
                -1 if program.duration is None else program.duration
                for program in self._programs
            ]
            self._min_duration = min(
                (d for d in self._duration_list if d >= 0), default=None
            )
        if self._sequential:
            # The scalar engine's active-set scheduler, mirrored exactly:
            # done nodes park, deliveries wake them (dense-id merge order).
            self._active: list[Node] = list(self._order)
            self._parked: set[Node] = set()
            self._woken: list[Node] = []
            self._seq_index = {node: i for i, node in enumerate(self._order)}
        self._fingerprint = self.state._k_width()
        self._in_flight: dict[int, list[_InFlight]] = {}
        self._buckets: dict[int, list[_Batch]] = {}
        self._pending_count = 0
        self._last_pairs: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._last_list: Optional[list[tuple[Node, Node]]] = []
        for checker in self._checkers:
            checker.on_attach(self)

    # ------------------------------------------------------------------
    #: Protocol classes that already passed the structural eligibility
    #: checks (class-level, so validating n instances costs one set probe
    #: per node after the first engine sees the class).
    _ELIGIBLE_CLASSES: set = set()

    @classmethod
    def _validate_class(cls, protocol_cls: type) -> None:
        """Structural (class-level) vector-eligibility checks, memoized."""
        if protocol_cls in cls._ELIGIBLE_CLASSES:
            return
        reason = _class_ineligibility(protocol_cls)
        if reason is not None:
            raise SimulationError(reason)
        cls._ELIGIBLE_CLASSES.add(protocol_cls)

    def _program_for(self, node: Node) -> VectorProgram:
        """Extract and validate one protocol's :class:`VectorProgram`."""
        protocol = self._protocols[node]
        self._validate_class(type(protocol))
        reason = _payload_ineligibility(protocol)
        if reason is not None:
            raise SimulationError(reason)
        program = protocol.vector_program()
        reason = _program_ineligibility(type(protocol), program)
        if reason is not None:
            raise SimulationError(reason)
        return program

    def _build_target_tables(self, n: int) -> Optional[tuple]:
        """CSR-style slot tables for programs cycling explicit targets.

        Returns ``(deg, off, nbr, lat, eid)`` over all nodes (zero
        degree for nodes without custom targets), or ``None`` when no
        program declares targets.  Every target is validated to be a
        graph neighbor here — the scalar engine would raise
        :class:`~repro.errors.ProtocolError` on first contact; the
        vector backend front-loads that check to construction.
        """
        if not any(p.targets is not None for p in self._programs):
            return None
        graph = self.graph
        index_of = graph.index_of
        tdeg = np.zeros(n, dtype=np.int64)
        flat: list[int] = []
        srcs: list[int] = []
        for i, program in enumerate(self._programs):
            if program.targets is None:
                continue
            tdeg[i] = len(program.targets)
            for target in program.targets:
                try:
                    j = index_of(target)
                except Exception:
                    raise ProtocolError(
                        f"node {self._order[i]!r} tried to contact "
                        f"non-neighbor {target!r}"
                    ) from None
                flat.append(j)
                srcs.append(i)
        toff = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(tdeg, out=toff[1:])
        tnbr = np.asarray(flat, dtype=np.int64)
        src = np.asarray(srcs, dtype=np.int64)
        us, vs, edge_lats = graph.edge_arrays()
        keys = us * n + vs
        key_order = np.argsort(keys, kind="stable")
        sorted_keys = keys[key_order]
        lo = np.minimum(src, tnbr)
        hi = np.maximum(src, tnbr)
        want = lo * n + hi
        pos = np.searchsorted(sorted_keys, want)
        valid = pos < sorted_keys.shape[0]
        valid[valid] = sorted_keys[pos[valid]] == want[valid]
        if not valid.all():
            bad = int(np.flatnonzero(~valid)[0])
            raise ProtocolError(
                f"node {self._order[int(src[bad])]!r} tried to contact "
                f"non-neighbor {self._order[int(tnbr[bad])]!r}"
            )
        teid = key_order[pos]
        tlat = np.asarray(edge_lats, dtype=np.int64)[teid]
        return tdeg, toff, tnbr, tlat, teid

    # -- Engine-compatible surface --------------------------------------
    @property
    def metrics(self) -> EngineMetrics:
        """Engine counters; activated edges are folded in lazily."""
        if self._edges_dirty:
            edge_tuples = self._edge_tuples
            self._metrics.activated_edges = {
                edge_tuples[e]
                for e in np.flatnonzero(self._edge_active).tolist()
            }
            self._edges_dirty = False
        return self._metrics

    @property
    def last_initiations(self) -> list[tuple[Node, Node]]:
        """This round's ``(initiator, responder)`` pairs (lazy on fast path)."""
        if self._last_list is None:
            node_at = self.graph.node_at
            initiators, responders = self._last_pairs
            self._last_list = [
                (node_at(a), node_at(b))
                for a, b in zip(initiators.tolist(), responders.tolist())
            ]
        return self._last_list

    def protocol(self, node: Node) -> NodeProtocol:
        """The protocol instance for ``node`` (for post-run inspection)."""
        return self._protocols[node]

    def all_done(self) -> bool:
        """Local-termination check, mirroring the scalar parking scheduler.

        On the fast path a protocol is done exactly when its declared
        ``duration`` has elapsed (programs without a duration never
        terminate); the sequential path queries ``is_done()`` like the
        scalar engine does, honoring parked and crashed nodes.
        """
        if self._sequential:
            parked = self._parked
            for node in self._order:
                if node in parked:
                    continue
                if self.failure_model is not None and self.failure_model.node_crashed(
                    node, self.round
                ):
                    continue
                if not self._protocols[node].is_done(self._contexts[node]):
                    return False
            return True
        if not self._order:
            return True
        if self._all_durations:
            return self.round >= self._max_duration
        if self.failure_model is None:
            return False
        return all(
            self.failure_model.node_crashed(node, self.round)
            for node in self._order
        )

    def pending_exchanges(self) -> int:
        """Number of exchanges still in flight."""
        return self._pending_count

    def recent_checker_events(self) -> list[str]:
        """The most recent logged events (the violation trace excerpt)."""
        return list(self._checker_log)

    def _log_event(self, event: str) -> None:
        if self._checkers:
            self._checker_log.append(event)

    def run(
        self,
        until: Optional[Callable[["VectorEngine"], bool]] = None,
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run until ``until(engine)`` is true (checked before each round)."""
        predicate = until if until is not None else (lambda engine: engine.all_done())
        while not predicate(self):
            if self.round >= max_rounds:
                raise SimulationError(
                    f"simulation exceeded max_rounds={max_rounds} "
                    f"(round={self.round}, pending={self._pending_count})"
                )
            self.step()
        self.finish_checks()
        return self.round

    def finish_checks(self) -> None:
        """Give every attached invariant checker a final end-of-run look."""
        for checker in self._checkers:
            checker.on_run_end(self)

    def step(self) -> None:
        """Execute one round: deliver due exchanges, then collect initiations."""
        if self._sequential:
            self._step_sequential()
        elif self._mirror:
            self._step_mirror()
        else:
            self._step_fast()

    # -- fast path: one round = a handful of array ops ------------------
    def _gate_passes(self, ids: np.ndarray, gate: tuple) -> np.ndarray:
        condition, rumor = gate
        knows = self.state._k_knows_column(self._row_of[ids], rumor)
        return ~knows if condition == "not_knows" else knows

    def _check_fingerprint(self) -> None:
        if self.state._k_width() != self._fingerprint:
            raise SimulationError(
                "rumor space grew mid-run; the vector fast path assumes a "
                "fixed rumor universe (oblivious protocols never intern new "
                "rumors after setup)"
            )

    def _step_fast(self) -> None:
        self._check_fingerprint()
        self._deliver_fast()
        initiators, responders, latencies, edge_ids = self._select_initiations()
        accepted = self._apply_cap(initiators, responders)
        if accepted is not None:
            initiators = initiators[accepted]
            responders = responders[accepted]
            latencies = latencies[accepted]
            edge_ids = edge_ids[accepted]
        self._last_pairs = (initiators, responders)
        self._last_list = None
        self._record_initiations(initiators, responders, latencies, edge_ids)
        self.round += 1
        self._metrics.rounds = self.round

    def _deliver_fast(self) -> int:
        """Merge everything due this round with one segmented OR (per
        layout block, for the chunked layout).  Returns the delivery count.
        """
        batches = self._buckets.pop(self.round, None)
        if batches is None:
            return 0
        state = self.state
        rows = []
        packs = []
        delivered = 0
        for batch in batches:
            delivered += batch.initiators.shape[0]
            rows.append(self._row_of[batch.responders])
            packs.append(batch.initiator_payloads)
            rows.append(self._row_of[batch.initiators])
            packs.append(batch.responder_payloads)
        self._pending_count -= delivered
        state._k_scatter(np.concatenate(rows), state._k_vstack(packs))
        return delivered

    def _select_initiations(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """This round's pre-cap ``(initiators, responders, latencies,
        edge_ids)`` in dense-id initiation order (the scalar scan order).

        Partner selection runs cohort by cohort.  Expired, gated-out, and
        degree-0 nodes consume no randomness, exactly like the scalar
        scheduler (parked nodes never reach on_round).
        """
        chosen: list[tuple[np.ndarray, ...]] = []
        for cohort in self._cohorts:
            duration = cohort["duration"]
            if duration is not None and self.round >= duration:
                continue
            ids = cohort["ids"]
            degs = cohort["degs"]
            take = None
            if cohort["gate"] is not None:
                passes = self._gate_passes(ids, cohort["gate"])
                if not passes.all():
                    take = np.flatnonzero(passes)
                    ids = ids[take]
                    degs = degs[take]
                if ids.shape[0] == 0:
                    continue
            if cohort["kind"] == "random":
                deg_list = cohort["deg_list"]
                gk = cohort.get("gk")
                if gk is not None:
                    # First draw for every node in one pass, then redraw
                    # the rejected ones (r >= deg) exactly as CPython's
                    # _randbelow rejection loop would.  Streams are
                    # per-node, so batching the first draws cannot reorder
                    # any single node's consumption.
                    if take is None:
                        sel = range(len(gk))
                    else:
                        sel = take.tolist()
                    picks = np.fromiter(
                        (gk[t][0](gk[t][1]) for t in sel),
                        dtype=np.int64,
                        count=ids.shape[0],
                    )
                    for j in np.flatnonzero(picks >= degs).tolist():
                        t = j if take is None else sel[j]
                        g, k = gk[t]
                        d = deg_list[t]
                        v = g(k)
                        while v >= d:
                            v = g(k)
                        picks[j] = v
                    slots = cohort["off"][ids] + picks
                else:
                    draw = cohort["draw"]
                    if take is None:
                        picks = [d(k) for d, k in zip(draw, deg_list)]
                    else:
                        picks = [draw[k](deg_list[k]) for k in take.tolist()]
                    slots = cohort["off"][ids] + np.asarray(picks, dtype=np.int64)
            else:  # round_robin
                counters = self._rr_next[ids]
                slots = cohort["off"][ids] + counters % degs
                self._rr_next[ids] = counters + 1
            chosen.append(
                (
                    ids,
                    cohort["nbr"][slots],
                    cohort["lat"][slots],
                    cohort["eid"][slots],
                )
            )

        if chosen:
            initiators = np.concatenate([c[0] for c in chosen])
            responders = np.concatenate([c[1] for c in chosen])
            latencies = np.concatenate([c[2] for c in chosen])
            edge_ids = np.concatenate([c[3] for c in chosen])
            if len(chosen) > 1:
                # Restore dense-id initiation order (the scalar scan order);
                # the in-degree cap is first-come-first-served in it.
                order = np.argsort(initiators, kind="stable")
                initiators = initiators[order]
                responders = responders[order]
                latencies = latencies[order]
                edge_ids = edge_ids[order]
        else:
            initiators = responders = np.zeros(0, dtype=np.int64)
            latencies = edge_ids = np.zeros(0, dtype=np.int64)
        return initiators, responders, latencies, edge_ids

    def _apply_cap(
        self, initiators: np.ndarray, responders: np.ndarray
    ) -> Optional[np.ndarray]:
        """In-degree cap over pre-cap arrays: an accept mask, or ``None``
        when nothing is rejected.  Counts rejections into the metrics.
        """
        cap = self.max_incoming_per_round
        if cap is None or not initiators.shape[0]:
            return None
        by_target = np.argsort(responders, kind="stable")
        targets = responders[by_target]
        group_starts = np.flatnonzero(np.r_[True, targets[1:] != targets[:-1]])
        sizes = np.diff(np.r_[group_starts, targets.shape[0]])
        rank = (
            np.arange(targets.shape[0], dtype=np.int64)
            - np.repeat(group_starts, sizes)
        )
        accepted = np.empty(targets.shape[0], dtype=bool)
        accepted[by_target] = rank < cap
        rejected = int(targets.shape[0] - int(accepted.sum()))
        if not rejected:
            return None
        self._metrics.rejected_initiations += rejected
        return accepted

    def _record_initiations(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        latencies: np.ndarray,
        edge_ids: np.ndarray,
    ) -> None:
        """Account accepted initiations and bucket them by delivery round."""
        count = int(initiators.shape[0])
        if not count:
            return
        state = self.state
        metrics = self._metrics
        initiator_payloads = state._k_gather(self._row_of[initiators])
        responder_payloads = state._k_gather(self._row_of[responders])
        sent = state._k_popcounts(initiator_payloads, count)
        received = state._k_popcounts(responder_payloads, count)
        metrics.rumor_tokens_sent += int(sent.sum() + received.sum())
        largest = int(max(sent.max(), received.max()))
        if largest > metrics.max_payload_rumors:
            metrics.max_payload_rumors = largest
        metrics.exchanges += count
        metrics.messages += 2 * count
        self._edge_active[edge_ids] = True
        self._edges_dirty = True
        self._pending_count += count
        self._sequence += count
        unique_latencies = np.unique(latencies)
        for latency in unique_latencies.tolist():
            if unique_latencies.shape[0] == 1:
                pick: Any = slice(None)
            else:
                pick = latencies == latency
            self._buckets.setdefault(self.round + int(latency), []).append(
                _Batch(
                    initiators=initiators[pick],
                    responders=responders[pick],
                    initiator_payloads=state._k_select(
                        initiator_payloads, pick
                    ),
                    responder_payloads=state._k_select(
                        responder_payloads, pick
                    ),
                    initiated_at=self.round,
                )
            )

    # -- mirror path: array-kernel rounds, scalar-identical event stream -
    def _step_mirror(self) -> None:
        """Recorder-attached rounds at array speed.

        Deliveries and initiations are computed with the same kernels as
        the fast path; the recorder sees the byte-identical event stream
        the scalar engine would emit (delivery/wakeup events in exchange
        order, then rejected/accepted initiations in the dense-id scan
        order, then the round summary).
        """
        self._check_fingerprint()
        recorder = self.recorder
        record = recorder.record
        nodes = self._order
        rnd = self.round
        delivered = self._deliver_mirror()
        initiators, responders, latencies, edge_ids = self._select_initiations()
        accepted = self._apply_cap(initiators, responders)
        if accepted is None:
            for a, b, lat in zip(
                initiators.tolist(), responders.tolist(), latencies.tolist()
            ):
                record(InitiationEvent(rnd, nodes[a], nodes[b], lat))
        else:
            for a, b, lat, ok in zip(
                initiators.tolist(),
                responders.tolist(),
                latencies.tolist(),
                accepted.tolist(),
            ):
                if ok:
                    record(InitiationEvent(rnd, nodes[a], nodes[b], lat))
                else:
                    record(RejectedInitiationEvent(rnd, nodes[a], nodes[b]))
            initiators = initiators[accepted]
            responders = responders[accepted]
            latencies = latencies[accepted]
            edge_ids = edge_ids[accepted]
        self._last_pairs = (initiators, responders)
        self._last_list = None
        self._record_initiations(initiators, responders, latencies, edge_ids)
        recorder.record(
            RoundEvent(
                round=self.round,
                initiations=int(initiators.shape[0]),
                deliveries=delivered,
                in_flight=self._pending_count,
            )
        )
        self.round += 1
        self._metrics.rounds = self.round

    def _deliver_mirror(self) -> int:
        """Deliver due batches with array kernels, emitting scalar-order
        delivery and wakeup events.  Returns the delivery count.

        Per-endpoint learned counts (``rumor_count`` delta around the
        endpoint's own merge) are recovered exactly despite the batched
        merges: the global scalar merge order within a delivery round is
        ``responder₀, initiator₀, responder₁, initiator₁, …``, so a
        stable argsort of that sequence groups merges by target row while
        preserving each row's merge order.  Applying one merge *rank* at
        a time (every round-t merge targets distinct rows) lets a single
        popcount pass before/after each rank yield every merge's delta.
        """
        batches = self._buckets.pop(self.round, None)
        if batches is None:
            return 0
        record = self.recorder.record
        state = self.state
        row_of = self._row_of
        nodes = self._order
        durations = self._duration_list
        any_parked = (
            self._min_duration is not None and self._min_duration < self.round
        )
        r = self.round
        delivered = 0
        woken: set[int] = set()
        for batch in batches:
            m = int(batch.initiators.shape[0])
            delivered += m
            self._pending_count -= m
            # Interleave into the scalar merge sequence (responder of
            # exchange k merges initiator_payloads[k], then its initiator
            # merges responder_payloads[k]).  The pack is left in
            # [initiator_payloads; responder_payloads] order — position p
            # of the merge sequence maps to pack row (p>>1) + (p&1)·m —
            # so no full-size interleave copy is materialized.
            rows2 = np.empty(2 * m, dtype=np.int64)
            rows2[0::2] = row_of[batch.responders]
            rows2[1::2] = row_of[batch.initiators]
            pack = state._k_vstack(
                [batch.initiator_payloads, batch.responder_payloads]
            )
            order = np.argsort(rows2, kind="stable")
            sorted_rows = rows2[order]
            group_starts = np.flatnonzero(
                np.r_[True, sorted_rows[1:] != sorted_rows[:-1]]
            )
            sizes = np.diff(np.r_[group_starts, sorted_rows.shape[0]])
            rank = (
                np.arange(sorted_rows.shape[0], dtype=np.int64)
                - np.repeat(group_starts, sizes)
            )
            learned = np.empty(2 * m, dtype=np.int64)
            for t in range(int(sizes.max())):
                sel = order[rank == t]
                target_rows = rows2[sel]
                before = state._k_row_popcounts(target_rows)
                state._k_scatter(
                    target_rows,
                    state._k_select(pack, (sel >> 1) + (sel & 1) * m),
                )
                learned[sel] = state._k_row_popcounts(target_rows) - before
            learned_resp = learned[0::2].tolist()
            learned_init = learned[1::2].tolist()
            initiated_at = batch.initiated_at
            inits = batch.initiators.tolist()
            resps = batch.responders.tolist()
            if not any_parked:
                for k, a in enumerate(inits):
                    record(
                        DeliveryEvent(
                            r,
                            nodes[a],
                            nodes[resps[k]],
                            initiated_at,
                            False,
                            True,
                            learned_init[k],
                            learned_resp[k],
                        )
                    )
                continue
            for k, a in enumerate(inits):
                b = resps[k]
                record(
                    DeliveryEvent(
                        r,
                        nodes[a],
                        nodes[b],
                        initiated_at,
                        False,
                        True,
                        learned_init[k],
                        learned_resp[k],
                    )
                )
                # Scalar parking replay: a node with duration d is parked
                # during round r's deliveries iff r > d, and wakes at most
                # once per round (initiator endpoint first).
                for x in (a, b):
                    d = durations[x]
                    if 0 <= d < r and x not in woken:
                        woken.add(x)
                        record(WakeupEvent(r, nodes[x]))
        return delivered

    # -- sequential path: the scalar engine's semantics, exchange by
    # -- exchange, over the layout state (checkers/recorder/failures) ----
    def _step_sequential(self) -> None:
        self._last_list = []
        self._last_pairs = None
        for checker in self._checkers:
            checker.on_round_start(self)
        delivered = self._deliver_due()
        if self._woken:
            self._wake_parked()
        recorder = self.recorder
        incoming: dict[Node, int] = {}
        failure_model = self.failure_model
        protocols = self._protocols
        contexts = self._contexts
        graph_adj = self.graph.adjacency_view()
        survivors: list[Node] = []
        keep = survivors.append
        for node in self._active:
            if failure_model is not None and failure_model.node_crashed(
                node, self.round
            ):
                keep(node)  # crashes are observed, never cached
                continue
            protocol = protocols[node]
            ctx = contexts[node]
            if protocol.is_done(ctx):
                self._parked.add(node)  # leaves the active set until a delivery
                continue
            keep(node)
            target = protocol.on_round(ctx)
            if target is None:
                continue
            if target not in graph_adj.get(node, ()):
                raise ProtocolError(
                    f"node {node!r} tried to contact non-neighbor {target!r}"
                )
            if self.max_incoming_per_round is not None:
                accepted = incoming.get(target, 0)
                if accepted >= self.max_incoming_per_round:
                    self._metrics.rejected_initiations += 1
                    if recorder is not None:
                        recorder.record(
                            RejectedInitiationEvent(
                                round=self.round, initiator=node, responder=target
                            )
                        )
                    continue
                incoming[target] = accepted + 1
            self._initiate(node, target)
        self._active = survivors
        for checker in self._checkers:
            checker.on_round_end(self)
        if recorder is not None:
            recorder.record(
                RoundEvent(
                    round=self.round,
                    initiations=len(self._last_list),
                    deliveries=delivered,
                    in_flight=self._pending_count,
                )
            )
        self.round += 1
        self._metrics.rounds = self.round

    def _wake_parked(self) -> None:
        """Merge nodes re-activated by a delivery back in dense-id order."""
        index = self._seq_index
        woken = sorted(set(self._woken), key=index.__getitem__)
        self._woken = []
        merged: list[Node] = []
        active = self._active
        i = j = 0
        while i < len(active) and j < len(woken):
            if index[active[i]] <= index[woken[j]]:
                merged.append(active[i])
                i += 1
            else:
                merged.append(woken[j])
                j += 1
        merged.extend(active[i:])
        merged.extend(woken[j:])
        self._active = merged

    def _initiate(self, initiator: Node, responder: Node) -> None:
        latency = self.graph.latency(initiator, responder)
        if self.enforce_blocking and self._in_flight_initiations.get(initiator, 0):
            self._metrics.blocked_initiations += 1
            if self.recorder is not None:
                self.recorder.record(
                    BlockedInitiationEvent(
                        round=self.round, initiator=initiator, responder=responder
                    )
                )
            raise ProtocolError(
                f"blocking violation: node {initiator!r} initiated while a "
                "previous exchange of its own is still in flight"
            )
        lost = self.failure_model is not None and self.failure_model.exchange_lost(
            initiator, responder, self.round
        )
        if self.recorder is not None:
            self.recorder.record(
                InitiationEvent(
                    round=self.round,
                    initiator=initiator,
                    responder=responder,
                    latency=latency,
                    ping=False,
                    lost=lost,
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {initiator!r} -> {responder!r} initiate "
                f"(latency {latency}" + (", lost" if lost else "") + ")"
            )
            view = ExchangeView(
                initiator=initiator,
                responder=responder,
                round=self.round,
                latency=latency,
                ping_only=False,
                lost=lost,
            )
            for checker in self._checkers:
                checker.on_initiation(self, view)
        if lost:
            self._metrics.lost_exchanges += 1
            return
        self._sequence += 1
        if self.fresh_snapshots:
            initiator_payload = responder_payload = _EMPTY_PAYLOAD
        else:
            initiator_payload = self.state.snapshot(initiator)
            responder_payload = self.state.snapshot(responder)
        exchange = _InFlight(
            delivers_at=self.round + latency,
            sequence=self._sequence,
            initiator=initiator,
            responder=responder,
            initiated_at=self.round,
            initiator_payload=initiator_payload,
            responder_payload=responder_payload,
            ping_only=False,
        )
        bucket = self._in_flight.get(exchange.delivers_at)
        if bucket is None:
            bucket = self._in_flight[exchange.delivers_at] = []
        bucket.append(exchange)
        self._pending_count += 1
        if self.enforce_blocking:
            self._in_flight_initiations[initiator] = (
                self._in_flight_initiations.get(initiator, 0) + 1
            )
        self._last_list.append((initiator, responder))
        if not self.fresh_snapshots:
            self._account_payloads(initiator_payload, responder_payload)
        self._metrics.exchanges += 1
        self._metrics.messages += 2
        self._metrics.activated_edges.add(
            self.graph.canonical_edge(initiator, responder)
        )

    def _account_payloads(
        self, initiator_payload: Payload, responder_payload: Payload
    ) -> None:
        sent = initiator_payload.rumor_count
        received = responder_payload.rumor_count
        self._metrics.rumor_tokens_sent += sent + received
        if sent < received:
            sent = received
        if sent > self._metrics.max_payload_rumors:
            self._metrics.max_payload_rumors = sent

    def _deliver_due(self) -> int:
        bucket = self._in_flight.pop(self.round, None)
        if bucket is None:
            return 0
        self._pending_count -= len(bucket)
        for exchange in bucket:
            self._deliver(exchange)
        return len(bucket)

    def _deliver(self, exchange: _InFlight) -> None:
        if self.enforce_blocking:
            remaining = self._in_flight_initiations[exchange.initiator] - 1
            if remaining:
                self._in_flight_initiations[exchange.initiator] = remaining
            else:
                del self._in_flight_initiations[exchange.initiator]
        initiator_alive = responder_alive = True
        if self.failure_model is not None:
            initiator_alive = not self.failure_model.node_crashed(
                exchange.initiator, self.round
            )
            responder_alive = not self.failure_model.node_crashed(
                exchange.responder, self.round
            )
        if self._checkers:
            delivery_view = DeliveryView(
                initiator=exchange.initiator,
                responder=exchange.responder,
                initiated_at=exchange.initiated_at,
                delivered_at=self.round,
                ping_only=False,
                initiator_alive=initiator_alive,
            )
        if not responder_alive:
            self._metrics.lost_exchanges += 1
            if self.recorder is not None:
                self.recorder.record(
                    VoidExchangeEvent(
                        round=self.round,
                        initiator=exchange.initiator,
                        responder=exchange.responder,
                        initiated_at=exchange.initiated_at,
                    )
                )
            if self._checkers:
                self._log_event(
                    f"round {self.round}: exchange {exchange.initiator!r} -> "
                    f"{exchange.responder!r} (from round "
                    f"{exchange.initiated_at}) void: responder crashed"
                )
                for checker in self._checkers:
                    checker.on_exchange_void(self, delivery_view)
            return
        if self.fresh_snapshots:
            initiator_payload = self.state.snapshot(exchange.initiator)
            responder_payload = self.state.snapshot(exchange.responder)
            self._account_payloads(initiator_payload, responder_payload)
        else:
            initiator_payload = exchange.initiator_payload
            responder_payload = exchange.responder_payload
        recorder = self.recorder
        if recorder is not None:
            before_responder = self.state.rumor_count(exchange.responder)
            before_initiator = (
                self.state.rumor_count(exchange.initiator) if initiator_alive else 0
            )
        self.state.merge(exchange.responder, initiator_payload)
        if initiator_alive:
            self.state.merge(exchange.initiator, responder_payload)
        if recorder is not None:
            recorder.record(
                DeliveryEvent(
                    round=self.round,
                    initiator=exchange.initiator,
                    responder=exchange.responder,
                    initiated_at=exchange.initiated_at,
                    ping=False,
                    initiator_alive=initiator_alive,
                    learned_by_initiator=(
                        self.state.rumor_count(exchange.initiator) - before_initiator
                        if initiator_alive
                        else 0
                    ),
                    learned_by_responder=(
                        self.state.rumor_count(exchange.responder) - before_responder
                    ),
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {exchange.initiator!r} <-> "
                f"{exchange.responder!r} deliver (initiated at "
                f"{exchange.initiated_at}"
                + ("" if initiator_alive else ", initiator crashed")
                + ")"
            )
            for checker in self._checkers:
                checker.on_delivery(self, delivery_view)
        endpoints = [(exchange.responder, False)]
        if initiator_alive:
            endpoints.insert(0, (exchange.initiator, True))
        parked = self._parked
        for node, by_me in endpoints:
            peer = exchange.responder if by_me else exchange.initiator
            self._protocols[node].on_deliver(
                self._contexts[node],
                Delivery(
                    peer=peer,
                    initiated_at=exchange.initiated_at,
                    delivered_at=self.round,
                    initiated_by_me=by_me,
                ),
            )
            if node in parked:
                # The delivery may have changed the node's mind about being
                # done: re-activate it for this round's scan.
                parked.discard(node)
                self._woken.append(node)
                if recorder is not None:
                    recorder.record(WakeupEvent(round=self.round, node=node))


# ----------------------------------------------------------------------
# Backend registry and selection scope.
ENGINE_BACKENDS: dict[str, Callable[..., Any]] = {
    "scalar": Engine,
    "vector": VectorEngine,
}

_BACKEND_STACK: list[str] = ["scalar"]


def current_engine_backend() -> str:
    """The backend name engines default to (innermost active scope)."""
    return _BACKEND_STACK[-1]


def resolve_engine_backend(name: Optional[str] = None) -> Callable[..., Any]:
    """Map a backend name to an engine class (``None`` = current scope)."""
    if name is None:
        name = current_engine_backend()
    try:
        return ENGINE_BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine backend {name!r}; available: "
            + ", ".join(sorted(ENGINE_BACKENDS))
        ) from None


@contextlib.contextmanager
def engine_backend(name: str) -> Iterator[None]:
    """Scope during which ``resolve_engine_backend(None)`` yields ``name``.

    This is how ``repro --backend vector`` and
    ``run_experiment(..., backend=...)`` steer every engine construction
    in a call tree without threading a parameter through each layer.
    """
    resolve_engine_backend(name)  # validate eagerly, before entering
    _BACKEND_STACK.append(name)
    try:
        yield
    finally:
        _BACKEND_STACK.pop()
