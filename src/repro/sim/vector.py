"""Vectorized engine backend: whole-round array ops for oblivious protocols.

The scalar :class:`~repro.sim.engine.Engine` walks every node with Python
calls each round, which caps experiments near ``n ≈ 10⁴``.  This module
provides a second backend, :class:`VectorEngine`, that advances an entire
round as a handful of numpy array operations:

* **State** lives in a :class:`VectorState` — a packed ``n × ceil(B/64)``
  uint64 bitset matrix (``B`` = rumor-space size), so merging all of a
  round's deliveries is one duplicate-safe segmented OR
  (:func:`_scatter_or`) instead of per-exchange Python merges.
* **Partner selection** reads a CSR layout built from
  :meth:`~repro.graphs.latency_graph.LatencyGraph.adjacency_arrays`, with
  neighbor slots ordered by ``repr`` — exactly the order the oblivious
  protocols sort their neighbor lists in — so the same per-node
  ``random.Random`` streams produce the same partners as the scalar run.
* **Delivery buckets** are arrays of in-flight exchanges keyed by their
  delivery round (latency slices of one round's initiations), mirroring
  the scalar engine's ``dict.pop`` bucket scheme at array granularity.
* **Metrics and coverage** come from array reductions: payload sizes via
  popcounts, activated edges via a boolean edge-id array folded back into
  the canonical :class:`~repro.sim.metrics.EngineMetrics` set on demand.

Backend eligibility (see ``docs/MODEL.md`` §8): only **oblivious**
protocols — whose partner choice does not depend on delivered knowledge
beyond a fixed knows/not-knows gate, which never locally terminate, and
which take no per-delivery actions — can be replayed as whole-round array
ops.  Protocols declare eligibility by returning a :class:`VectorProgram`
from a ``vector_program()`` method; anything else is rejected with a
:class:`~repro.errors.SimulationError` naming the offending protocol.

Exactness contract: for the same graph, seeds, and engine options, a
``VectorEngine`` run is **field-identical** to the scalar ``Engine`` run —
same per-node knowledge each round, same ``EngineMetrics``, same
completion round.  The differential suite (``tests/test_vector_differential``)
and the golden-trace parity suite enforce this.

When a run needs observability or model features the array path cannot
replay in order (invariant checkers, a recorder, a failure model,
``fresh_snapshots``, ``enforce_blocking``, or note boards carried in from
a previous phase), the engine transparently drops to a **sequential
path** — a faithful per-exchange mirror of the scalar engine operating on
the bitset state — so event streams stay byte-identical to the scalar
backend's at small ``n``, and a recorder-off run keeps the zero-cost
array fast path.
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses
import random
import weakref
from typing import Any, Callable, Hashable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph, Node
from repro.obs.events import (
    BlockedInitiationEvent,
    DeliveryEvent,
    InitiationEvent,
    RejectedInitiationEvent,
    RoundEvent,
    VoidExchangeEvent,
)
from repro.obs.recorder import Recorder
from repro.sim import invariants as _invariants
from repro.sim.engine import (
    _CHECKER_LOG_SIZE,
    _EMPTY_PAYLOAD,
    Engine,
    NodeContext,
    NodeProtocol,
    ProtocolFactory,
    _InFlight,
)
from repro.sim.failures import FailureModel
from repro.sim.invariants import DeliveryView, ExchangeView, InvariantChecker
from repro.sim.metrics import EngineMetrics
from repro.sim.state import NetworkState, Note, Payload, _RumorSpace

__all__ = [
    "VectorProgram",
    "VectorState",
    "VectorEngine",
    "ENGINE_BACKENDS",
    "current_engine_backend",
    "engine_backend",
    "resolve_engine_backend",
]


# ----------------------------------------------------------------------
# Popcount: hardware instruction when numpy provides it, byte LUT otherwise.
if hasattr(np, "bitwise_count"):

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a uint64 bit matrix (vectorized)."""
        return np.bitwise_count(matrix).sum(axis=-1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount via a byte lookup table (numpy < 2 fallback)."""
        return _POPCOUNT_LUT[matrix.view(np.uint8)].sum(axis=-1, dtype=np.int64)


def _scatter_or(bits: np.ndarray, rows: np.ndarray, payloads: np.ndarray) -> None:
    """OR each payload row into ``bits[row]``, duplicate-safe.

    Plain fancy-index assignment (``bits[rows] |= payloads``) silently
    keeps only one update per duplicated row index; a round's deliveries
    routinely hit the same responder many times.  Sorting by row and
    OR-reducing each segment first preserves every delivery in one pass.
    """
    if rows.shape[0] == 0:
        return
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_payloads = payloads[order]
    starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
    merged = np.bitwise_or.reduceat(sorted_payloads, starts, axis=0)
    bits[sorted_rows[starts]] |= merged


def _randbelow_of(rng: random.Random) -> Callable[[int], int]:
    """The primitive ``Random.choice(seq)`` consumes: ``_randbelow(len(seq))``.

    Binding it once per node keeps the per-round Python cost of the random
    cohorts to one call per initiating node; ``randrange`` consumes the
    underlying stream identically and serves as the fallback.
    """
    return getattr(rng, "_randbelow", rng.randrange)


#: CSR layouts are pure functions of a graph revision, and engines are
#: routinely rebuilt over one memoized graph (benchmark repeats, seed
#: ladders), so the repr-sort and edge-id mapping are cached per graph.
#: Keyed by ``id(graph)`` (graphs are unhashable); a weakref callback
#: evicts the entry when the graph is collected, before its id can be
#: reused.
_CSR_CACHE: dict[int, tuple] = {}


def _csr_arrays(graph: LatencyGraph) -> tuple:
    """``(deg, off, nbr, lat, eid, edge_tuples)`` for ``graph``, cached.

    ``nbr`` holds each node's neighbors as dense ids in ``repr`` order —
    the order the oblivious protocols sort their neighbor lists in — so a
    slot index drawn from the same RNG stream lands on the same partner.
    ``eid`` maps each CSR slot to its undirected edge id in
    :meth:`~repro.graphs.latency_graph.LatencyGraph.edge_arrays` order,
    and ``edge_tuples[e]`` is edge ``e`` as a canonical node-pair tuple.
    """
    version = getattr(graph, "_version", None)
    key = id(graph)
    cached = _CSR_CACHE.get(key)
    if (
        cached is not None
        and version is not None
        and cached[0] == version
        and cached[1]() is graph
    ):
        return cached[2:]
    order = graph.nodes()
    n = len(order)
    neighbor_ids, neighbor_lats = graph.adjacency_arrays()
    reprs = [repr(node) for node in order]
    deg = np.fromiter((len(row) for row in neighbor_ids), dtype=np.int64, count=n)
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=off[1:])
    nbr = np.zeros(int(off[-1]), dtype=np.int64)
    lat = np.zeros(int(off[-1]), dtype=np.int64)
    for i in range(n):
        row = neighbor_ids[i]
        if not row:
            continue
        slot_order = sorted(range(len(row)), key=lambda k: reprs[row[k]])
        lrow = neighbor_lats[i]
        nbr[off[i] : off[i + 1]] = [row[k] for k in slot_order]
        lat[off[i] : off[i + 1]] = [lrow[k] for k in slot_order]
    us, vs, _ = graph.edge_arrays()
    keys = us * n + vs
    key_order = np.argsort(keys, kind="stable")
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    lo = np.minimum(src, nbr)
    hi = np.maximum(src, nbr)
    eid = key_order[np.searchsorted(keys[key_order], lo * n + hi)]
    # Canonical (u, v) node tuples per edge id, built once: rebuilding the
    # activated-edges set then costs one list index per active edge.
    edge_tuples = [
        (order[u], order[v]) for u, v in zip(us.tolist(), vs.tolist())
    ]
    arrays = (deg, off, nbr, lat, eid, edge_tuples)
    if version is not None:
        try:
            ref = weakref.ref(
                graph, lambda _ref, key=key: _CSR_CACHE.pop(key, None)
            )
        except TypeError:  # pragma: no cover - non-weakref-able graph type
            pass
        else:
            _CSR_CACHE[key] = (version, ref) + arrays
    return arrays


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VectorProgram:
    """Declarative partner-selection rule an oblivious protocol exports.

    Attributes
    ----------
    kind:
        ``"random"`` — contact a uniform random neighbor (push--pull and
        its gated push/pull variants) — or ``"round_robin"`` — cycle the
        repr-sorted neighbor list deterministically (flooding).
    rng:
        For ``kind="random"``: the protocol's own per-node
        :class:`random.Random`.  The backend consumes it exactly as
        ``Random.choice`` over the repr-sorted neighbor list would, so
        scalar and vector runs of the same seed pick the same partners.
    gate:
        ``None`` (always initiate) or ``("knows", rumor)`` /
        ``("not_knows", rumor)``: the node only initiates in rounds where
        the condition holds against the shared state.  Gated-out nodes
        consume no randomness, matching the scalar protocols which return
        early before touching their RNG.
    start:
        Initial round-robin offset, mirroring any counter the protocol
        advanced before the engine adopted it.
    """

    kind: str
    rng: Optional[random.Random] = None
    gate: Optional[tuple[str, Hashable]] = None
    start: int = 0


# ----------------------------------------------------------------------
class VectorState:
    """Packed-bitset network state: one row of uint64 rumor bits per node.

    Implements the full :class:`~repro.sim.state.NetworkState` API
    (rumors, coverage, note boards, snapshot/merge interop via
    :class:`~repro.sim.state.Payload`) over an ``n × words`` uint64
    matrix, so the vector engine's array kernels and every scalar
    consumer (completion predicates, invariant checkers, the sequential
    mirror path) read the same storage.
    """

    __slots__ = ("_node_index", "_node_list", "_space", "_bits", "_notes")

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._node_index: dict[Node, int] = {}
        self._node_list: list[Node] = []
        for node in nodes:
            if node not in self._node_index:
                self._node_index[node] = len(self._node_list)
                self._node_list.append(node)
        self._space = _RumorSpace()
        self._bits = np.zeros((len(self._node_list), 1), dtype=np.uint64)
        self._notes: list[dict[Node, Note]] = [{} for _ in self._node_list]

    @classmethod
    def from_network_state(cls, state: NetworkState) -> "VectorState":
        """A bitset copy of a scalar state (same tokens, same bit indices)."""
        out = cls.__new__(cls)
        out._node_index = dict(state._node_index)
        out._node_list = list(state._node_list)
        out._space = _RumorSpace()
        out._space.index = dict(state._space.index)
        out._space.tokens = list(state._space.tokens)
        words = max(1, (len(out._space.tokens) + 63) // 64)
        out._bits = np.zeros((len(out._node_list), words), dtype=np.uint64)
        for i, mask in enumerate(state._masks):
            if mask:
                out._bits[i] = np.frombuffer(
                    mask.to_bytes(words * 8, "little"), dtype=np.uint64
                )
        out._notes = [dict(board) for board in state._notes]
        return out

    # -- packed-row plumbing --------------------------------------------
    def _row_mask(self, i: int) -> int:
        """Row ``i`` as an arbitrary-precision Python-int bitmask."""
        return int.from_bytes(self._bits[i].tobytes(), "little")

    def _ensure_bit(self, bit: int) -> None:
        """Grow the matrix (doubling words) until ``bit`` is addressable."""
        words = self._bits.shape[1]
        if bit < words * 64:
            return
        grown_words = words
        while bit >= grown_words * 64:
            grown_words *= 2
        grown = np.zeros((self._bits.shape[0], grown_words), dtype=np.uint64)
        grown[:, :words] = self._bits
        self._bits = grown

    def _or_row(self, i: int, mask: int) -> None:
        if not mask:
            return
        self._ensure_bit(mask.bit_length() - 1)
        words = self._bits.shape[1]
        self._bits[i] |= np.frombuffer(
            mask.to_bytes(words * 8, "little"), dtype=np.uint64
        )

    # -- NetworkState API -----------------------------------------------
    def nodes(self) -> list[Node]:
        """All nodes this state tracks, in insertion order."""
        return list(self._node_list)

    def add_rumor(self, node: Node, rumor: Hashable) -> None:
        """Give ``node`` knowledge of ``rumor``."""
        i = self._node_index[node]
        bit = self._space.intern(rumor)
        self._ensure_bit(bit)
        word, offset = divmod(bit, 64)
        self._bits[i, word] |= np.uint64(1 << offset)

    def seed_self_rumors(self) -> None:
        """Give every node its own id as a rumor (all-to-all dissemination)."""
        for node in self._node_list:
            self.add_rumor(node, node)

    def rumors(self, node: Node) -> frozenset:
        """The rumors ``node`` currently knows."""
        return self._space.unpack(self._row_mask(self._node_index[node]))

    def rumor_count(self, node: Node) -> int:
        """How many rumors ``node`` knows (one vectorized popcount)."""
        return int(_popcount_rows(self._bits[self._node_index[node]]))

    def knows(self, node: Node, rumor: Hashable) -> bool:
        """Whether ``node`` knows ``rumor``."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return False
        word, offset = divmod(bit, 64)
        if word >= self._bits.shape[1]:
            return False
        return bool(self._bits[self._node_index[node], word] & np.uint64(1 << offset))

    def count_knowing(self, rumor: Hashable) -> int:
        """How many nodes know ``rumor`` (one column reduction)."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return 0
        word, offset = divmod(bit, 64)
        if word >= self._bits.shape[1]:
            return 0
        return int(
            np.count_nonzero(self._bits[:, word] & np.uint64(1 << offset))
        )

    def knows_every(
        self, nodes: Iterable[Node], rumors: Iterable[Hashable]
    ) -> bool:
        """Whether every node in ``nodes`` knows every rumor in ``rumors``.

        One vectorized mask comparison over the packed rows instead of
        materializing per-node rumor frozensets (which is O(n²) on an
        all-to-all completeness check).
        """
        index = self._space.index
        words = self._bits.shape[1]
        required = np.zeros(words, dtype=np.uint64)
        for rumor in rumors:
            bit = index.get(rumor)
            if bit is None or bit >= words * 64:
                return False
            word, offset = divmod(bit, 64)
            required[word] |= np.uint64(1 << offset)
        rows = self._bits[[self._node_index[node] for node in nodes]]
        return bool(((rows & required) == required).all())

    # -- notes ----------------------------------------------------------
    def publish_note(self, origin: Node, **data: Any) -> None:
        """Write/overwrite ``origin``'s own note, bumping its version."""
        i = self._node_index[origin]
        old = self._notes[i].get(origin)
        version = (old.version + 1) if old is not None else 1
        self._notes[i][origin] = Note(
            version=version, data=tuple(sorted(data.items()))
        )

    def note_of(self, reader: Node, origin: Node) -> Optional[Note]:
        """The note of ``origin`` as currently known by ``reader`` (or ``None``)."""
        return self._notes[self._node_index[reader]].get(origin)

    def known_note_origins(self, reader: Node) -> list[Node]:
        """All origins whose notes ``reader`` has seen."""
        return list(self._notes[self._node_index[reader]])

    def clear_notes(self) -> None:
        """Drop every note board."""
        for board in self._notes:
            board.clear()

    # -- exchange plumbing ----------------------------------------------
    def snapshot(self, node: Node) -> Payload:
        """An immutable snapshot of everything ``node`` knows right now."""
        i = self._node_index[node]
        return Payload(
            notes=tuple(self._notes[i].items()),
            mask=self._row_mask(i),
            space=self._space,
        )

    def merge(self, node: Node, payload: Payload) -> bool:
        """Merge a received snapshot; returns ``True`` if anything was new."""
        i = self._node_index[node]
        if payload._space is self._space and payload._mask is not None:
            incoming = payload._mask
        else:
            incoming = 0
            for rumor in payload.rumors:
                incoming |= 1 << self._space.intern(rumor)
        mine = self._row_mask(i)
        changed = False
        if incoming & ~mine:
            self._or_row(i, incoming)
            changed = True
        board = self._notes[i]
        for origin, note in payload.notes:
            current = board.get(origin)
            if current is None or note.version > current.version:
                board[origin] = note
                changed = True
        return changed


# ----------------------------------------------------------------------
@dataclasses.dataclass(slots=True)
class _Batch:
    """One latency bucket's worth of in-flight exchanges, as arrays.

    Rows are in initiation order (initiator dense-id order within the
    round); payload matrices are row snapshots taken at initiation time.
    """

    initiators: np.ndarray
    responders: np.ndarray
    initiator_payloads: np.ndarray
    responder_payloads: np.ndarray


class VectorEngine:
    """Array-ops drop-in for :class:`~repro.sim.engine.Engine`.

    Accepts the same constructor arguments and exposes the same run-facing
    surface (``step``/``run``/``metrics``/``last_initiations``/
    ``pending_exchanges``/``all_done``/``protocol``/``finish_checks``),
    but requires every protocol instance to export a
    :class:`VectorProgram` (oblivious protocols only — see module
    docstring).  Runs with checkers, a recorder, a failure model,
    ``fresh_snapshots``, ``enforce_blocking``, or inherited note boards
    take the sequential mirror path; plain runs take the array fast path.
    """

    def __init__(
        self,
        graph: LatencyGraph,
        protocol_factory: ProtocolFactory,
        state: Optional[Any] = None,
        latencies_known: bool = False,
        fresh_snapshots: bool = False,
        failure_model: Optional[FailureModel] = None,
        max_incoming_per_round: Optional[int] = None,
        enforce_blocking: bool = False,
        checkers: Optional[Sequence[InvariantChecker]] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_incoming_per_round is not None and max_incoming_per_round < 1:
            raise SimulationError(
                f"max_incoming_per_round must be >= 1, got {max_incoming_per_round}"
            )
        self.graph = graph
        if state is None:
            self.state = VectorState(graph.nodes())
        elif isinstance(state, VectorState):
            self.state = state
        elif isinstance(state, NetworkState):
            self.state = VectorState.from_network_state(state)
        else:
            raise SimulationError(
                "VectorEngine needs a NetworkState or VectorState, got "
                f"{type(state).__name__}"
            )
        self.latencies_known = latencies_known
        self.fresh_snapshots = fresh_snapshots
        self.failure_model = failure_model
        self.max_incoming_per_round = max_incoming_per_round
        self.enforce_blocking = enforce_blocking
        self.recorder = recorder
        self._metrics = EngineMetrics()
        if enforce_blocking:
            self._metrics.blocked_initiations = 0
        self._in_flight_initiations: dict[Node, int] = {}
        self.round = 0
        self._sequence = 0
        self._order = graph.nodes()
        n = graph.num_nodes
        try:
            self._row_of = np.fromiter(
                (self.state._node_index[node] for node in self._order),
                dtype=np.int64,
                count=n,
            )
        except KeyError as exc:
            raise SimulationError(
                f"state does not track graph node {exc.args[0]!r}"
            ) from None

        self._protocols: dict[Node, NodeProtocol] = {}
        self._contexts: dict[Node, NodeContext] = {}
        for node in self._order:
            self._protocols[node] = protocol_factory(node)
            self._contexts[node] = NodeContext(self, node)
        for node in self._order:
            self._protocols[node].setup(self._contexts[node])
        self._programs = [self._program_for(node) for node in self._order]

        deg, off, nbr, lat, eid, edge_tuples = _csr_arrays(graph)
        self._deg, self._off, self._nbr, self._lat = deg, off, nbr, lat
        self._eid = eid
        self._edge_tuples = edge_tuples
        self._edge_active = np.zeros(len(edge_tuples), dtype=bool)
        self._edges_dirty = False

        # Selection cohorts: nodes sharing (kind, gate) advance together.
        cohorts: dict[tuple, list[int]] = {}
        for i, program in enumerate(self._programs):
            if deg[i]:
                cohorts.setdefault((program.kind, program.gate), []).append(i)
        self._cohorts = []
        for (kind, gate), ids_list in cohorts.items():
            ids = np.array(ids_list, dtype=np.int64)
            entry: dict[str, Any] = {
                "kind": kind,
                "gate": gate,
                "ids": ids,
                "degs": deg[ids],
            }
            if kind == "random":
                rngs = [self._programs[i].rng for i in ids_list]
                entry["draw"] = [_randbelow_of(rng) for rng in rngs]
                entry["deg_list"] = [int(deg[i]) for i in ids_list]
                # CPython's Random._randbelow draws getrandbits(k) with
                # rejection; when every rng is a plain random.Random the
                # fast path replays that primitive directly (one C call
                # per node, vectorized rejection check) — same stream,
                # no Python frame per draw.
                base = getattr(random.Random, "_randbelow", None)
                if base is not None and all(
                    type(rng) is random.Random
                    and rng._randbelow.__func__ is base
                    for rng in rngs
                ):
                    entry["gk"] = [
                        (rng.getrandbits, d.bit_length())
                        for rng, d in zip(rngs, entry["deg_list"])
                    ]
            self._cohorts.append(entry)
        self._rr_next = np.fromiter(
            (program.start for program in self._programs), dtype=np.int64, count=n
        )

        if checkers is None:
            checkers = (
                _invariants.default_checkers()
                if _invariants.checking_enabled()
                else ()
            )
        self._checkers: tuple[InvariantChecker, ...] = tuple(checkers)
        self._checker_log: collections.deque[str] = collections.deque(
            maxlen=_CHECKER_LOG_SIZE
        )

        # Fast path only when nothing needs per-exchange ordering: checkers,
        # recorder, failures, fresh snapshots, blocking, and inherited note
        # boards all observe (or perturb) individual exchanges.
        self._sequential = bool(
            self._checkers
            or recorder is not None
            or failure_model is not None
            or fresh_snapshots
            or enforce_blocking
            or any(self.state._notes)
        )
        self._words = self.state._bits.shape[1]
        self._in_flight: dict[int, list[_InFlight]] = {}
        self._buckets: dict[int, list[_Batch]] = {}
        self._pending_count = 0
        self._last_pairs: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._last_list: Optional[list[tuple[Node, Node]]] = []
        for checker in self._checkers:
            checker.on_attach(self)

    # ------------------------------------------------------------------
    #: Protocol classes that already passed the structural eligibility
    #: checks (class-level, so validating n instances costs one set probe
    #: per node after the first engine sees the class).
    _ELIGIBLE_CLASSES: set = set()

    @classmethod
    def _validate_class(cls, protocol_cls: type) -> None:
        """Structural (class-level) vector-eligibility checks, memoized."""
        if protocol_cls in cls._ELIGIBLE_CLASSES:
            return
        name = protocol_cls.__name__
        if getattr(protocol_cls, "vector_program", None) is None:
            raise SimulationError(
                f"protocol {name} is not vector-backend eligible: it declares "
                "no vector_program() (only oblivious protocols can run on the "
                "vector backend; see docs/MODEL.md §8)"
            )
        if protocol_cls.is_done is not NodeProtocol.is_done:
            raise SimulationError(
                f"protocol {name} overrides is_done(); the vector backend only "
                "runs oblivious protocols, which never terminate locally"
            )
        if protocol_cls.on_deliver is not NodeProtocol.on_deliver:
            raise SimulationError(
                f"protocol {name} overrides on_deliver(); the vector backend "
                "cannot replay per-delivery protocol callbacks"
            )
        cls._ELIGIBLE_CLASSES.add(protocol_cls)

    def _program_for(self, node: Node) -> VectorProgram:
        """Extract and validate one protocol's :class:`VectorProgram`."""
        protocol = self._protocols[node]
        cls = type(protocol)
        name = cls.__name__
        self._validate_class(cls)
        if not getattr(protocol, "sends_payload", True):
            raise SimulationError(
                f"protocol {name} is ping-only (sends_payload=False); the "
                "vector backend only ships rumor payloads"
            )
        program = protocol.vector_program()
        if not isinstance(program, VectorProgram):
            raise SimulationError(
                f"{name}.vector_program() must return a VectorProgram, got "
                f"{type(program).__name__}"
            )
        if program.kind not in ("random", "round_robin"):
            raise SimulationError(
                f"unknown vector program kind {program.kind!r} from {name}"
            )
        if program.kind == "random" and program.rng is None:
            raise SimulationError(
                f"{name} declares kind='random' but carries no rng"
            )
        if program.gate is not None and program.gate[0] not in (
            "knows",
            "not_knows",
        ):
            raise SimulationError(
                f"unknown vector program gate {program.gate[0]!r} from {name}"
            )
        return program

    # -- Engine-compatible surface --------------------------------------
    @property
    def metrics(self) -> EngineMetrics:
        """Engine counters; activated edges are folded in lazily."""
        if self._edges_dirty:
            edge_tuples = self._edge_tuples
            self._metrics.activated_edges = {
                edge_tuples[e]
                for e in np.flatnonzero(self._edge_active).tolist()
            }
            self._edges_dirty = False
        return self._metrics

    @property
    def last_initiations(self) -> list[tuple[Node, Node]]:
        """This round's ``(initiator, responder)`` pairs (lazy on fast path)."""
        if self._last_list is None:
            node_at = self.graph.node_at
            initiators, responders = self._last_pairs
            self._last_list = [
                (node_at(a), node_at(b))
                for a, b in zip(initiators.tolist(), responders.tolist())
            ]
        return self._last_list

    def protocol(self, node: Node) -> NodeProtocol:
        """The protocol instance for ``node`` (for post-run inspection)."""
        return self._protocols[node]

    def all_done(self) -> bool:
        """Oblivious protocols never terminate: done only without live nodes."""
        if self.failure_model is None:
            return not self._order
        return all(
            self.failure_model.node_crashed(node, self.round)
            for node in self._order
        )

    def pending_exchanges(self) -> int:
        """Number of exchanges still in flight."""
        return self._pending_count

    def recent_checker_events(self) -> list[str]:
        """The most recent logged events (the violation trace excerpt)."""
        return list(self._checker_log)

    def _log_event(self, event: str) -> None:
        if self._checkers:
            self._checker_log.append(event)

    def run(
        self,
        until: Optional[Callable[["VectorEngine"], bool]] = None,
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run until ``until(engine)`` is true (checked before each round)."""
        predicate = until if until is not None else (lambda engine: engine.all_done())
        while not predicate(self):
            if self.round >= max_rounds:
                raise SimulationError(
                    f"simulation exceeded max_rounds={max_rounds} "
                    f"(round={self.round}, pending={self._pending_count})"
                )
            self.step()
        self.finish_checks()
        return self.round

    def finish_checks(self) -> None:
        """Give every attached invariant checker a final end-of-run look."""
        for checker in self._checkers:
            checker.on_run_end(self)

    def step(self) -> None:
        """Execute one round: deliver due exchanges, then collect initiations."""
        if self._sequential:
            self._step_sequential()
        else:
            self._step_fast()

    # -- fast path: one round = a handful of array ops ------------------
    def _gate_passes(self, ids: np.ndarray, gate: tuple) -> np.ndarray:
        condition, rumor = gate
        bit = self.state._space.index.get(rumor)
        if bit is None:
            knows = np.zeros(ids.shape[0], dtype=bool)
        else:
            word, offset = divmod(bit, 64)
            column = self.state._bits[self._row_of[ids], word]
            knows = (column & np.uint64(1 << offset)) != 0
        return ~knows if condition == "not_knows" else knows

    def _step_fast(self) -> None:
        bits = self.state._bits
        if bits.shape[1] != self._words:
            raise SimulationError(
                "rumor space grew mid-run; the vector fast path assumes a "
                "fixed rumor universe (oblivious protocols never intern new "
                "rumors after setup)"
            )
        # Deliver everything due this round with one segmented OR.
        batches = self._buckets.pop(self.round, None)
        if batches is not None:
            rows = []
            payloads = []
            delivered = 0
            for batch in batches:
                delivered += batch.initiators.shape[0]
                rows.append(self._row_of[batch.responders])
                payloads.append(batch.initiator_payloads)
                rows.append(self._row_of[batch.initiators])
                payloads.append(batch.responder_payloads)
            self._pending_count -= delivered
            _scatter_or(bits, np.concatenate(rows), np.vstack(payloads))

        # Partner selection, cohort by cohort.  Gated-out and degree-0
        # nodes consume no randomness, exactly like the scalar protocols.
        chosen_ids = []
        chosen_slots = []
        for cohort in self._cohorts:
            ids = cohort["ids"]
            degs = cohort["degs"]
            take = None
            if cohort["gate"] is not None:
                passes = self._gate_passes(ids, cohort["gate"])
                if not passes.all():
                    take = np.flatnonzero(passes)
                    ids = ids[take]
                    degs = degs[take]
                if ids.shape[0] == 0:
                    continue
            if cohort["kind"] == "random":
                deg_list = cohort["deg_list"]
                gk = cohort.get("gk")
                if gk is not None:
                    # First draw for every node in one pass, then redraw
                    # the rejected ones (r >= deg) exactly as CPython's
                    # _randbelow rejection loop would.  Streams are
                    # per-node, so batching the first draws cannot reorder
                    # any single node's consumption.
                    if take is None:
                        sel = range(len(gk))
                    else:
                        sel = take.tolist()
                    picks = np.fromiter(
                        (gk[t][0](gk[t][1]) for t in sel),
                        dtype=np.int64,
                        count=ids.shape[0],
                    )
                    for j in np.flatnonzero(picks >= degs).tolist():
                        t = j if take is None else sel[j]
                        g, k = gk[t]
                        d = deg_list[t]
                        v = g(k)
                        while v >= d:
                            v = g(k)
                        picks[j] = v
                    slots = self._off[ids] + picks
                else:
                    draw = cohort["draw"]
                    if take is None:
                        picks = [d(k) for d, k in zip(draw, deg_list)]
                    else:
                        picks = [draw[k](deg_list[k]) for k in take.tolist()]
                    slots = self._off[ids] + np.asarray(picks, dtype=np.int64)
            else:  # round_robin
                counters = self._rr_next[ids]
                slots = self._off[ids] + counters % degs
                self._rr_next[ids] = counters + 1
            chosen_ids.append(ids)
            chosen_slots.append(slots)

        if chosen_ids:
            initiators = np.concatenate(chosen_ids)
            slots = np.concatenate(chosen_slots)
            if len(chosen_ids) > 1:
                # Restore dense-id initiation order (the scalar scan order);
                # the in-degree cap below is first-come-first-served in it.
                order = np.argsort(initiators, kind="stable")
                initiators = initiators[order]
                slots = slots[order]
        else:
            initiators = slots = np.zeros(0, dtype=np.int64)
        responders = self._nbr[slots]
        latencies = self._lat[slots]
        edge_ids = self._eid[slots]

        cap = self.max_incoming_per_round
        if cap is not None and initiators.shape[0]:
            by_target = np.argsort(responders, kind="stable")
            targets = responders[by_target]
            group_starts = np.flatnonzero(np.r_[True, targets[1:] != targets[:-1]])
            sizes = np.diff(np.r_[group_starts, targets.shape[0]])
            rank = (
                np.arange(targets.shape[0], dtype=np.int64)
                - np.repeat(group_starts, sizes)
            )
            accepted = np.empty(targets.shape[0], dtype=bool)
            accepted[by_target] = rank < cap
            rejected = int(targets.shape[0] - int(accepted.sum()))
            if rejected:
                self._metrics.rejected_initiations += rejected
                initiators = initiators[accepted]
                responders = responders[accepted]
                latencies = latencies[accepted]
                edge_ids = edge_ids[accepted]

        count = int(initiators.shape[0])
        self._last_pairs = (initiators, responders)
        self._last_list = None
        if count:
            metrics = self._metrics
            initiator_payloads = bits[self._row_of[initiators]]
            responder_payloads = bits[self._row_of[responders]]
            sent = _popcount_rows(initiator_payloads)
            received = _popcount_rows(responder_payloads)
            metrics.rumor_tokens_sent += int(sent.sum() + received.sum())
            largest = int(max(sent.max(), received.max()))
            if largest > metrics.max_payload_rumors:
                metrics.max_payload_rumors = largest
            metrics.exchanges += count
            metrics.messages += 2 * count
            self._edge_active[edge_ids] = True
            self._edges_dirty = True
            self._pending_count += count
            self._sequence += count
            unique_latencies = np.unique(latencies)
            for latency in unique_latencies.tolist():
                if unique_latencies.shape[0] == 1:
                    pick: Any = slice(None)
                else:
                    pick = latencies == latency
                self._buckets.setdefault(self.round + int(latency), []).append(
                    _Batch(
                        initiators=initiators[pick],
                        responders=responders[pick],
                        initiator_payloads=initiator_payloads[pick],
                        responder_payloads=responder_payloads[pick],
                    )
                )
        self.round += 1
        self._metrics.rounds = self.round

    # -- sequential path: the scalar engine's semantics, exchange by
    # -- exchange, over the bitset state (checkers/recorder/failures) ----
    def _step_sequential(self) -> None:
        self._last_list = []
        self._last_pairs = None
        for checker in self._checkers:
            checker.on_round_start(self)
        delivered = self._deliver_due()
        recorder = self.recorder
        incoming: dict[Node, int] = {}
        failure_model = self.failure_model
        protocols = self._protocols
        contexts = self._contexts
        graph_adj = self.graph.adjacency_view()
        for node in self._order:
            if failure_model is not None and failure_model.node_crashed(
                node, self.round
            ):
                continue
            target = protocols[node].on_round(contexts[node])
            if target is None:
                continue
            if target not in graph_adj.get(node, ()):
                raise ProtocolError(
                    f"node {node!r} tried to contact non-neighbor {target!r}"
                )
            if self.max_incoming_per_round is not None:
                accepted = incoming.get(target, 0)
                if accepted >= self.max_incoming_per_round:
                    self._metrics.rejected_initiations += 1
                    if recorder is not None:
                        recorder.record(
                            RejectedInitiationEvent(
                                round=self.round, initiator=node, responder=target
                            )
                        )
                    continue
                incoming[target] = accepted + 1
            self._initiate(node, target)
        for checker in self._checkers:
            checker.on_round_end(self)
        if recorder is not None:
            recorder.record(
                RoundEvent(
                    round=self.round,
                    initiations=len(self._last_list),
                    deliveries=delivered,
                    in_flight=self._pending_count,
                )
            )
        self.round += 1
        self._metrics.rounds = self.round

    def _initiate(self, initiator: Node, responder: Node) -> None:
        latency = self.graph.latency(initiator, responder)
        if self.enforce_blocking and self._in_flight_initiations.get(initiator, 0):
            self._metrics.blocked_initiations += 1
            if self.recorder is not None:
                self.recorder.record(
                    BlockedInitiationEvent(
                        round=self.round, initiator=initiator, responder=responder
                    )
                )
            raise ProtocolError(
                f"blocking violation: node {initiator!r} initiated while a "
                "previous exchange of its own is still in flight"
            )
        lost = self.failure_model is not None and self.failure_model.exchange_lost(
            initiator, responder, self.round
        )
        if self.recorder is not None:
            self.recorder.record(
                InitiationEvent(
                    round=self.round,
                    initiator=initiator,
                    responder=responder,
                    latency=latency,
                    ping=False,
                    lost=lost,
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {initiator!r} -> {responder!r} initiate "
                f"(latency {latency}" + (", lost" if lost else "") + ")"
            )
            view = ExchangeView(
                initiator=initiator,
                responder=responder,
                round=self.round,
                latency=latency,
                ping_only=False,
                lost=lost,
            )
            for checker in self._checkers:
                checker.on_initiation(self, view)
        if lost:
            self._metrics.lost_exchanges += 1
            return
        self._sequence += 1
        if self.fresh_snapshots:
            initiator_payload = responder_payload = _EMPTY_PAYLOAD
        else:
            initiator_payload = self.state.snapshot(initiator)
            responder_payload = self.state.snapshot(responder)
        exchange = _InFlight(
            delivers_at=self.round + latency,
            sequence=self._sequence,
            initiator=initiator,
            responder=responder,
            initiated_at=self.round,
            initiator_payload=initiator_payload,
            responder_payload=responder_payload,
            ping_only=False,
        )
        bucket = self._in_flight.get(exchange.delivers_at)
        if bucket is None:
            bucket = self._in_flight[exchange.delivers_at] = []
        bucket.append(exchange)
        self._pending_count += 1
        if self.enforce_blocking:
            self._in_flight_initiations[initiator] = (
                self._in_flight_initiations.get(initiator, 0) + 1
            )
        self._last_list.append((initiator, responder))
        if not self.fresh_snapshots:
            self._account_payloads(initiator_payload, responder_payload)
        self._metrics.exchanges += 1
        self._metrics.messages += 2
        self._metrics.activated_edges.add(
            self.graph.canonical_edge(initiator, responder)
        )

    def _account_payloads(
        self, initiator_payload: Payload, responder_payload: Payload
    ) -> None:
        sent = initiator_payload.rumor_count
        received = responder_payload.rumor_count
        self._metrics.rumor_tokens_sent += sent + received
        if sent < received:
            sent = received
        if sent > self._metrics.max_payload_rumors:
            self._metrics.max_payload_rumors = sent

    def _deliver_due(self) -> int:
        bucket = self._in_flight.pop(self.round, None)
        if bucket is None:
            return 0
        self._pending_count -= len(bucket)
        for exchange in bucket:
            self._deliver(exchange)
        return len(bucket)

    def _deliver(self, exchange: _InFlight) -> None:
        if self.enforce_blocking:
            remaining = self._in_flight_initiations[exchange.initiator] - 1
            if remaining:
                self._in_flight_initiations[exchange.initiator] = remaining
            else:
                del self._in_flight_initiations[exchange.initiator]
        initiator_alive = responder_alive = True
        if self.failure_model is not None:
            initiator_alive = not self.failure_model.node_crashed(
                exchange.initiator, self.round
            )
            responder_alive = not self.failure_model.node_crashed(
                exchange.responder, self.round
            )
        if self._checkers:
            delivery_view = DeliveryView(
                initiator=exchange.initiator,
                responder=exchange.responder,
                initiated_at=exchange.initiated_at,
                delivered_at=self.round,
                ping_only=False,
                initiator_alive=initiator_alive,
            )
        if not responder_alive:
            self._metrics.lost_exchanges += 1
            if self.recorder is not None:
                self.recorder.record(
                    VoidExchangeEvent(
                        round=self.round,
                        initiator=exchange.initiator,
                        responder=exchange.responder,
                        initiated_at=exchange.initiated_at,
                    )
                )
            if self._checkers:
                self._log_event(
                    f"round {self.round}: exchange {exchange.initiator!r} -> "
                    f"{exchange.responder!r} (from round "
                    f"{exchange.initiated_at}) void: responder crashed"
                )
                for checker in self._checkers:
                    checker.on_exchange_void(self, delivery_view)
            return
        if self.fresh_snapshots:
            initiator_payload = self.state.snapshot(exchange.initiator)
            responder_payload = self.state.snapshot(exchange.responder)
            self._account_payloads(initiator_payload, responder_payload)
        else:
            initiator_payload = exchange.initiator_payload
            responder_payload = exchange.responder_payload
        recorder = self.recorder
        if recorder is not None:
            before_responder = self.state.rumor_count(exchange.responder)
            before_initiator = (
                self.state.rumor_count(exchange.initiator) if initiator_alive else 0
            )
        self.state.merge(exchange.responder, initiator_payload)
        if initiator_alive:
            self.state.merge(exchange.initiator, responder_payload)
        if recorder is not None:
            recorder.record(
                DeliveryEvent(
                    round=self.round,
                    initiator=exchange.initiator,
                    responder=exchange.responder,
                    initiated_at=exchange.initiated_at,
                    ping=False,
                    initiator_alive=initiator_alive,
                    learned_by_initiator=(
                        self.state.rumor_count(exchange.initiator) - before_initiator
                        if initiator_alive
                        else 0
                    ),
                    learned_by_responder=(
                        self.state.rumor_count(exchange.responder) - before_responder
                    ),
                )
            )
        if self._checkers:
            self._log_event(
                f"round {self.round}: {exchange.initiator!r} <-> "
                f"{exchange.responder!r} deliver (initiated at "
                f"{exchange.initiated_at}"
                + ("" if initiator_alive else ", initiator crashed")
                + ")"
            )
            for checker in self._checkers:
                checker.on_delivery(self, delivery_view)


# ----------------------------------------------------------------------
# Backend registry and selection scope.
ENGINE_BACKENDS: dict[str, Callable[..., Any]] = {
    "scalar": Engine,
    "vector": VectorEngine,
}

_BACKEND_STACK: list[str] = ["scalar"]


def current_engine_backend() -> str:
    """The backend name engines default to (innermost active scope)."""
    return _BACKEND_STACK[-1]


def resolve_engine_backend(name: Optional[str] = None) -> Callable[..., Any]:
    """Map a backend name to an engine class (``None`` = current scope)."""
    if name is None:
        name = current_engine_backend()
    try:
        return ENGINE_BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine backend {name!r}; available: "
            + ", ".join(sorted(ENGINE_BACKENDS))
        ) from None


@contextlib.contextmanager
def engine_backend(name: str) -> Iterator[None]:
    """Scope during which ``resolve_engine_backend(None)`` yields ``name``.

    This is how ``repro --backend vector`` and
    ``run_experiment(..., backend=...)`` steer every engine construction
    in a call tree without threading a parameter through each layer.
    """
    resolve_engine_backend(name)  # validate eagerly, before entering
    _BACKEND_STACK.append(name)
    try:
        yield
    finally:
        _BACKEND_STACK.pop()
