"""Shared network state: per-node rumor sets and versioned per-origin notes.

Dissemination protocols in this library all operate on the same two pieces
of node-local knowledge:

* a **rumor set** — the set of rumors the node currently knows.  Rumors are
  arbitrary hashable tokens; for all-to-all dissemination they are node ids,
  for one-to-all broadcast there is a single token.
* a **note board** — a per-origin key/value record (e.g. the error flag and
  rumor-set fingerprint used by the Termination Check of Algorithm 1).  Each
  origin node only ever writes its *own* entry and bumps a version counter
  when it does, so merging two boards is conflict-free: keep the higher
  version per origin.

Keeping this state in one object (rather than inside protocol instances)
lets composite algorithms such as EID run several protocol *phases* over the
same knowledge: the D-DTG phase fills the rumor sets, the RR-broadcast phase
keeps spreading them, the termination check reads them.

Data layout (the simulation fast path)
--------------------------------------
Rumor sets are stored as **Python-int bitmasks** over an interned rumor
space: every distinct rumor token is assigned a dense bit index on first
sight, a node's knowledge is one arbitrary-precision integer, and merging
two rumor sets is a single ``|`` plus a popcount.  Snapshots are
**copy-on-write**: :meth:`snapshot` returns a cached immutable
:class:`Payload` that is reused until the node's state next changes, so
repeated snapshots of an idle node are O(1) and the shipped "frozen set of
rumors" is materialized lazily only if someone actually iterates it.
:meth:`count_knowing` is O(1) via per-rumor coverage counters maintained
incrementally by :meth:`add_rumor`/:meth:`merge`.  The set-of-frozensets
reference semantics are preserved exactly — ``tests/test_state_equivalence``
checks this implementation observation-for-observation against the naive
set-backed :class:`~repro.testing.reference.ReferenceNetworkState`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Iterable, Optional

from repro.graphs.latency_graph import Node

__all__ = ["Note", "NetworkState", "Payload"]

Rumor = Hashable


@dataclasses.dataclass(frozen=True)
class Note:
    """A versioned, origin-owned record. Higher version wins on merge."""

    version: int
    data: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, value in self.data:
            if k == key:
                return value
        return default


class _RumorSpace:
    """Interned rumor tokens: rumor <-> dense bit index, append-only."""

    __slots__ = ("index", "tokens")

    def __init__(self) -> None:
        self.index: dict[Rumor, int] = {}
        self.tokens: list[Rumor] = []

    def intern(self, rumor: Rumor) -> int:
        bit = self.index.get(rumor)
        if bit is None:
            bit = len(self.tokens)
            self.index[rumor] = bit
            self.tokens.append(rumor)
        return bit

    def unpack(self, mask: int) -> frozenset:
        tokens = self.tokens
        out = []
        while mask:
            low = mask & -mask
            out.append(tokens[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)


class Payload:
    """An immutable snapshot shipped in one exchange.

    Either constructed from an explicit ``rumors`` frozenset (the portable
    form any test or foreign state can build) or — on the fast path — from
    a bitmask over a :class:`_RumorSpace`, in which case the frozenset view
    is materialized lazily on first access.
    """

    __slots__ = ("_rumors", "_mask", "_space", "notes")

    def __init__(
        self,
        rumors: Optional[frozenset] = None,
        notes: tuple[tuple[Node, "Note"], ...] = (),
        *,
        mask: Optional[int] = None,
        space: Optional[_RumorSpace] = None,
    ) -> None:
        if rumors is None and mask is None:
            raise TypeError("Payload needs either rumors or a mask+space")
        self._rumors = frozenset(rumors) if rumors is not None else None
        self._mask = mask
        self._space = space
        self.notes = notes

    @property
    def rumors(self) -> frozenset:
        """The shipped rumor set (materialized lazily from the bitmask)."""
        if self._rumors is None:
            self._rumors = self._space.unpack(self._mask)
        return self._rumors

    @property
    def rumor_count(self) -> int:
        """``len(rumors)`` without materializing the frozenset."""
        if self._mask is not None:
            return self._mask.bit_count()
        return len(self._rumors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        return self.rumors == other.rumors and self.notes == other.notes

    def __repr__(self) -> str:
        return f"Payload(rumors={self.rumors!r}, notes={self.notes!r})"


class NetworkState:
    """Rumor sets and note boards for every node in the network."""

    #: Layout name surfaced in metrics/manifests (``sim_state_layout``);
    #: the vector layouts report ``dense``/``broadcast``/``chunked``.
    layout = "scalar"

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._node_index: dict[Node, int] = {}
        self._node_list: list[Node] = []
        for node in nodes:
            if node not in self._node_index:
                self._node_index[node] = len(self._node_list)
                self._node_list.append(node)
        n = len(self._node_list)
        self._space = _RumorSpace()
        self._masks: list[int] = [0] * n
        self._coverage: list[int] = []  # per rumor bit: nodes knowing it
        self._notes: list[dict[Node, Note]] = [{} for _ in range(n)]
        # Copy-on-write snapshot cache, invalidated per node on change.
        self._snapshots: list[Optional[Payload]] = [None] * n

    def nodes(self) -> list[Node]:
        """All nodes this state tracks, in insertion order."""
        return list(self._node_list)

    def state_nbytes(self) -> int:
        """Resident bytes of the rumor-state storage (the mask integers)."""
        return sum((mask.bit_length() + 7) // 8 for mask in self._masks)

    # -- rumors ---------------------------------------------------------
    def add_rumor(self, node: Node, rumor: Rumor) -> None:
        """Give ``node`` knowledge of ``rumor``."""
        i = self._node_index[node]
        bit = self._space.intern(rumor)
        if bit >= len(self._coverage):
            self._coverage.append(0)
        flag = 1 << bit
        if not self._masks[i] & flag:
            self._masks[i] |= flag
            self._coverage[bit] += 1
            self._snapshots[i] = None

    def seed_self_rumors(self) -> None:
        """Give every node its own id as a rumor (all-to-all dissemination)."""
        for node in self._node_list:
            self.add_rumor(node, node)

    def rumors(self, node: Node) -> frozenset:
        """The rumors ``node`` currently knows."""
        return self.snapshot(node).rumors

    def rumor_count(self, node: Node) -> int:
        """How many rumors ``node`` knows (O(1) popcount)."""
        return self._masks[self._node_index[node]].bit_count()

    def min_rumor_count(self) -> int:
        """The smallest per-node rumor count (0 for an empty state).

        One popcount pass over the mask list — the backing primitive for
        the ``min_rumors_complete`` phase gate ("every node knows ≥ m
        rumors") without per-node Python round trips.
        """
        if not self._masks:
            return 0
        return min(mask.bit_count() for mask in self._masks)

    def knows(self, node: Node, rumor: Rumor) -> bool:
        """Whether ``node`` knows ``rumor``."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return False
        return bool(self._masks[self._node_index[node]] >> bit & 1)

    def count_knowing(self, rumor: Rumor) -> int:
        """How many nodes know ``rumor`` (O(1) incremental counter)."""
        bit = self._space.index.get(rumor)
        if bit is None:
            return 0
        return self._coverage[bit]

    def knows_every(self, nodes: Iterable[Node], rumors: Iterable[Rumor]) -> bool:
        """Whether every node in ``nodes`` knows every rumor in ``rumors``.

        One integer mask test per node instead of materializing each
        node's rumor frozenset — on an n-node all-to-all run the final
        completeness check is O(n) bitmask ANDs rather than O(n²) set
        inserts.
        """
        index = self._space.index
        required = 0
        for rumor in rumors:
            bit = index.get(rumor)
            if bit is None:
                return False
            required |= 1 << bit
        masks = self._masks
        node_index = self._node_index
        return all(
            masks[node_index[node]] & required == required for node in nodes
        )

    # -- notes ----------------------------------------------------------
    def publish_note(self, origin: Node, **data: Any) -> None:
        """Write/overwrite ``origin``'s own note, bumping its version."""
        i = self._node_index[origin]
        old = self._notes[i].get(origin)
        version = (old.version + 1) if old is not None else 1
        self._notes[i][origin] = Note(version=version, data=tuple(sorted(data.items())))
        self._snapshots[i] = None

    def note_of(self, reader: Node, origin: Node) -> Optional[Note]:
        """The note of ``origin`` as currently known by ``reader`` (or ``None``)."""
        return self._notes[self._node_index[reader]].get(origin)

    def known_note_origins(self, reader: Node) -> list[Node]:
        """All origins whose notes ``reader`` has seen."""
        return list(self._notes[self._node_index[reader]])

    def clear_notes(self) -> None:
        """Drop every note board (used between guess-and-double iterations)."""
        for i, board in enumerate(self._notes):
            if board:
                board.clear()
                self._snapshots[i] = None

    # -- exchange plumbing ----------------------------------------------
    def snapshot(self, node: Node) -> Payload:
        """An immutable snapshot of everything ``node`` knows right now.

        Copy-on-write: the returned :class:`Payload` is cached and reused
        until the node's rumors or note board next change, so snapshotting
        an unchanged node is O(1).
        """
        i = self._node_index[node]
        payload = self._snapshots[i]
        if payload is None:
            payload = Payload(
                notes=tuple(self._notes[i].items()),
                mask=self._masks[i],
                space=self._space,
            )
            self._snapshots[i] = payload
        return payload

    def merge(self, node: Node, payload: Payload) -> bool:
        """Merge a received snapshot into ``node``'s knowledge.

        Returns ``True`` if anything new was learned.  Payloads produced by
        this state's own :meth:`snapshot` merge as one ``or`` over bitmasks;
        foreign payloads (hand-built, or from another state instance) fall
        back to interning their rumor tokens.
        """
        i = self._node_index[node]
        mine = self._masks[i]
        if payload._space is self._space:
            added = payload._mask & ~mine
        else:
            added = 0
            coverage_len = len(self._coverage)
            for rumor in payload.rumors:
                bit = self._space.intern(rumor)
                if bit >= coverage_len:
                    self._coverage.append(0)
                    coverage_len += 1
                flag = 1 << bit
                if not mine & flag:
                    added |= flag
        changed = False
        if added:
            self._masks[i] = mine | added
            coverage = self._coverage
            bits = added
            while bits:
                low = bits & -bits
                coverage[low.bit_length() - 1] += 1
                bits ^= low
            changed = True
        board = self._notes[i]
        for origin, note in payload.notes:
            current = board.get(origin)
            if current is None or note.version > current.version:
                board[origin] = note
                changed = True
        if changed:
            self._snapshots[i] = None
        return changed
