"""Shared network state: per-node rumor sets and versioned per-origin notes.

Dissemination protocols in this library all operate on the same two pieces
of node-local knowledge:

* a **rumor set** — the set of rumors the node currently knows.  Rumors are
  arbitrary hashable tokens; for all-to-all dissemination they are node ids,
  for one-to-all broadcast there is a single token.
* a **note board** — a per-origin key/value record (e.g. the error flag and
  rumor-set fingerprint used by the Termination Check of Algorithm 1).  Each
  origin node only ever writes its *own* entry and bumps a version counter
  when it does, so merging two boards is conflict-free: keep the higher
  version per origin.

Keeping this state in one object (rather than inside protocol instances)
lets composite algorithms such as EID run several protocol *phases* over the
same knowledge: the D-DTG phase fills the rumor sets, the RR-broadcast phase
keeps spreading them, the termination check reads them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Iterable, Optional

from repro.graphs.latency_graph import Node

__all__ = ["Note", "NetworkState", "Payload"]

Rumor = Hashable


@dataclasses.dataclass(frozen=True)
class Note:
    """A versioned, origin-owned record. Higher version wins on merge."""

    version: int
    data: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, value in self.data:
            if k == key:
                return value
        return default


@dataclasses.dataclass(frozen=True)
class Payload:
    """An immutable snapshot shipped in one exchange."""

    rumors: frozenset
    notes: tuple[tuple[Node, Note], ...]


class NetworkState:
    """Rumor sets and note boards for every node in the network."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._rumors: dict[Node, set] = {node: set() for node in nodes}
        self._notes: dict[Node, dict[Node, Note]] = {node: {} for node in self._rumors}

    # -- rumors ---------------------------------------------------------
    def add_rumor(self, node: Node, rumor: Rumor) -> None:
        """Give ``node`` knowledge of ``rumor``."""
        self._rumors[node].add(rumor)

    def seed_self_rumors(self) -> None:
        """Give every node its own id as a rumor (all-to-all dissemination)."""
        for node in self._rumors:
            self._rumors[node].add(node)

    def rumors(self, node: Node) -> frozenset:
        """The rumors ``node`` currently knows."""
        return frozenset(self._rumors[node])

    def knows(self, node: Node, rumor: Rumor) -> bool:
        """Whether ``node`` knows ``rumor``."""
        return rumor in self._rumors[node]

    def count_knowing(self, rumor: Rumor) -> int:
        """How many nodes know ``rumor``."""
        return sum(1 for rumors in self._rumors.values() if rumor in rumors)

    # -- notes ----------------------------------------------------------
    def publish_note(self, origin: Node, **data: Any) -> None:
        """Write/overwrite ``origin``'s own note, bumping its version."""
        old = self._notes[origin].get(origin)
        version = (old.version + 1) if old is not None else 1
        self._notes[origin][origin] = Note(version=version, data=tuple(sorted(data.items())))

    def note_of(self, reader: Node, origin: Node) -> Optional[Note]:
        """The note of ``origin`` as currently known by ``reader`` (or ``None``)."""
        return self._notes[reader].get(origin)

    def known_note_origins(self, reader: Node) -> list[Node]:
        """All origins whose notes ``reader`` has seen."""
        return list(self._notes[reader])

    def clear_notes(self) -> None:
        """Drop every note board (used between guess-and-double iterations)."""
        for board in self._notes.values():
            board.clear()

    # -- exchange plumbing ----------------------------------------------
    def snapshot(self, node: Node) -> Payload:
        """An immutable snapshot of everything ``node`` knows right now."""
        return Payload(
            rumors=frozenset(self._rumors[node]),
            notes=tuple(self._notes[node].items()),
        )

    def merge(self, node: Node, payload: Payload) -> bool:
        """Merge a received snapshot into ``node``'s knowledge.

        Returns ``True`` if anything new was learned.
        """
        changed = False
        before = len(self._rumors[node])
        self._rumors[node] |= payload.rumors
        if len(self._rumors[node]) != before:
            changed = True
        board = self._notes[node]
        for origin, note in payload.notes:
            current = board.get(origin)
            if current is None or note.version > current.version:
                board[origin] = note
                changed = True
        return changed
