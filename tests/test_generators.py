"""Unit tests for topology generators and latency models."""

import random

import pytest

from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.latency_models import (
    bimodal_latency,
    constant_latency,
    geometric_distance_latency,
    uniform_latency,
    zipf_latency,
)


class TestLatencyModels:
    def test_constant(self):
        model = constant_latency(4)
        assert model(0, 1, random.Random(0)) == 4

    def test_constant_rejects_zero(self):
        with pytest.raises(GraphError):
            constant_latency(0)

    def test_uniform_within_bounds(self):
        model = uniform_latency(2, 9)
        rng = random.Random(1)
        samples = [model(0, 1, rng) for _ in range(200)]
        assert all(2 <= s <= 9 for s in samples)
        assert len(set(samples)) > 1

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(GraphError):
            uniform_latency(5, 2)
        with pytest.raises(GraphError):
            uniform_latency(0, 2)

    def test_bimodal_values(self):
        model = bimodal_latency(1, 50, 0.5)
        rng = random.Random(2)
        samples = {model(0, 1, rng) for _ in range(200)}
        assert samples == {1, 50}

    def test_bimodal_extreme_probabilities(self):
        rng = random.Random(0)
        always_fast = bimodal_latency(1, 50, 1.0)
        assert all(always_fast(0, 1, rng) == 1 for _ in range(20))
        never_fast = bimodal_latency(1, 50, 0.0)
        assert all(never_fast(0, 1, rng) == 50 for _ in range(20))

    def test_bimodal_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            bimodal_latency(1, 2, 1.5)

    def test_zipf_within_bounds_and_head_heavy(self):
        model = zipf_latency(20, exponent=2.0)
        rng = random.Random(3)
        samples = [model(0, 1, rng) for _ in range(500)]
        assert all(1 <= s <= 20 for s in samples)
        assert samples.count(1) > samples.count(10)

    def test_zipf_rejects_bad_params(self):
        with pytest.raises(GraphError):
            zipf_latency(0)
        with pytest.raises(GraphError):
            zipf_latency(5, exponent=-1)

    def test_geometric_distance(self):
        positions = {0: (0.0, 0.0), 1: (0.3, 0.4)}
        model = geometric_distance_latency(positions, scale=10)
        assert model(0, 1, random.Random(0)) == 5

    def test_geometric_missing_position_raises(self):
        model = geometric_distance_latency({0: (0.0, 0.0)})
        with pytest.raises(GraphError):
            model(0, 1, random.Random(0))


class TestBasicTopologies:
    def test_clique(self):
        g = generators.clique(6)
        assert g.num_nodes == 6
        assert g.num_edges == 15
        assert g.max_degree() == 5
        assert g.is_connected()

    def test_star(self):
        g = generators.star(10)
        assert g.degree(0) == 9
        assert all(g.degree(leaf) == 1 for leaf in range(1, 10))

    def test_path(self):
        g = generators.path(5)
        assert g.num_edges == 4
        assert g.weighted_diameter() == 4

    def test_cycle(self):
        g = generators.cycle(6)
        assert all(g.degree(v) == 2 for v in g.nodes())
        assert g.weighted_diameter() == 3

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            generators.cycle(2)

    def test_grid(self):
        g = generators.grid(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.hop_diameter() == 5

    def test_hypercube(self):
        g = generators.hypercube(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.hop_diameter() == 4

    def test_binary_tree(self):
        g = generators.binary_tree(7)
        assert g.num_edges == 6
        assert g.degree(0) == 2
        assert g.is_connected()

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            generators.clique(0)
        with pytest.raises(GraphError):
            generators.grid(0, 3)
        with pytest.raises(GraphError):
            generators.hypercube(0)

    def test_latency_model_applied(self):
        g = generators.clique(5, latency_model=constant_latency(7))
        assert all(latency == 7 for _, _, latency in g.edges())


class TestRandomTopologies:
    def test_erdos_renyi_connected(self):
        g = generators.erdos_renyi(30, 0.05, rng=random.Random(0))
        assert g.is_connected()

    def test_erdos_renyi_density(self):
        dense = generators.erdos_renyi(30, 0.8, rng=random.Random(1))
        sparse = generators.erdos_renyi(30, 0.05, rng=random.Random(1))
        assert dense.num_edges > sparse.num_edges

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(10, 1.5)

    def test_erdos_renyi_unconnected_allowed(self):
        g = generators.erdos_renyi(
            20, 0.0, rng=random.Random(0), ensure_connected=False
        )
        assert g.num_edges == 0

    def test_random_regular(self):
        g = generators.random_regular(24, 5, rng=random.Random(0))
        assert all(g.degree(v) == 5 for v in g.nodes())
        assert g.is_connected()

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            generators.random_regular(9, 5)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(GraphError):
            generators.random_regular(5, 5)

    def test_random_regular_deterministic(self):
        a = generators.random_regular(16, 4, rng=random.Random(3))
        b = generators.random_regular(16, 4, rng=random.Random(3))
        assert a == b

    def test_random_geometric_connected(self):
        g = generators.random_geometric(25, radius=0.2, rng=random.Random(0))
        assert g.is_connected()

    def test_random_geometric_latencies_positive(self):
        g = generators.random_geometric(20, radius=0.4, rng=random.Random(1))
        assert all(latency >= 1 for _, _, latency in g.edges())

    def test_random_geometric_rejects_bad_radius(self):
        with pytest.raises(GraphError):
            generators.random_geometric(10, radius=0.0)


class TestCompositeTopologies:
    def test_dumbbell_shape(self):
        g = generators.dumbbell(5, bridge_length=3, bridge_latency=7)
        assert g.num_nodes == 2 * 5 + 2
        assert g.is_connected()
        # Bridge edges have the bridge latency.
        assert g.latency(4, 10) == 7

    def test_dumbbell_single_bridge(self):
        g = generators.dumbbell(4, bridge_length=1)
        assert g.num_nodes == 8
        assert g.has_edge(3, 4)

    def test_ring_of_cliques(self):
        g = generators.ring_of_cliques(4, 5, inter_latency=9, rng=random.Random(0))
        assert g.num_nodes == 20
        assert g.is_connected()
        assert 9 in g.distinct_latencies()

    def test_ring_of_cliques_multiple_links(self):
        g = generators.ring_of_cliques(
            4, 5, links_per_pair=3, rng=random.Random(0)
        )
        intra = 4 * 10
        assert g.num_edges == intra + 4 * 3

    def test_ring_of_cliques_validation(self):
        with pytest.raises(GraphError):
            generators.ring_of_cliques(2, 5)
        with pytest.raises(GraphError):
            generators.ring_of_cliques(4, 3, links_per_pair=100)

    def test_two_tier_datacenter(self):
        g = generators.two_tier_datacenter(4, 5, inter_rack_latency=20)
        assert g.num_nodes == 20
        assert g.is_connected()
        # Rack leaders form a clique at the slow latency.
        assert g.latency(0, 5) == 20
        # Rack members are fast.
        assert g.latency(0, 1) == 1

    def test_two_tier_needs_two_racks(self):
        with pytest.raises(GraphError):
            generators.two_tier_datacenter(1, 5)


class TestExtendedTopologies:
    def test_torus_regular(self):
        g = generators.torus(4, 5)
        assert g.num_nodes == 20
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.is_connected()

    def test_torus_wraparound(self):
        g = generators.torus(3, 3)
        assert g.has_edge(0, 2)  # row wrap
        assert g.has_edge(0, 6)  # column wrap

    def test_torus_validation(self):
        with pytest.raises(GraphError):
            generators.torus(2, 5)

    def test_complete_bipartite(self):
        g = generators.complete_bipartite(3, 4)
        assert g.num_nodes == 7
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(5) == 3
        assert not g.has_edge(0, 1)  # no intra-side edges

    def test_watts_strogatz_no_rewiring_is_lattice(self):
        g = generators.watts_strogatz(12, 4, 0.0)
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.is_connected()

    def test_watts_strogatz_rewired_stays_connected(self):
        for seed in range(3):
            g = generators.watts_strogatz(
                20, 4, 0.3, rng=random.Random(seed)
            )
            assert g.is_connected()
            assert g.num_edges == 40  # rewiring preserves edge count

    def test_watts_strogatz_full_rewiring(self):
        g = generators.watts_strogatz(16, 4, 1.0, rng=random.Random(1))
        assert g.is_connected()

    def test_watts_strogatz_validation(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 4, 1.5)

    def test_barabasi_albert_shape(self):
        g = generators.barabasi_albert(40, 2, rng=random.Random(0))
        assert g.num_nodes == 40
        assert g.is_connected()
        # Seed clique (3 edges) + 2 per subsequent node.
        assert g.num_edges == 3 + 2 * 37

    def test_barabasi_albert_has_hubs(self):
        g = generators.barabasi_albert(100, 2, rng=random.Random(1))
        # Preferential attachment: max degree well above the minimum.
        assert g.max_degree() >= 4 * g.min_degree()

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            generators.barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            generators.barabasi_albert(5, 5)

    def test_extended_latency_models_applied(self):
        from repro.graphs.latency_models import constant_latency

        g = generators.torus(3, 3, latency_model=constant_latency(6))
        assert all(latency == 6 for _, _, latency in g.edges())
