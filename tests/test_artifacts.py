"""Tests for the content-keyed artifact cache (repro.experiments.artifacts)."""

import pickle
import random

import pytest

from repro.experiments import artifacts
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph


@pytest.fixture(autouse=True)
def fresh_cache():
    artifacts.clear()
    yield
    artifacts.clear()


def _ring(ell=4, seed=0):
    return generators.ring_of_cliques(4, 4, inter_latency=ell, rng=random.Random(seed))


class TestFingerprint:
    def test_stable_across_calls(self):
        g = _ring()
        assert g.fingerprint() == g.fingerprint()

    def test_equal_content_equal_fingerprint(self):
        assert _ring().fingerprint() == _ring().fingerprint()

    def test_mutation_changes_fingerprint(self):
        g = _ring()
        before = g.fingerprint()
        g.add_edge(0, 5, 99)
        assert g.fingerprint() != before

    def test_different_latency_different_fingerprint(self):
        assert _ring(ell=4).fingerprint() != _ring(ell=8).fingerprint()

    def test_pickling_drops_caches_but_keeps_content(self):
        g = _ring()
        fingerprint = g.fingerprint()
        g.edge_arrays()
        clone = pickle.loads(pickle.dumps(g))
        assert clone.fingerprint() == fingerprint
        assert clone.num_edges == g.num_edges


class TestGenericCache:
    def test_build_called_once(self):
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert artifacts.cached("k", 1, build) == "value"
        assert artifacts.cached("k", 1, build) == "value"
        assert len(calls) == 1
        assert artifacts.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_kind_separates_namespaces(self):
        artifacts.cached("a", 1, lambda: "first")
        assert artifacts.cached("b", 1, lambda: "second") == "second"
        assert artifacts.stats()["entries"] == 2

    def test_clear_resets(self):
        artifacts.cached("a", 1, lambda: "x")
        artifacts.clear()
        assert artifacts.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestGraphRecipes:
    def test_same_recipe_same_object(self):
        first = artifacts.cached_graph(("ring", 4, 4, 4, 0), _ring)
        second = artifacts.cached_graph(("ring", 4, 4, 4, 0), _ring)
        assert first is second

    def test_unhashable_recipe_rejected(self):
        with pytest.raises(TypeError):
            artifacts.cached_graph(("ring", [4, 4]), _ring)


class TestDerivedProducts:
    def test_spanner_cached_by_content_and_params(self):
        g = _ring()
        spanner = artifacts.cached_spanner(g, 2, seed=7)
        assert artifacts.cached_spanner(g, 2, seed=7) is spanner
        # Same content, different object: still a hit (content-keyed).
        assert artifacts.cached_spanner(_ring(), 2, seed=7) is spanner
        # Different parameters miss.
        assert artifacts.cached_spanner(g, 3, seed=7) is not spanner
        assert artifacts.cached_spanner(g, 2, seed=8) is not spanner
        assert artifacts.cached_spanner(g, 2, seed=7, n_hat=10_000) is not spanner

    def test_spanner_matches_direct_construction(self):
        from repro.protocols.spanner import baswana_sen_spanner

        g = _ring()
        cached = artifacts.cached_spanner(g, 2, seed=7)
        direct = baswana_sen_spanner(g, 2, random.Random(7))
        assert cached.num_edges == direct.num_edges
        assert cached.max_out_degree() == direct.max_out_degree()

    def test_mutation_invalidates_derived_entries(self):
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 1)])
        assert artifacts.cached_weighted_diameter(g) == 2
        g.add_edge(0, 2, 5)
        g.add_edge(2, 3, 1)
        # New content -> new key -> fresh computation, not a stale hit.
        assert artifacts.cached_weighted_diameter(g) == g.weighted_diameter()

    def test_distance_maps_and_conductance(self):
        g = _ring()
        source = g.nodes()[0]
        assert artifacts.cached_hop_distances(g, source) == g.hop_distances(source)
        assert artifacts.cached_weighted_distances(g, source) == g.weighted_distances(
            source
        )
        from repro.conductance.sweep import sweep_conductance, sweep_conductance_profile

        assert artifacts.cached_sweep_conductance(g, 4, seed=2) == sweep_conductance(
            g, 4, rng=random.Random(2)
        )
        assert artifacts.cached_conductance_profile(g) == sweep_conductance_profile(g)
        # Second lookups are hits.
        hits_before = artifacts.stats()["hits"]
        artifacts.cached_conductance_profile(g)
        assert artifacts.stats()["hits"] == hits_before + 1


class TestArtifactStore:
    """The durable on-disk store: atomic visibility + integrity framing.

    Deep durability coverage (every truncation prefix, bit flips, temp
    hygiene) lives in ``test_sharding.py``; this checks the headline
    contract from the cache's side: a torn write is *recomputed*, never
    half-loaded.
    """

    def test_truncated_entry_recomputed_not_loaded(self, tmp_path):
        store = artifacts.ArtifactStore(tmp_path)
        builds = []

        def lookup():
            cached = store.load("diameter")
            if cached is None:
                builds.append(1)
                cached = 42  # stand-in for the expensive product
                store.save("diameter", cached)
            return cached

        assert lookup() == 42 and len(builds) == 1
        assert lookup() == 42 and len(builds) == 1  # second call: disk hit
        # A killed writer's torn entry: keep only a prefix of the file.
        path = store._path("diameter")
        path.write_bytes(path.read_bytes()[:10])
        assert lookup() == 42 and len(builds) == 2  # detected, recomputed
        assert store.stats["corrupt"] == 1
        assert lookup() == 42 and len(builds) == 2  # rewritten entry loads

    def test_writes_are_atomic_under_crash(self, tmp_path):
        # A write that dies before os.replace leaves only a temp file,
        # which readers and listings never see.
        store = artifacts.ArtifactStore(tmp_path)
        (tmp_path / ".tmp-abandoned").write_bytes(b"repro-artifact/1\n partial")
        assert store.list() == []
        assert store.load("anything") is None
