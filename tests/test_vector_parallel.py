"""Vector-backend trials under the ``REPRO_JOBS`` process-pool fan-out.

A parallel :func:`~repro.experiments.harness.map_trials` run of
vector-backend simulations must be bit-identical to the serial run —
results, merged span counts, and merged metric values alike.  The trial
function lives at module level so it pickles into the worker processes.
"""

import random

from repro.experiments.harness import map_trials
from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.obs.metrics import metrics_since, metrics_snapshot
from repro.obs.profile import span_snapshot, spans_since
from repro.protocols.push_pull import run_push_pull


def _vector_trial(seed):
    """One seeded vector-backend broadcast (module-level so it pickles)."""
    graph = generators.erdos_renyi(
        40, 0.12, latency_model=uniform_latency(1, 5), rng=random.Random(seed)
    )
    return run_push_pull(graph, seed=seed, backend="vector")


SEEDS = list(range(6))


def test_parallel_vector_trials_bit_identical(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    serial = map_trials(_vector_trial, SEEDS)
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = map_trials(_vector_trial, SEEDS)
    assert parallel == serial
    assert all(result.complete for result in serial)


def test_parallel_vector_trials_merge_spans_and_metrics(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    spans_before = span_snapshot()
    metrics_before = metrics_snapshot()
    map_trials(_vector_trial, SEEDS)
    serial_spans = spans_since(spans_before)
    serial_metrics = metrics_since(metrics_before)

    monkeypatch.setenv("REPRO_JOBS", "2")
    spans_before = span_snapshot()
    metrics_before = metrics_snapshot()
    map_trials(_vector_trial, SEEDS)
    parallel_spans = spans_since(spans_before)
    parallel_metrics = metrics_since(metrics_before)

    # Span *counts* are deterministic (durations are wall clock, so only
    # the counts compare); every trial is timed under harness.trial.
    assert parallel_spans["harness.trial"][0] == serial_spans["harness.trial"][0]
    assert serial_spans["harness.trial"][0] == len(SEEDS)
    # Metric values never read a clock, so the merged parallel deltas are
    # identical to the serial ones — runs, rounds, and all.
    assert parallel_metrics == serial_metrics
    assert serial_metrics["sim_runs_total"]["cells"]
