"""Tests for the model-invariant checkers (src/repro/sim/invariants.py).

Two halves: clean runs must pass with all checkers attached, and each
deliberately broken engine mutation must be caught by the matching
checker with a round-stamped message.
"""


import pytest

from repro.errors import SimulationError
from repro.graphs.generators import clique, ring_of_cliques, star
from repro.protocols.base import per_node_rng_factory
from repro.protocols.push_pull import PushPullProtocol, run_push_pull
from repro.protocols.flooding import run_flooding
from repro.sim.engine import Engine
from repro.sim.failures import CrashSchedule, MessageLoss
from repro.sim.invariants import (
    CrashedSilenceChecker,
    DeliveryLatencyChecker,
    MonotoneKnowledgeChecker,
    SingleInitiationChecker,
    SymmetricMergeChecker,
    checked,
    checking_enabled,
    default_checkers,
)
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState, Payload


def make_push_pull_engine(graph, seed=0, engine_cls=Engine, **kwargs):
    source = graph.nodes()[0]
    rumor = ("rumor", source)
    state = NetworkState(graph.nodes())
    state.add_rumor(source, rumor)
    make_rng = per_node_rng_factory(seed)
    engine = engine_cls(
        graph,
        lambda node: PushPullProtocol(make_rng(node)),
        state=state,
        **kwargs,
    )
    return engine, rumor


# ---------------------------------------------------------------------------
# Clean runs: all checkers, zero violations
# ---------------------------------------------------------------------------

class TestCleanRuns:
    def test_push_pull_checked_matches_unchecked(self):
        graph = ring_of_cliques(4, 5, inter_latency=7)
        plain, rumor = make_push_pull_engine(graph, seed=3)
        rounds_plain = plain.run(until=broadcast_complete(rumor))
        checked_engine, rumor = make_push_pull_engine(
            graph, seed=3, checkers=default_checkers()
        )
        rounds_checked = checked_engine.run(until=broadcast_complete(rumor))
        assert rounds_checked == rounds_plain
        assert checked_engine.metrics == plain.metrics

    def test_checked_run_with_message_loss(self):
        graph = clique(10)
        engine, rumor = make_push_pull_engine(
            graph,
            seed=1,
            failure_model=MessageLoss(p=0.3, seed=5),
            checkers=default_checkers(),
        )
        engine.run(until=broadcast_complete(rumor), max_rounds=5_000)

    def test_checked_run_with_crashes(self):
        graph = clique(10)
        crashed = graph.nodes()[-1]
        engine, rumor = make_push_pull_engine(
            graph,
            seed=2,
            failure_model=CrashSchedule({crashed: 3}),
            checkers=default_checkers(),
        )

        def survivors_know(engine_):
            return all(
                engine_.state.knows(node, rumor)
                for node in graph.nodes()
                if node != crashed
            )

        engine.run(until=survivors_know, max_rounds=5_000)

    def test_checked_scope_auto_attaches(self):
        graph = star(8)
        assert not checking_enabled()
        with checked():
            assert checking_enabled()
            engine, _ = make_push_pull_engine(graph)
            assert len(engine._checkers) == len(default_checkers())
            # Explicit empty tuple forces checking off even inside the scope.
            off, _ = make_push_pull_engine(graph, checkers=())
            assert off._checkers == ()
        assert not checking_enabled()
        engine, _ = make_push_pull_engine(graph)
        assert engine._checkers == ()

    def test_checked_scope_protocol_runners_pass(self):
        graph = ring_of_cliques(3, 4, inter_latency=5)
        with checked():
            result = run_push_pull(graph, seed=0)
            assert result.complete
            assert run_flooding(graph).complete


# ---------------------------------------------------------------------------
# Broken engines: each mutation caught by the matching checker
# ---------------------------------------------------------------------------

class OffByOneDelivery(Engine):
    """Delivers every exchange one round early (broken latency handling)."""

    def _initiate(self, initiator, responder):
        before = self.pending_exchanges()
        super()._initiate(initiator, responder)
        if self.pending_exchanges() == before:
            return  # the exchange was dropped (lost/rejected), nothing queued
        round_key, exchange = max(
            ((r, bucket[-1]) for r, bucket in self._in_flight.items() if bucket),
            key=lambda item: item[1].sequence,
        )
        self._in_flight[round_key].pop()
        if not self._in_flight[round_key]:
            del self._in_flight[round_key]
        exchange.delivers_at -= 1
        self._in_flight.setdefault(exchange.delivers_at, []).append(exchange)


class DoubleInitiation(Engine):
    """Lets every node initiate the same exchange twice per round."""

    def _initiate(self, initiator, responder):
        super()._initiate(initiator, responder)
        super()._initiate(initiator, responder)


class ForgetfulState(NetworkState):
    """Drops a previously known rumor after enough merges (amnesia bug)."""

    def __init__(self, nodes):
        super().__init__(nodes)
        self._merges = 0

    def merge(self, node, payload):
        changed = super().merge(node, payload)
        self._merges += 1
        if self._merges == 40:
            i = self._node_index[node]
            mask = self._masks[i]
            if mask:  # clear the lowest set bit: one rumor forgotten
                low = mask & -mask
                self._masks[i] = mask ^ low
                self._coverage[low.bit_length() - 1] -= 1
                self._snapshots[i] = None
        return changed


class LossyMergeState(NetworkState):
    """Silently drops one rumor from every received payload (lossy merge)."""

    def merge(self, node, payload):
        rumors = payload.rumors
        if rumors:
            rumors = rumors - {sorted(rumors, key=repr)[0]}
        return super().merge(
            node, Payload(rumors=rumors, notes=payload.notes)
        )


class TestBrokenEnginesCaught:
    def test_off_by_one_delivery_caught(self):
        graph = ring_of_cliques(4, 5, inter_latency=7)
        engine, rumor = make_push_pull_engine(
            graph,
            seed=3,
            engine_cls=OffByOneDelivery,
            checkers=[DeliveryLatencyChecker()],
        )
        with pytest.raises(SimulationError) as excinfo:
            engine.run(until=broadcast_complete(rumor))
        message = str(excinfo.value)
        assert "delivery-latency" in message
        assert "at round" in message
        assert "recent events" in message  # the trace excerpt rode along

    def test_double_initiation_caught(self):
        graph = clique(6)
        engine, rumor = make_push_pull_engine(
            graph,
            engine_cls=DoubleInitiation,
            checkers=[SingleInitiationChecker()],
        )
        with pytest.raises(SimulationError, match="single-initiation"):
            engine.run(until=broadcast_complete(rumor))

    def test_forgetting_caught(self):
        graph = clique(8)
        state = ForgetfulState(graph.nodes())
        state.seed_self_rumors()
        make_rng = per_node_rng_factory(0)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            state=state,
            checkers=[MonotoneKnowledgeChecker()],
        )
        with pytest.raises(SimulationError, match="monotone-knowledge"):
            engine.run(max_rounds=200)

    def test_lossy_merge_caught(self):
        graph = clique(8)
        state = LossyMergeState(graph.nodes())
        state.seed_self_rumors()
        make_rng = per_node_rng_factory(0)
        engine = Engine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            state=state,
            checkers=[SymmetricMergeChecker()],
        )
        with pytest.raises(SimulationError, match="symmetric-merge"):
            engine.run(max_rounds=200)

    def test_crashed_initiation_caught(self):
        graph = clique(6)
        crashed = graph.nodes()[0]
        engine, _ = make_push_pull_engine(
            graph,
            failure_model=CrashSchedule({crashed: 0}),
            checkers=[CrashedSilenceChecker()],
        )
        # The real engine skips crashed nodes; inject the buggy call directly.
        with pytest.raises(SimulationError, match="crashed-silence"):
            engine._initiate(crashed, graph.neighbors(crashed)[0])

    def test_violation_message_carries_round_and_excerpt(self):
        graph = ring_of_cliques(4, 5, inter_latency=9)
        engine, rumor = make_push_pull_engine(
            graph,
            seed=0,
            engine_cls=OffByOneDelivery,
            checkers=default_checkers(),
        )
        with pytest.raises(SimulationError) as excinfo:
            engine.run(until=broadcast_complete(rumor))
        message = str(excinfo.value)
        assert "model invariant violated" in message
        assert "initiate" in message or "deliver" in message
