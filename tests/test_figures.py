"""Tests for the figure reproductions (Figures 1-5)."""

import random

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    ITree,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.graphs.gadgets import guessing_gadget, singleton_target, theorem8_ring


class TestFigure1:
    def test_asymmetric_gadget(self):
        gadget = guessing_gadget(4, frozenset({(0, 1)}))
        text = render_figure1(gadget)
        assert "G(P)" in text
        assert "v1 ══════ u2" in text
        assert "15 slow" in text

    def test_symmetric_gadget(self):
        gadget = guessing_gadget(4, frozenset(), symmetric=True)
        text = render_figure1(gadget)
        assert "Gsym(P)" in text
        assert "(none)" in text

    def test_random_target_counts(self):
        rng = random.Random(0)
        gadget = guessing_gadget(6, singleton_target(6, rng))
        text = render_figure1(gadget)
        assert "1 fast" in text


class TestFigure2:
    def test_ring_rendering(self):
        ring = theorem8_ring(4, 5, slow_latency=9, rng=random.Random(1))
        text = render_figure2(ring)
        assert "ring of 5 layers x 4 nodes" in text
        assert text.count("══>") == 5  # one fast edge per boundary
        assert "latency 9" in text


class TestFigure3:
    def test_decomposition_totals(self):
        text = render_figure3([2, 3, 1], max_out_degree=4)
        # h·Δ_out + Σk_i = 3·4 + 6 = 18.
        assert "= 18" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            render_figure3([], 3)
        with pytest.raises(ExperimentError):
            render_figure3([0], 3)


class TestITrees:
    @pytest.mark.parametrize("order", range(7))
    def test_size_doubles(self, order):
        assert ITree.build(order).size == 2**order

    @pytest.mark.parametrize("order", range(7))
    def test_depth_equals_order(self, order):
        assert ITree.build(order).depth == order

    def test_join_identity(self):
        # An i-tree's children are trees of orders 0..i-1 (binomial shape).
        tree = ITree.build(4)
        assert [child.order for child in tree.children] == [0, 1, 2, 3]

    def test_zero_tree_is_leaf(self):
        tree = ITree.build(0)
        assert tree.size == 1
        assert tree.children == ()

    def test_negative_order_rejected(self):
        with pytest.raises(ExperimentError):
            ITree.build(-1)

    def test_render_contains_labels(self):
        text = ITree.build(3).render()
        assert "root" in text
        assert "(1)" in text and "(3)" in text

    def test_figure4_family(self):
        text = render_figure4(3)
        assert "0-tree: 1 nodes" in text
        assert "3-tree: 8 nodes" in text

    def test_figure4_validation(self):
        with pytest.raises(ExperimentError):
            render_figure4(-2)
