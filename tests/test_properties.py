"""Property-based tests (hypothesis) for core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conductance.exact import cut_conductance, exact_conductance_profile
from repro.conductance.sweep import sweep_conductance
from repro.conductance.edge_induced import StronglyEdgeInducedGraph
from repro.graphs.latency_graph import LatencyGraph
from repro.lowerbounds.game import GuessingGame
from repro.protocols.path_discovery import t_sequence
from repro.protocols.spanner import baswana_sen_spanner
from repro.sim.state import NetworkState


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def connected_graphs(draw, max_nodes=10, max_latency=8):
    """A connected LatencyGraph: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = LatencyGraph(nodes=range(n))
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        parent = order[rng.randrange(i)]
        graph.add_edge(order[i], parent, rng.randint(1, max_latency))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.randint(1, max_latency))
    return graph


# ---------------------------------------------------------------------------
# LatencyGraph invariants
# ---------------------------------------------------------------------------

class TestGraphProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distances_symmetric(self, graph):
        nodes = graph.nodes()
        u, v = nodes[0], nodes[-1]
        assert graph.weighted_distance(u, v) == graph.weighted_distance(v, u)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, graph):
        nodes = graph.nodes()
        if len(nodes) < 3:
            return
        a, b, c = nodes[0], nodes[1], nodes[2]
        ab = graph.weighted_distance(a, b)
        bc = graph.weighted_distance(b, c)
        ac = graph.weighted_distance(a, c)
        assert ac <= ab + bc

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hop_distance_lower_bounds_weighted(self, graph):
        source = graph.nodes()[0]
        hops = graph.hop_distances(source)
        weighted = graph.weighted_distances(source)
        for node, h in hops.items():
            assert weighted[node] >= h  # latencies are >= 1

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_leq_monotone(self, graph):
        latencies = graph.distinct_latencies()
        for small, large in zip(latencies, latencies[1:]):
            assert (
                graph.subgraph_leq(small).num_edges
                <= graph.subgraph_leq(large).num_edges
            )

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equality(self, graph):
        assert graph.copy() == graph


# ---------------------------------------------------------------------------
# Conductance invariants
# ---------------------------------------------------------------------------

class TestConductanceProperties:
    @given(connected_graphs(max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_profile_monotone_and_bounded(self, graph):
        profile = exact_conductance_profile(graph)
        values = [profile[ell] for ell in sorted(profile)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(connected_graphs(max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_sweep_upper_bounds_exact(self, graph):
        ell = graph.max_latency()
        exact = exact_conductance_profile(graph)[ell]
        approx = sweep_conductance(graph, ell)
        assert approx >= exact - 1e-12

    @given(connected_graphs(max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_full_latency_conductance_positive_when_connected(self, graph):
        ell = graph.max_latency()
        assert exact_conductance_profile(graph)[ell] > 0.0

    @given(connected_graphs(max_nodes=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_edge_induced_identity(self, graph, ell):
        induced = StronglyEdgeInducedGraph(graph, ell)
        nodes = graph.nodes()
        cut = nodes[: max(1, len(nodes) // 2)]
        assert induced.conductance(cut) == cut_conductance(
            graph, cut, max_latency=ell
        )

    @given(connected_graphs(max_nodes=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_edge_induced_degree_preserved(self, graph, ell):
        induced = StronglyEdgeInducedGraph(graph, ell)
        for node in graph.nodes():
            assert induced.degree(node) == graph.degree(node)


# ---------------------------------------------------------------------------
# Guessing game invariants
# ---------------------------------------------------------------------------

class TestGameProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_target_shrinks_monotonically(self, m, seed):
        rng = random.Random(seed)
        target = frozenset(
            (rng.randrange(m), m + rng.randrange(m)) for _ in range(m)
        )
        game = GuessingGame(m, target)
        previous = len(game.remaining_target)
        while not game.done and game.rounds < 100:
            guesses = {
                (rng.randrange(m), m + rng.randrange(m)) for _ in range(2 * m)
            }
            game.guess(set(list(guesses)[: 2 * m]))
            current = len(game.remaining_target)
            assert current <= previous
            previous = current

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_guessing_everything_ends_game(self, m, seed):
        rng = random.Random(seed)
        target = frozenset(
            (rng.randrange(m), m + rng.randrange(m)) for _ in range(m)
        )
        game = GuessingGame(m, target)
        all_pairs = [(a, m + b) for a in range(m) for b in range(m)]
        for start in range(0, len(all_pairs), 2 * m):
            if game.done:
                break
            game.guess(all_pairs[start : start + 2 * m])
        assert game.done

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_t_sequence_structure(self, log_k):
        k = 1 << log_k
        seq = t_sequence(k)
        assert len(seq) == 2 * k - 1
        assert max(seq) == k
        assert sum(seq) == (log_k + 2) * k // 2 * 2 - k  # = k*(log k + 2) - k
        # Every element is a power of two dividing k.
        assert all(k % ell == 0 for ell in seq)


# ---------------------------------------------------------------------------
# Spanner invariants
# ---------------------------------------------------------------------------

class TestSpannerProperties:
    @given(
        connected_graphs(max_nodes=10),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_spanner_connected_and_stretch_bounded(self, graph, k, seed):
        spanner = baswana_sen_spanner(graph, k, random.Random(seed))
        assert spanner.to_latency_graph().is_connected()
        stretch = spanner.measured_stretch(num_pairs=graph.num_nodes)
        assert stretch <= 2 * k - 1 + 1e-9

    @given(connected_graphs(max_nodes=10), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_spanner_edges_subset(self, graph, seed):
        spanner = baswana_sen_spanner(graph, 3, random.Random(seed))
        for u, v in spanner.undirected_edges():
            assert graph.has_edge(u, v)


# ---------------------------------------------------------------------------
# NetworkState invariants
# ---------------------------------------------------------------------------

class TestStateProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_rumor_sets_grow_monotonically(self, merge_sequence):
        state = NetworkState(range(5))
        state.seed_self_rumors()
        sizes = {v: 1 for v in range(5)}
        for target in merge_sequence:
            source = (target + 1) % 5
            state.merge(target, state.snapshot(source))
            new_size = len(state.rumors(target))
            assert new_size >= sizes[target]
            sizes[target] = new_size

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_merge_idempotent(self, repeats):
        state = NetworkState([0, 1])
        state.add_rumor(0, "x")
        snapshot = state.snapshot(0)
        state.merge(1, snapshot)
        before = state.rumors(1)
        for _ in range(repeats):
            state.merge(1, snapshot)
        assert state.rumors(1) == before
