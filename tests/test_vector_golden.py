"""Golden-trace parity for the vector engine backend.

With a :class:`~repro.obs.Recorder` attached the vector engine takes its
sequential mirror path, which must replay the scalar engine's event
stream **byte for byte**.  The first two traces regenerate runs whose
canonical JSONL streams are already committed for the scalar engine
(``tests/test_obs_golden.py`` owns them); this suite re-derives them with
``backend="vector"`` and asserts identity with the committed bytes — so
the two backends are pinned to one event stream, not merely to each
other.

The third trace is new in this suite and exercises the vector engine's
bucketed delivery (multiple distinct in-flight latencies at once) on a
multi-latency random graph.  To re-bless it after a deliberate semantic
change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_vector_golden.py
"""

import os
import pathlib
import random

import pytest

from repro.graphs import generators
from repro.graphs.latency_models import uniform_latency
from repro.obs import Recorder, events_to_jsonl
from repro.protocols.push_pull import run_push_pull

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _bucketed_graph():
    """A small ER graph with several distinct latencies in flight."""
    return generators.erdos_renyi(
        16, 0.3, latency_model=uniform_latency(1, 5), rng=random.Random(3)
    )


def trace_push_pull(backend) -> str:
    """The committed push--pull broadcast golden, per backend."""
    graph = generators.ring_of_cliques(3, 4, inter_latency=3, rng=random.Random(0))
    recorder = Recorder.in_memory()
    run_push_pull(graph, source=0, seed=1, recorder=recorder, backend=backend)
    return events_to_jsonl(recorder.events)


def trace_push_pull_string_ids(backend) -> str:
    """The committed string-node-id golden, per backend."""
    from repro.graphs import gadgets
    from repro.graphs.latency_graph import LatencyGraph

    ring = gadgets.theorem8_ring(2, 3, 3, random.Random(0))
    relabel = {node: f"v{node}" for node in ring.graph.nodes()}
    graph = LatencyGraph(
        nodes=[relabel[node] for node in ring.graph.nodes()],
        edges=[
            (relabel[u], relabel[v], latency)
            for u, v, latency in ring.graph.edges()
        ],
    )
    recorder = Recorder.in_memory()
    run_push_pull(
        graph,
        source=relabel[ring.graph.nodes()[0]],
        seed=2,
        recorder=recorder,
        backend=backend,
    )
    return events_to_jsonl(recorder.events)


def trace_vector_bucketed(backend) -> str:
    """Push--pull over uniform latencies 1..5: multi-bucket delivery."""
    recorder = Recorder.in_memory()
    run_push_pull(_bucketed_graph(), source=0, seed=5, recorder=recorder, backend=backend)
    return events_to_jsonl(recorder.events)


#: Traces whose golden files test_obs_golden.py owns (scalar-generated);
#: here the vector backend must reproduce the committed bytes.
SHARED_TRACES = {
    "push_pull_ring_of_cliques.jsonl": trace_push_pull,
    "push_pull_theorem8_ring_string_ids.jsonl": trace_push_pull_string_ids,
}

#: Traces owned by this suite (re-blessed here under REPRO_UPDATE_GOLDEN).
OWNED_TRACES = {
    "push_pull_vector_bucketed.jsonl": trace_vector_bucketed,
}


@pytest.mark.parametrize("filename", sorted(SHARED_TRACES))
def test_vector_backend_matches_committed_golden(filename):
    generated = SHARED_TRACES[filename]("vector")
    path = GOLDEN_DIR / filename
    assert path.exists(), f"missing golden file {path} (owned by test_obs_golden.py)"
    assert path.read_bytes() == generated.encode("ascii"), (
        f"the vector backend's event stream for {filename} diverged from "
        "the committed scalar golden — the sequential mirror path must be "
        "byte-identical to the scalar engine"
    )


@pytest.mark.parametrize("filename", sorted(OWNED_TRACES))
def test_bucketed_golden_byte_identical(filename):
    generated = OWNED_TRACES[filename]("vector")
    path = GOLDEN_DIR / filename
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_bytes(generated.encode("ascii"))
        pytest.skip(f"re-blessed {filename}")
    assert path.exists(), (
        f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
    )
    assert path.read_bytes() == generated.encode("ascii"), (
        f"{filename} drifted from the committed golden stream — if the "
        "change is intentional, re-bless with REPRO_UPDATE_GOLDEN=1 and "
        "review the diff"
    )


@pytest.mark.parametrize("filename", sorted(OWNED_TRACES))
def test_bucketed_golden_scalar_backend_agrees(filename):
    # The owned golden is backend-independent: the scalar engine emits
    # the very same canonical stream.
    assert OWNED_TRACES[filename]("vector") == OWNED_TRACES[filename]("scalar")


def test_bucketed_graph_has_multiple_latency_buckets():
    # The new golden only earns its name if several delivery buckets are
    # genuinely in flight: the graph must carry >= 3 distinct latencies.
    latencies = {latency for _, _, latency in _bucketed_graph().edges()}
    assert len(latencies) >= 3
