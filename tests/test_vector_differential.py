"""Differential tests for the vector engine backend.

:class:`~repro.sim.vector.VectorEngine` must be *field-identical* to both
the production scalar :class:`~repro.sim.engine.Engine` and the naive
:class:`~repro.testing.ReferenceEngine` for every oblivious protocol:
same completion rounds, same per-node knowledge, same metrics (including
activated edges), under random graphs, seeds, engine configs, crash
schedules, and responder caps.  Protocols that are not oblivious must be
rejected loudly at construction, and the invariant checkers (which force
the vector backend onto its sequential mirror path) must keep their
teeth.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs.generators import erdos_renyi, ring_of_cliques
from repro.graphs.latency_models import uniform_latency
from repro.protocols.base import per_node_rng_factory
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.push_pull import (
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
    run_push_pull,
)
from repro.sim.engine import Engine, NodeProtocol
from repro.sim.invariants import checked, default_checkers
from repro.sim.runner import all_to_all_complete, broadcast_complete
from repro.sim.state import NetworkState
from repro.sim.vector import VectorEngine, VectorProgram
from repro.testing import (
    ReferenceEngine,
    assert_engines_agree,
    connected_latency_graphs,
    crash_schedules,
    engine_configs,
    large_dense_graphs,
    run_differential,
    seeds,
)


def broadcast_setup(graph):
    source = graph.nodes()[0]
    rumor = ("rumor", source)

    def make_state():
        state = NetworkState(graph.nodes())
        state.add_rumor(source, rumor)
        return state

    return rumor, make_state


#: name -> builder(rumor) -> per-node protocol constructor args.
RNG_PROTOCOLS = {
    "push-pull": lambda rumor: (lambda rng: PushPullProtocol(rng)),
    "push": lambda rumor: (lambda rng: PushProtocol(rng, rumor)),
    "pull": lambda rumor: (lambda rng: PullProtocol(rng, rumor)),
}


class TestVectorVsReference:
    """backend="vector" against the naive oracle, all oblivious variants."""

    @pytest.mark.parametrize("variant", sorted(RNG_PROTOCOLS))
    @given(connected_latency_graphs(), seeds())
    @settings(max_examples=15, deadline=None)
    def test_rng_protocols_agree(self, variant, graph, seed):
        rumor, make_state = broadcast_setup(graph)
        build = RNG_PROTOCOLS[variant](rumor)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: build(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
            backend="vector",
        )
        assert_engines_agree(report)
        assert report.rounds is not None

    @given(connected_latency_graphs())
    @settings(max_examples=15, deadline=None)
    def test_flooding_agrees(self, graph):
        rumor, make_state = broadcast_setup(graph)
        report = run_differential(
            graph,
            make_factory=lambda: (lambda node: FloodingProtocol(None)),
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
            backend="vector",
        )
        assert_engines_agree(report)

    @given(connected_latency_graphs(max_nodes=10), seeds())
    @settings(max_examples=10, deadline=None)
    def test_all_to_all_agrees(self, graph, seed):
        def make_state():
            state = NetworkState(graph.nodes())
            state.seed_self_rumors()
            return state

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=all_to_all_complete(),
            max_rounds=5_000,
            backend="vector",
        )
        assert_engines_agree(report)
        assert report.rounds is not None


class TestVectorVsScalar:
    """backend="vector" against the production scalar engine itself."""

    @given(large_dense_graphs(max_nodes=25), seeds(100))
    @settings(max_examples=10, deadline=None)
    def test_dense_graphs_agree(self, graph, seed):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            max_rounds=5_000,
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)
        assert report.rounds is not None

    @given(connected_latency_graphs(max_nodes=12), seeds(), engine_configs())
    @settings(max_examples=15, deadline=None)
    def test_fresh_snapshots_and_cap_agree(self, graph, seed, config):
        rumor, make_state = broadcast_setup(graph)

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=broadcast_complete(rumor),
            fresh_snapshots=config["fresh_snapshots"],
            max_incoming_per_round=config["max_incoming_per_round"],
            max_rounds=5_000,
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)

    @given(large_dense_graphs(min_nodes=8, max_nodes=16), seeds(100), st.data())
    @settings(max_examples=8, deadline=None)
    def test_crash_schedules_agree(self, graph, seed, data):
        rumor, make_state = broadcast_setup(graph)
        source = graph.nodes()[0]
        crashes = data.draw(crash_schedules(graph.nodes(), protect=[source]))

        def make_factory():
            make_rng = per_node_rng_factory(seed)
            return lambda node: PushPullProtocol(make_rng(node))

        report = run_differential(
            graph,
            make_factory=make_factory,
            make_state=make_state,
            predicate=lambda engine: engine.round >= 25,
            make_failure_model=lambda: crashes,  # stateless: sharable
            backend="vector",
            reference_cls=Engine,
        )
        assert_engines_agree(report)


class _NoProgram(NodeProtocol):
    """Oblivious-looking protocol that declares no vector program."""

    def on_round(self, ctx):
        return None


class _Terminating(PushPullProtocol):
    """Locally-terminating variant: not oblivious, must be rejected."""

    def is_done(self, ctx):
        return False


class _DeliveryHook(PushPullProtocol):
    """Variant with a per-delivery callback: cannot be replayed as arrays."""

    def on_deliver(self, ctx, exchange):
        pass


class _PingOnly(PushPullProtocol):
    """Payload-free variant: the vector backend only ships rumors."""

    sends_payload = False


class _BadKind(PushPullProtocol):
    def vector_program(self):
        return VectorProgram(kind="telepathy", rng=self._rng)


class _RandomWithoutRng(PushPullProtocol):
    def vector_program(self):
        return VectorProgram(kind="random", rng=None)


class TestEligibility:
    """Non-oblivious protocols are rejected at engine construction."""

    GRAPH = ring_of_cliques(3, 3, inter_latency=2, rng=random.Random(0))

    def _factory(self, protocol_cls):
        make_rng = per_node_rng_factory(0)
        return lambda node: protocol_cls(make_rng(node))

    @pytest.mark.parametrize(
        "protocol_cls, pattern",
        [
            (_Terminating, "is_done"),
            (_DeliveryHook, "on_deliver"),
            (_PingOnly, "ping-only"),
            (_BadKind, "telepathy"),
            (_RandomWithoutRng, "rng"),
        ],
    )
    def test_ineligible_protocols_rejected(self, protocol_cls, pattern):
        with pytest.raises(SimulationError, match=pattern):
            VectorEngine(self.GRAPH, self._factory(protocol_cls))

    def test_protocol_without_program_rejected(self):
        with pytest.raises(SimulationError, match="vector_program"):
            VectorEngine(self.GRAPH, lambda node: _NoProgram())

    def test_scalar_engine_still_accepts_them(self):
        # The same protocols are fine on the scalar backend: eligibility
        # is a vector-backend restriction, not a model restriction.
        engine = Engine(self.GRAPH, self._factory(_Terminating))
        engine.step()
        assert engine.round == 1


class TestVectorInvariants:
    """I1–I5 accept the vector backend and still catch a broken run."""

    def test_checked_scope_passes_on_vector_backend(self):
        graph = erdos_renyi(
            24, 0.2, latency_model=uniform_latency(1, 4), rng=random.Random(5)
        )
        with checked():
            scalar = run_push_pull(graph, seed=3)
            vector = run_push_pull(graph, seed=3, backend="vector")
        assert scalar == vector

    def test_checkers_catch_forgotten_knowledge(self):
        graph = ring_of_cliques(3, 3, inter_latency=2, rng=random.Random(1))
        make_rng = per_node_rng_factory(0)
        engine = VectorEngine(
            graph,
            lambda node: PushPullProtocol(make_rng(node)),
            checkers=default_checkers(),
        )
        engine.state.seed_self_rumors()
        for _ in range(4):
            engine.step()
        # Sabotage: wipe one node's entire row — knowledge must be
        # monotone, so the end-of-run scan has to fail.  (finish_checks,
        # not another step: a delivery in the next round could
        # legitimately restore the wiped knowledge first.)
        engine.state._bits[0] = 0
        # Direct storage mutation bypasses the copy-on-write caches;
        # drop them so the checker reads the wiped row.
        engine.state._masks_cache[0] = None
        engine.state._snapshots[0] = None
        with pytest.raises(SimulationError, match="monotone"):
            engine.finish_checks()
