"""Tests for the DTG neighbor-selection ablation (rotate vs random)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import LDTGProtocol, ldtg_factory
from repro.sim.runner import local_broadcast_complete


def run_selection(graph, selection, seed=0, ell=1):
    runner = PhaseRunner(graph)
    runner.run_phase(
        ldtg_factory(graph, ell, selection=selection, seed=seed),
        latencies_known=True,
    )
    view = type("V", (), {"graph": graph, "state": runner.state})()
    return runner.total_rounds, local_broadcast_complete(ell)(view)


class TestRandomSelection:
    @pytest.mark.parametrize("selection", ["rotate", "random"])
    def test_both_complete_on_clique(self, selection):
        rounds, complete = run_selection(generators.clique(16), selection)
        assert complete

    @pytest.mark.parametrize("selection", ["rotate", "random"])
    def test_both_complete_on_star(self, selection):
        rounds, complete = run_selection(generators.star(12), selection)
        assert complete

    @pytest.mark.parametrize("selection", ["rotate", "random"])
    def test_both_complete_with_latencies(self, selection):
        g = generators.ring_of_cliques(3, 4, inter_latency=3)
        rounds, complete = run_selection(g, selection, ell=3)
        assert complete

    def test_random_is_seed_deterministic(self):
        g = generators.clique(12)
        a, _ = run_selection(g, "random", seed=9)
        b, _ = run_selection(g, "random", seed=9)
        assert a == b

    def test_different_seeds_can_differ(self):
        g = generators.random_regular(20, 8)
        rounds = {run_selection(g, "random", seed=s)[0] for s in range(6)}
        # Not a hard guarantee, but across 6 seeds some variation expected.
        assert len(rounds) >= 1  # sanity; variation checked loosely below
        assert min(rounds) > 0

    def test_comparable_round_counts(self):
        # Both selections satisfy the same O(log^2 n) analysis: round
        # counts are within a small factor of each other.
        g = generators.clique(32)
        rotate, _ = run_selection(g, "rotate")
        rand, _ = run_selection(g, "random", seed=2)
        assert 0.25 <= rand / rotate <= 4.0

    def test_validation(self):
        with pytest.raises(ProtocolError):
            LDTGProtocol(1, selection="clockwise")
        with pytest.raises(ProtocolError):
            LDTGProtocol(1, selection="random")  # rng missing
