"""Tests for the ``repro.obs.metrics`` registry and its engine wiring.

Four families:

* **Registry semantics** — counters only go up, gauges track peaks,
  histograms bucket correctly, get-or-create conflicts raise, and the
  canonical dump / Prometheus exposition have the promised shapes.
* **Merge protocol** — snapshot/since/merge mirrors the span registry:
  counters and histogram cells add, gauges take the max, and the
  delta/merge round-trip reconstructs exactly the post-snapshot work.
* **Engine wiring** — :class:`MetricsSink` totals equal
  :class:`CounterSink` totals for the same run (hypothesis-tested), and
  attaching it never perturbs the run.
* **Parallel determinism** — a ``REPRO_JOBS=2`` ``map_trials`` fan-out
  reports the same default-registry counter totals as the serial run of
  the same trials (metrics never read a clock, so merged worker deltas
  are exactly the serial increments).
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.experiments.harness import map_trials, run_experiment
from repro.obs import CounterSink, MetricsSink, Recorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
    metrics_since,
    metrics_snapshot,
    reset_metrics,
)
from repro.protocols.push_pull import run_push_pull
from repro.testing.strategies import connected_latency_graphs, seeds


@pytest.fixture(autouse=True)
def _clean_default_registry():
    reset_metrics()
    yield
    reset_metrics()


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "demo")
        counter.inc()
        counter.inc(2, kind="a")
        counter.inc(kind="a")
        assert counter.value() == 1
        assert counter.value(kind="a") == 3
        assert counter.value(kind="never") == 0

    def test_decrease_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            registry.counter("bad-name")
        counter = registry.counter("ok_total")
        with pytest.raises(ObservabilityError, match="invalid label name"):
            counter.inc(**{"bad-label": 1})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_set_max_keeps_peak(self):
        gauge = MetricsRegistry().gauge("peak")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.value() == 4
        gauge.set_max(9)
        assert gauge.value() == 9


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1, 2, 4))
        for value in (1, 2, 3, 100):
            hist.observe(value)
        cell = hist.snapshot_cell()
        assert cell["buckets"] == [1, 1, 1, 1]  # le=1, le=2, le=4, +Inf
        assert cell["sum"] == 106
        assert cell["count"] == 4
        assert hist.count() == 4
        assert hist.sum() == 106

    def test_bad_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="buckets"):
            registry.histogram("h1", buckets=())
        with pytest.raises(ObservabilityError, match="buckets"):
            registry.histogram("h2", buckets=(4, 2, 1))


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("x_total")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        registry.histogram("h")  # no explicit buckets: fine
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_collect_shape_and_canonical_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help me").inc(3, kind="z")
        registry.histogram("h", buckets=(1, 2)).observe(2)
        dump = registry.collect()
        assert dump["c_total"]["type"] == "counter"
        assert dump["c_total"]["values"] == [
            {"labels": {"kind": "z"}, "value": 3}
        ]
        assert dump["h"]["buckets"] == [1.0, 2.0]
        assert dump["h"]["values"][0]["bucket_counts"] == [0, 1, 0]
        # to_json is canonical: parse → re-serialize is the identity
        text = registry.to_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(2, kind="a")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        text = registry.exposition()
        lines = text.splitlines()
        assert "# HELP c_total a counter" in lines
        assert "# TYPE c_total counter" in lines
        assert 'c_total{kind="a"} 2' in lines
        assert "g 1.5" in lines
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 1' in lines
        assert 'h_bucket{le="+Inf"} 1' in lines
        assert "h_sum 1" in lines
        assert "h_count 1" in lines
        assert text.endswith("\n")


class TestMergeProtocol:
    def test_since_reports_only_new_work(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(5)
        snap = registry.snapshot()
        registry.counter("c_total").inc(2)
        registry.histogram("h").observe(3)
        delta = registry.since(snap)
        assert delta["c_total"]["cells"][()] == 2
        assert delta["h"]["cells"][()][-1] == 1  # one observation
        # untouched after the snapshot → absent from the delta
        registry2 = MetricsRegistry()
        registry2.counter("c_total").inc(5)
        snap2 = registry2.snapshot()
        assert registry2.since(snap2) == {}

    def test_merge_adds_counters_and_histograms_takes_gauge_max(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(3, kind="a")
        source.gauge("peak").set(7)
        source.histogram("h", buckets=(1, 2)).observe(1)
        delta = source.since({})
        target = MetricsRegistry()
        target.gauge("peak").set(9)
        target.merge(delta)
        target.merge(delta)
        assert target.counter("c_total").value(kind="a") == 6
        assert target.gauge("peak").value() == 9  # existing peak is larger
        assert target.histogram("h").count() == 2

    def test_merge_creates_unknown_metrics_with_metadata(self):
        source = MetricsRegistry()
        source.counter("c_total", "the help").inc()
        source.histogram("h", buckets=(5, 10)).observe(7)
        target = MetricsRegistry()
        target.merge(source.since({}))
        assert target.counter("c_total").help == "the help"
        assert target.histogram("h").buckets == (5.0, 10.0)

    def test_delta_merge_roundtrip_reconstructs_post_snapshot_state(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(10)
        snap = registry.snapshot()
        registry.counter("c_total").inc(4, kind="x")
        registry.histogram("h").observe(2.5)
        rebuilt = MetricsRegistry()
        rebuilt.merge(registry.since(snap))
        assert rebuilt.counter("c_total").value(kind="x") == 4
        assert rebuilt.counter("c_total").value() == 0  # pre-snapshot excluded
        assert rebuilt.histogram("h").sum() == 2.5
        assert rebuilt.histogram("h").buckets == DEFAULT_BUCKETS


class TestMetricsSink:
    def _run(self, graph, seed):
        counters = CounterSink()
        registry = MetricsRegistry()
        with Recorder(counters, MetricsSink(registry)) as recorder:
            run_push_pull(graph, seed=seed, recorder=recorder)
        return counters, registry

    def test_totals_match_counter_sink(self):
        graph_rng = random.Random(0)
        from repro.graphs import generators

        graph = generators.ring_of_cliques(3, 4, inter_latency=5, rng=graph_rng)
        counters, registry = self._run(graph, seed=3)
        events = registry.counter("engine_events_total")
        for kind, count in counters.by_kind.items():
            assert events.value(kind=kind) == count
        assert (
            registry.counter("engine_rumors_learned_total").value()
            == counters.rumors_learned
        )
        assert (
            registry.counter("engine_lost_initiations_total").value()
            == counters.lost_initiations
        )
        assert (
            registry.gauge("engine_in_flight_peak").value()
            == counters.max_in_flight
        )
        assert (
            registry.histogram("engine_delivery_latency_rounds").count()
            == counters.by_kind.get("deliver", 0)
        )

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_latency_graphs(max_nodes=12), seed=seeds())
    def test_totals_match_counter_sink_property(self, graph, seed):
        counters, registry = self._run(graph, seed)
        events = registry.counter("engine_events_total")
        by_kind = {
            kind: events.value(kind=kind) for kind in counters.by_kind
        }
        assert by_kind == counters.by_kind
        assert (
            registry.counter("engine_rumors_learned_total").value()
            == counters.rumors_learned
        )
        assert (
            registry.gauge("engine_in_flight_peak").value()
            == counters.max_in_flight
        )

    def test_sink_defaults_to_default_registry(self):
        sink = MetricsSink()
        assert sink.registry is default_registry()


def _metrics_trial(seed):
    # Module-level so the process pool can pickle it.  Each trial runs a
    # seeded broadcast, bumping the default registry's sim_* counters.
    from repro.graphs import generators

    graph = generators.ring_of_cliques(3, 4, inter_latency=5, rng=random.Random(0))
    result = run_push_pull(graph, seed=seed, mode="broadcast")
    return result.rounds, result.exchanges


def _sim_counter_cells():
    registry = default_registry()
    out = {}
    for name in ("sim_runs_total", "sim_rounds_total", "sim_exchanges_total"):
        metric = registry.metric(name)
        assert metric is not None, f"{name} was never bumped"
        out[name] = dict(metric._cells)
    return out


class TestParallelDeterminism:
    def test_parallel_metrics_equal_serial(self, monkeypatch):
        items = list(range(6))
        monkeypatch.setenv("REPRO_JOBS", "1")
        reset_metrics()
        serial_results = map_trials(_metrics_trial, items)
        serial_cells = _sim_counter_cells()
        monkeypatch.setenv("REPRO_JOBS", "2")
        reset_metrics()
        parallel_results = map_trials(_metrics_trial, items)
        parallel_cells = _sim_counter_cells()
        assert serial_results == parallel_results
        assert serial_cells == parallel_cells
        runs = parallel_cells["sim_runs_total"]
        assert sum(runs.values()) == len(items)

    def test_run_experiment_attaches_scoped_metrics(self):
        table = run_experiment("E5", "quick")
        assert table.metrics is not None
        assert "sim_runs_total" in table.metrics
        runs = table.metrics["sim_runs_total"]["values"]
        assert sum(cell["value"] for cell in runs) > 0

    def test_experiment_metrics_identical_serial_vs_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = run_experiment("E5", "quick")
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = run_experiment("E5", "quick")
        serial_sim = {
            name: entry
            for name, entry in serial.metrics.items()
            if name.startswith("sim_")
        }
        parallel_sim = {
            name: entry
            for name, entry in parallel.metrics.items()
            if name.startswith("sim_")
        }
        assert serial_sim == parallel_sim
