"""Differential matrix for phase-chained composite runs on the vector backend.

A ``backend="vector"`` :class:`~repro.protocols.base.PhaseRunner`
dispatches each phase of a composite algorithm independently: eligible
phases (RR Broadcast) ride :class:`~repro.sim.vector.VectorEngine`,
adaptive phases (ℓ-DTG) fall back to the scalar engine over the *same*
shared state.  The composite run must therefore be field-identical to
the all-scalar run — same per-phase rounds and exchanges, same totals,
same final per-node knowledge — for EID, a chained ℓ-DTG schedule, and
Path Discovery's ``T(k)`` sequence, crossed with crash schedules,
incoming caps, and every rumor-state layout the vector leg can start
from.

The mirror-path golden leg records one composite EID run (mixed
vector/scalar phases) and pins the event stream byte for byte: the
scalar run blesses the file, and the vector run — batched mirror by
default, per-exchange sequential mirror under
``REPRO_VECTOR_MIRROR=sequential`` — must reproduce it exactly
(re-bless with ``REPRO_UPDATE_GOLDEN=1`` after a deliberate semantic
change).
"""

import os
import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs.generators import ring_of_cliques
from repro.obs import Recorder, events_to_jsonl
from repro.protocols.base import PhaseRunner
from repro.protocols.dtg import ldtg_factory
from repro.protocols.eid import run_eid
from repro.protocols.path_discovery import run_t_sequence
from repro.sim.state import NetworkState
from repro.sim.vector import VectorState
from repro.testing import (
    connected_latency_graphs,
    crash_schedules,
    seeds,
    state_layouts,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _run_eid(runner, graph, max_rounds):
    run_eid(graph, diameter=2, seed=1, runner=runner, max_rounds=max_rounds)


def _run_ldtg_chain(runner, graph, max_rounds):
    for step, ell in enumerate([1, max(1, graph.max_latency())]):
        runner.run_phase(
            ldtg_factory(graph, ell, run_tag=f"chain{step}"),
            latencies_known=True,
            max_rounds=max_rounds,
            name=f"{ell}-DTG",
        )


def _run_path_discovery(runner, graph, max_rounds):
    run_t_sequence(runner, graph, k=2, tag="t2", max_rounds=max_rounds)


#: name -> composite driver over a prepared PhaseRunner.
COMPOSITES = {
    "eid": _run_eid,
    "ldtg-chain": _run_ldtg_chain,
    "path-discovery": _run_path_discovery,
}


#: Adaptive ℓ-DTG walks can wait forever on a crashed neighbor, so the
#: crash-schedule leg bounds every phase and compares the park outcome
#: itself — both backends must hit (or not hit) the budget identically.
CRASH_MAX_ROUNDS = 600


def run_composite(
    name, graph, backend, engine_kwargs=None, layout=None, max_rounds=5_000
):
    """One all-to-all-seeded composite run; returns the finished runner."""
    state = NetworkState(graph.nodes())
    state.seed_self_rumors()
    if layout is not None:
        state = VectorState.from_network_state(state, layout=layout)
    runner = PhaseRunner(
        graph, state=state, backend=backend, engine_kwargs=engine_kwargs
    )
    COMPOSITES[name](runner, graph, max_rounds)
    return runner


def run_crash_leg(name, graph, backend, engine_kwargs):
    """A phase-bounded composite run; returns ``(runner, parked)``."""
    state = NetworkState(graph.nodes())
    state.seed_self_rumors()
    runner = PhaseRunner(graph, state=state, backend=backend, engine_kwargs=engine_kwargs)
    try:
        COMPOSITES[name](runner, graph, CRASH_MAX_ROUNDS)
    except SimulationError as exc:
        if "max_rounds" not in str(exc):
            raise
        return runner, True
    return runner, False


def assert_composites_agree(graph, scalar, vector):
    assert vector.total_rounds == scalar.total_rounds
    assert vector.total_exchanges == scalar.total_exchanges
    assert vector.total_messages == scalar.total_messages
    assert [(p.name, p.rounds, p.exchanges) for p in vector.phases] == [
        (p.name, p.rounds, p.exchanges) for p in scalar.phases
    ]
    for node in graph.nodes():
        assert set(vector.state.rumors(node)) == set(scalar.state.rumors(node))


class TestCompositeMatrix:
    """EID / ℓ-DTG / Path Discovery x {crashes, caps, layouts}."""

    @pytest.mark.parametrize("name", sorted(COMPOSITES))
    @given(connected_latency_graphs(min_nodes=4, max_nodes=9), st.data())
    @settings(max_examples=5, deadline=None)
    def test_crash_schedules_agree(self, name, graph, data):
        crashes = data.draw(crash_schedules(graph.nodes()))
        kwargs = {"failure_model": crashes}  # stateless: sharable
        scalar, scalar_parked = run_crash_leg(name, graph, None, kwargs)
        vector, vector_parked = run_crash_leg(name, graph, "vector", kwargs)
        assert vector_parked == scalar_parked
        assert_composites_agree(graph, scalar, vector)

    @pytest.mark.parametrize("name", sorted(COMPOSITES))
    @given(
        connected_latency_graphs(min_nodes=4, max_nodes=9),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=5, deadline=None)
    def test_incoming_caps_agree(self, name, graph, cap):
        kwargs = {"max_incoming_per_round": cap}
        scalar = run_composite(name, graph, backend=None, engine_kwargs=kwargs)
        vector = run_composite(
            name, graph, backend="vector", engine_kwargs=kwargs
        )
        assert_composites_agree(graph, scalar, vector)

    @pytest.mark.parametrize("name", sorted(COMPOSITES))
    @given(connected_latency_graphs(min_nodes=4, max_nodes=9), state_layouts())
    @settings(max_examples=5, deadline=None)
    def test_layout_family_agrees(self, name, graph, layout):
        scalar = run_composite(name, graph, backend=None)
        vector = run_composite(name, graph, backend="vector", layout=layout)
        assert_composites_agree(graph, scalar, vector)

    @given(connected_latency_graphs(min_nodes=4, max_nodes=9), seeds(100))
    @settings(max_examples=5, deadline=None)
    def test_eid_mixes_backends(self, graph, seed):
        """The vector EID run really is mixed: RR Broadcast phases ride
        the fast path while the adaptive ℓ-DTG phases fall back."""
        runner = run_composite("eid", graph, backend="vector")
        backends = {p.backend for p in runner.phases}
        assert "vector" in backends
        assert "scalar-fallback" in backends
        # Fallback reasons are recorded only for fallen-back phases.
        assert any(r is not None for r in runner.phase_fallbacks)
        assert any(
            r is None
            for r, p in zip(runner.phase_fallbacks, runner.phases)
            if p.backend == "vector"
        )


def _composite_trace(backend, mirror=None) -> str:
    """A recorded composite EID run's event stream as canonical JSONL.

    The recorder forces every vector-dispatched phase onto its mirror
    path (batched by default, per-exchange under
    ``REPRO_VECTOR_MIRROR=sequential``), which must replay the scalar
    engine's canonical stream byte for byte across phase boundaries.
    """
    graph = ring_of_cliques(3, 4, inter_latency=2, rng=random.Random(2))
    recorder = Recorder.in_memory()
    previous = os.environ.get("REPRO_VECTOR_MIRROR")
    if mirror is not None:
        os.environ["REPRO_VECTOR_MIRROR"] = mirror
    try:
        runner = PhaseRunner(graph, recorder=recorder, backend=backend)
        run_eid(graph, diameter=3, seed=4, runner=runner)
    finally:
        if mirror is not None:
            if previous is None:
                os.environ.pop("REPRO_VECTOR_MIRROR", None)
            else:
                os.environ["REPRO_VECTOR_MIRROR"] = previous
    return events_to_jsonl(recorder.events)


GOLDEN_FILE = "eid_composite_mirror.jsonl"


class TestCompositeGoldenTrace:
    def test_scalar_golden_committed(self):
        generated = _composite_trace(None)
        path = GOLDEN_DIR / GOLDEN_FILE
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_bytes(generated.encode("ascii"))
            pytest.skip(f"re-blessed {GOLDEN_FILE}")
        assert path.exists(), (
            f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
        )
        assert path.read_bytes() == generated.encode("ascii"), (
            f"{GOLDEN_FILE} drifted from the committed scalar stream — if "
            "intentional, re-bless with REPRO_UPDATE_GOLDEN=1 and review"
        )

    @pytest.mark.parametrize("mirror", ["", "sequential"])
    def test_mirror_paths_reproduce_committed_bytes(self, mirror):
        path = GOLDEN_DIR / GOLDEN_FILE
        assert path.exists(), (
            f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
        )
        generated = _composite_trace("vector", mirror=mirror)
        assert path.read_bytes() == generated.encode("ascii"), (
            f"mirror={mirror or 'batched'!r} diverged from the committed "
            "composite stream — the mirror path must replay the scalar "
            "engine byte for byte across phases"
        )
