"""Unit tests for the lower-bound gadget constructions (Section 3 / Figures 1-2)."""

import random

import pytest

from repro.errors import GraphError
from repro.graphs.gadgets import (
    guessing_gadget,
    half_ring_cut,
    random_target,
    singleton_target,
    theorem6_network,
    theorem7_network,
    theorem8_parameters,
    theorem8_ring,
)


class TestTargets:
    def test_singleton_target_in_range(self):
        target = singleton_target(8, random.Random(0))
        assert len(target) == 1
        (i, j), = target
        assert 0 <= i < 8 and 0 <= j < 8

    def test_random_target_probability_extremes(self):
        rng = random.Random(0)
        assert random_target(5, 0.0, rng) == frozenset()
        assert len(random_target(5, 1.0, rng)) == 25

    def test_random_target_rejects_bad_p(self):
        with pytest.raises(GraphError):
            random_target(5, 2.0, random.Random(0))

    def test_target_size_concentrates(self):
        target = random_target(30, 0.2, random.Random(1))
        assert 100 < len(target) < 260  # mean 180


class TestGuessingGadget:
    def test_asymmetric_structure(self):
        m = 5
        target = frozenset({(0, 0), (2, 3)})
        gadget = guessing_gadget(m, target)
        g = gadget.graph
        assert g.num_nodes == 2 * m
        # Left clique + complete bipartite, no right clique.
        expected_edges = m * (m - 1) // 2 + m * m
        assert g.num_edges == expected_edges
        # Left nodes: clique degree m-1 plus m cross edges.
        assert g.degree(gadget.left[0]) == (m - 1) + m
        # Right nodes: only cross edges.
        assert g.degree(gadget.right[0]) == m

    def test_symmetric_structure(self):
        m = 5
        gadget = guessing_gadget(m, frozenset(), symmetric=True)
        g = gadget.graph
        expected_edges = 2 * (m * (m - 1) // 2) + m * m
        assert g.num_edges == expected_edges
        assert g.degree(gadget.right[0]) == (m - 1) + m

    def test_target_edges_fast_others_slow(self):
        m = 4
        target = frozenset({(1, 2)})
        gadget = guessing_gadget(m, target, slow_latency=99)
        g = gadget.graph
        assert g.latency(gadget.left[1], gadget.right[2]) == 1
        assert g.latency(gadget.left[0], gadget.right[0]) == 99

    def test_default_slow_latency_is_2m(self):
        gadget = guessing_gadget(6, frozenset())
        assert gadget.slow_latency == 12

    def test_fast_cross_edges_listing(self):
        gadget = guessing_gadget(4, frozenset({(0, 1), (3, 2)}))
        assert gadget.fast_cross_edges() == [
            (gadget.left[0], gadget.right[1]),
            (gadget.left[3], gadget.right[2]),
        ]

    def test_rejects_out_of_range_target(self):
        with pytest.raises(GraphError):
            guessing_gadget(3, frozenset({(5, 0)}))

    def test_rejects_slow_not_greater_than_fast(self):
        with pytest.raises(GraphError):
            guessing_gadget(3, frozenset(), fast_latency=5, slow_latency=5)

    def test_clique_edges_unit_latency(self):
        gadget = guessing_gadget(4, frozenset(), symmetric=True)
        g = gadget.graph
        assert g.latency(gadget.left[0], gadget.left[1]) == 1
        assert g.latency(gadget.right[0], gadget.right[1]) == 1


class TestTheorem6Network:
    def test_structure(self):
        rng = random.Random(0)
        gadget = theorem6_network(30, 8, rng)
        g = gadget.graph
        assert g.num_nodes == 30
        assert len(gadget.extra) == 14
        assert g.is_connected()
        # Exactly one fast cross edge (the hidden target).
        left, right = set(gadget.left), set(gadget.right)
        fast_cross = [
            (u, v)
            for u, v, latency in g.edges()
            if latency == 1
            and ((u in left and v in right) or (u in right and v in left))
        ]
        assert len(fast_cross) == 1
        assert len(gadget.target) == 1

    def test_max_degree_theta_delta(self):
        gadget = theorem6_network(40, 10, random.Random(1))
        g = gadget.graph
        # Clique nodes: clique of 20 => degree 19 (one also touches gadget).
        # Gadget left nodes: (delta-1) + delta = 19 (one also touches clique).
        assert g.max_degree() <= 2 * 10 + 1
        assert g.max_degree() >= 10

    def test_exact_gadget_when_no_extra(self):
        gadget = theorem6_network(16, 8, random.Random(2))
        assert gadget.extra == ()
        assert gadget.graph.num_nodes == 16

    def test_rejects_n_too_small(self):
        with pytest.raises(GraphError):
            theorem6_network(10, 8, random.Random(0))


class TestTheorem7Network:
    def test_fast_edges_have_latency_ell(self):
        gadget = theorem7_network(10, 0.3, ell=4, rng=random.Random(0))
        g = gadget.graph
        for left_node, right_node in gadget.fast_cross_edges():
            assert g.latency(left_node, right_node) == 4

    def test_fast_fraction_near_phi(self):
        gadget = theorem7_network(40, 0.25, ell=1, rng=random.Random(1))
        fraction = len(gadget.target) / (40 * 40)
        assert 0.18 < fraction < 0.32

    def test_diameter_small_when_phi_large(self):
        gadget = theorem7_network(30, 0.4, ell=2, rng=random.Random(2))
        # Each right node has a fast edge whp; diameter O(ell).
        assert gadget.graph.weighted_diameter() <= 3 * 2 + 2


class TestTheorem8Ring:
    def test_parameters_match_paper_formulas(self):
        s, k, c = theorem8_parameters(100, 0.25)
        assert 1.0 <= c < 1.5
        assert s >= 2 and k >= 3
        # 2n nodes total, approximately.
        assert abs(s * k - 200) / 200 < 0.2

    def test_parameters_validation(self):
        with pytest.raises(GraphError):
            theorem8_parameters(100, 0.0)
        with pytest.raises(GraphError):
            theorem8_parameters(2, 0.01)

    def test_ring_regularity_observation23(self):
        ring = theorem8_ring(6, 6, slow_latency=10, rng=random.Random(0))
        s = ring.layer_size
        degrees = {ring.graph.degree(v) for v in ring.graph.nodes()}
        assert degrees == {3 * s - 1}

    def test_one_fast_edge_per_layer_pair(self):
        ring = theorem8_ring(5, 4, slow_latency=8, rng=random.Random(1))
        assert len(ring.fast_edges) == 4
        for i, (u, v) in ring.fast_edges.items():
            assert u in ring.layers[i]
            assert v in ring.layers[(i + 1) % 4]
            assert ring.graph.latency(u, v) == 1

    def test_cross_edges_complete_bipartite(self):
        ring = theorem8_ring(4, 3, slow_latency=5, rng=random.Random(2))
        for u in ring.layers[0]:
            for v in ring.layers[1]:
                assert ring.graph.has_edge(u, v)

    def test_intra_layer_cliques_fast(self):
        ring = theorem8_ring(4, 3, slow_latency=5, rng=random.Random(3))
        layer = ring.layers[2]
        for i, u in enumerate(layer):
            for v in layer[i + 1:]:
                assert ring.graph.latency(u, v) == 1

    def test_half_ring_cut_size(self):
        ring = theorem8_ring(5, 6, slow_latency=9, rng=random.Random(4))
        cut = half_ring_cut(ring)
        assert len(cut) == 3 * 5
        # No intra-clique edge crosses the cut: the cut is whole layers.
        for i in range(3):
            assert set(ring.layers[i]) <= cut

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(GraphError):
            theorem8_ring(1, 4, slow_latency=5, rng=rng)
        with pytest.raises(GraphError):
            theorem8_ring(4, 2, slow_latency=5, rng=rng)
        with pytest.raises(GraphError):
            theorem8_ring(4, 4, slow_latency=1, rng=rng)
