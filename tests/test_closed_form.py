"""Cross-checks: closed-form conductance vs exact cut enumeration."""

import random

import pytest

from repro.conductance.closed_form import (
    clique_conductance,
    cycle_conductance,
    dumbbell_conductance,
    path_conductance,
    ring_of_cliques_conductance,
    star_conductance,
    theorem8_ring_conductance,
)
from repro.conductance.exact import exact_conductance_profile
from repro.errors import ConductanceError
from repro.graphs import generators
from repro.graphs.gadgets import theorem8_ring


def exact_phi(graph, ell=None):
    profile = exact_conductance_profile(graph)
    return profile[max(profile) if ell is None else ell]


class TestExactAgreement:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_clique(self, n):
        assert clique_conductance(n) == pytest.approx(
            exact_phi(generators.clique(n))
        )

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 11])
    def test_star(self, n):
        assert star_conductance(n) == pytest.approx(
            exact_phi(generators.star(n))
        )

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 11])
    def test_path(self, n):
        assert path_conductance(n) == pytest.approx(
            exact_phi(generators.path(n))
        )

    @pytest.mark.parametrize("n", [3, 4, 5, 8, 11])
    def test_cycle(self, n):
        assert cycle_conductance(n) == pytest.approx(
            exact_phi(generators.cycle(n))
        )

    @pytest.mark.parametrize("s,bridge", [(3, 1), (4, 1), (3, 2), (3, 3), (4, 3)])
    def test_dumbbell(self, s, bridge):
        graph = generators.dumbbell(s, bridge_length=bridge)
        assert dumbbell_conductance(s, bridge) == pytest.approx(exact_phi(graph))

    @pytest.mark.parametrize("k,s,c", [(3, 3, 1), (4, 3, 1), (3, 4, 2)])
    def test_ring_of_cliques_bounds(self, k, s, c):
        graph = generators.ring_of_cliques(
            k, s, links_per_pair=c, rng=random.Random(0)
        )
        predicted = ring_of_cliques_conductance(k, s, links_per_pair=c)
        measured = exact_phi(graph)
        # The half-cut realizes the prediction; the global min can only be
        # at or slightly below it (within a small constant).
        assert measured <= predicted + 1e-12
        assert measured >= predicted / 3

    @pytest.mark.parametrize("s,k", [(3, 4), (4, 4)])
    def test_theorem8_ring_bounds(self, s, k):
        ring = theorem8_ring(s, k, slow_latency=6, rng=random.Random(0))
        predicted = theorem8_ring_conductance(s, k)
        measured = exact_phi(ring.graph, ell=6)
        assert measured <= predicted + 1e-12
        assert measured >= predicted / 3


class TestValidation:
    def test_size_checks(self):
        with pytest.raises(ConductanceError):
            clique_conductance(1)
        with pytest.raises(ConductanceError):
            cycle_conductance(2)
        with pytest.raises(ConductanceError):
            dumbbell_conductance(3, bridge_length=0)
        with pytest.raises(ConductanceError):
            ring_of_cliques_conductance(2, 3)
        with pytest.raises(ConductanceError):
            theorem8_ring_conductance(3, 2)

    def test_monotone_in_size(self):
        # Bigger cliques in the dumbbell -> smaller conductance.
        assert dumbbell_conductance(8) < dumbbell_conductance(4)
        # Longer rings -> smaller conductance.
        assert ring_of_cliques_conductance(8, 4) < ring_of_cliques_conductance(4, 4)
