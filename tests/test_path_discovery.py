"""Tests for T(k) and Path Discovery (Appendix E)."""

import random

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import PhaseRunner
from repro.protocols.path_discovery import (
    run_path_discovery,
    run_t_sequence,
    t_sequence,
)


def all_to_all_done(graph, state) -> bool:
    everyone = set(graph.nodes())
    return all(everyone <= state.rumors(v) for v in everyone)


class TestTSequence:
    def test_base_case(self):
        assert t_sequence(1) == [1]

    def test_recursive_shape(self):
        assert t_sequence(2) == [1, 2, 1]
        assert t_sequence(4) == [1, 2, 1, 4, 1, 2, 1]
        assert t_sequence(8) == [1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1]

    def test_length_is_2k_minus_1(self):
        for k in (1, 2, 4, 8, 16, 32):
            assert len(t_sequence(k)) == 2 * k - 1

    def test_ruler_property_each_value_count(self):
        seq = t_sequence(16)
        # Value 2^i appears 2^(log k - i) times.
        assert seq.count(16) == 1
        assert seq.count(8) == 2
        assert seq.count(4) == 4
        assert seq.count(2) == 8
        assert seq.count(1) == 16

    def test_rejects_non_powers_of_two(self):
        for bad in (0, 3, 6, -2):
            with pytest.raises(ProtocolError):
                t_sequence(bad)


class TestRunTSequence:
    def test_lemma24_coverage_unit_path(self):
        g = generators.path(6)
        runner = PhaseRunner(g)
        run_t_sequence(runner, g, 8, tag="t")
        assert all_to_all_done(g, runner.state)

    def test_lemma24_coverage_weighted(self):
        g = LatencyGraph(edges=[(0, 1, 1), (1, 2, 3), (2, 3, 2), (3, 4, 1)])
        diameter = g.weighted_diameter()  # 7
        k = 8
        assert k >= diameter
        runner = PhaseRunner(g)
        run_t_sequence(runner, g, k, tag="t")
        assert all_to_all_done(g, runner.state)

    def test_coverage_guarantee_is_at_least_distance_k(self):
        # Lemma 24 guarantees pairs within distance k exchange.  (Pipelining
        # inside the DTG phases typically covers *more* than k — the lemma
        # is a lower bound on coverage, so we only assert the guarantee.)
        g = generators.path(12)
        runner = PhaseRunner(g)
        run_t_sequence(runner, g, 2, tag="t")
        assert runner.state.knows(0, 1)
        assert runner.state.knows(0, 2)
        assert runner.state.knows(5, 7)

    def test_rounds_accumulate(self):
        g = generators.path(4)
        runner = PhaseRunner(g)
        rounds = run_t_sequence(runner, g, 4, tag="t")
        assert rounds == runner.total_rounds
        assert rounds > 0


class TestPathDiscovery:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.path(7),
            generators.grid(3, 3),
            generators.ring_of_cliques(3, 4, inter_latency=3, rng=random.Random(0)),
        ],
        ids=["path", "grid", "ring-of-cliques"],
    )
    def test_completes_all_to_all(self, graph):
        report = run_path_discovery(graph)
        assert report.first_complete_round is not None
        assert report.first_complete_round <= report.rounds

    def test_final_estimate_power_of_two(self):
        report = run_path_discovery(generators.grid(3, 3))
        k = report.final_estimate
        assert k & (k - 1) == 0

    def test_deterministic(self):
        g = generators.grid(3, 3)
        assert run_path_discovery(g).rounds == run_path_discovery(g).rounds

    def test_slow_edges_force_large_estimate(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=10, rng=random.Random(1))
        report = run_path_discovery(g)
        assert report.final_estimate >= 16  # next power of two above 10
