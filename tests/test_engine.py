"""Tests for the synchronous non-blocking engine (the paper's model)."""

from typing import Optional

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.graphs.latency_graph import LatencyGraph
from repro.sim.engine import Delivery, Engine, NodeContext, NodeProtocol
from repro.sim.state import NetworkState


class Idle(NodeProtocol):
    def on_round(self, ctx):
        return None


class ContactOnce(NodeProtocol):
    """Contact a fixed neighbor in round 0, then idle; log deliveries."""

    def __init__(self, target: Optional[int]):
        self.target = target
        self.deliveries: list[Delivery] = []

    def on_round(self, ctx):
        if ctx.round == 0:
            return self.target
        return None

    def on_deliver(self, ctx, delivery):
        self.deliveries.append(delivery)


def pair_graph(latency: int = 3) -> LatencyGraph:
    return LatencyGraph(edges=[(0, 1, latency)])


class TestExchangeSemantics:
    def test_delivery_after_latency(self):
        engine = Engine(pair_graph(3), lambda v: ContactOnce(1 if v == 0 else None))
        for _ in range(3):
            engine.step()
        assert engine.protocol(0).deliveries == []
        engine.step()  # round 3: delivery due
        deliveries = engine.protocol(0).deliveries
        assert len(deliveries) == 1
        assert deliveries[0].measured_latency == 3
        assert deliveries[0].initiated_by_me

    def test_both_endpoints_get_delivery(self):
        engine = Engine(pair_graph(1), lambda v: ContactOnce(1 if v == 0 else None))
        engine.step()
        engine.step()
        assert len(engine.protocol(0).deliveries) == 1
        assert len(engine.protocol(1).deliveries) == 1
        assert not engine.protocol(1).deliveries[0].initiated_by_me

    def test_knowledge_merged_both_ways(self):
        state = NetworkState([0, 1])
        state.add_rumor(0, "a")
        state.add_rumor(1, "b")
        engine = Engine(
            pair_graph(2),
            lambda v: ContactOnce(1 if v == 0 else None),
            state=state,
        )
        engine.step()
        engine.step()
        assert not state.knows(1, "a")  # not delivered yet
        engine.step()
        assert state.knows(1, "a")
        assert state.knows(0, "b")

    def test_snapshot_taken_at_initiation(self):
        state = NetworkState([0, 1])
        engine = Engine(
            pair_graph(3),
            lambda v: ContactOnce(1 if v == 0 else None),
            state=state,
        )
        engine.step()  # round 0: exchange initiated with empty knowledge
        state.add_rumor(0, "late")  # learned after initiation
        for _ in range(3):
            engine.step()
        assert not state.knows(1, "late")

    def test_fresh_snapshot_mode_ships_delivery_time_state(self):
        state = NetworkState([0, 1])
        engine = Engine(
            pair_graph(3),
            lambda v: ContactOnce(1 if v == 0 else None),
            state=state,
            fresh_snapshots=True,
        )
        engine.step()
        state.add_rumor(0, "late")
        for _ in range(3):
            engine.step()
        assert state.knows(1, "late")

    def test_non_blocking_multiple_in_flight(self):
        class EveryRound(NodeProtocol):
            def on_round(self, ctx):
                return 1 if ctx.node == 0 else None

        engine = Engine(pair_graph(5), lambda v: EveryRound())
        for _ in range(3):
            engine.step()
        assert engine.pending_exchanges() == 3

    def test_contact_non_neighbor_rejected(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        g.add_node(2)
        engine = Engine(g, lambda v: ContactOnce(2 if v == 0 else None))
        with pytest.raises(ProtocolError):
            engine.step()

    def test_last_initiations_recorded(self):
        engine = Engine(pair_graph(1), lambda v: ContactOnce(1 if v == 0 else None))
        engine.step()
        assert engine.last_initiations == [(0, 1)]
        engine.step()
        assert engine.last_initiations == []

    def test_activated_edges_canonical_by_dense_id(self):
        # Node 10 interned before node 2: the canonical edge must follow
        # insertion (dense-id) order, not value or repr order.
        g = LatencyGraph(edges=[(10, 2, 1)])
        engine = Engine(g, lambda v: ContactOnce(10 if v == 2 else None))
        engine.step()
        assert engine.metrics.activated_edges == {(10, 2)}

    def test_blocking_ledger_drops_settled_entries(self):
        engine = Engine(
            pair_graph(2),
            lambda v: ContactOnce(1 if v == 0 else None),
            enforce_blocking=True,
        )
        engine.step()
        assert engine._in_flight_initiations == {0: 1}
        engine.step()
        engine.step()  # delivery settles the exchange
        assert engine._in_flight_initiations == {}  # no zero-count residue

    def test_blocking_ledger_untouched_when_not_enforcing(self):
        engine = Engine(pair_graph(2), lambda v: ContactOnce(1 if v == 0 else None))
        engine.step()
        assert engine._in_flight_initiations == {}


class TestLatencyVisibility:
    def test_unknown_latencies_blocked(self):
        engine = Engine(pair_graph(4), lambda v: Idle())
        ctx = NodeContext(engine, 0)
        with pytest.raises(ProtocolError):
            ctx.latency_to(1)
        with pytest.raises(ProtocolError):
            ctx.known_latencies()

    def test_known_latencies_visible(self):
        engine = Engine(pair_graph(4), lambda v: Idle(), latencies_known=True)
        ctx = NodeContext(engine, 0)
        assert ctx.latency_to(1) == 4
        assert ctx.known_latencies() == {1: 4}

    def test_measured_latency_matches_edge(self):
        engine = Engine(pair_graph(7), lambda v: ContactOnce(1 if v == 0 else None))
        for _ in range(8):
            engine.step()
        assert engine.protocol(0).deliveries[0].measured_latency == 7


class TestRunLoop:
    def test_run_until_all_done(self):
        class DoneAfter(NodeProtocol):
            def on_round(self, ctx):
                return None

            def is_done(self, ctx):
                return ctx.round >= 5

        engine = Engine(pair_graph(), lambda v: DoneAfter())
        rounds = engine.run()
        assert rounds == 5

    def test_run_custom_predicate(self):
        engine = Engine(pair_graph(), lambda v: Idle())
        rounds = engine.run(until=lambda e: e.round >= 3)
        assert rounds == 3

    def test_max_rounds_raises(self):
        engine = Engine(pair_graph(), lambda v: Idle())
        with pytest.raises(SimulationError):
            engine.run(max_rounds=10)

    def test_done_nodes_stop_initiating_but_respond(self):
        state = NetworkState([0, 1])
        state.add_rumor(1, "from-done")

        class DoneImmediately(NodeProtocol):
            def on_round(self, ctx):  # pragma: no cover - never called
                raise AssertionError("done node must not act")

            def is_done(self, ctx):
                return True

        def factory(v):
            return ContactOnce(1) if v == 0 else DoneImmediately()

        engine = Engine(pair_graph(1), factory, state=state)
        engine.step()
        engine.step()
        assert state.knows(0, "from-done")

    def test_metrics_counts(self):
        engine = Engine(pair_graph(1), lambda v: ContactOnce(1 if v == 0 else None))
        engine.step()
        assert engine.metrics.exchanges == 1
        assert engine.metrics.messages == 2
        assert len(engine.metrics.activated_edges) == 1


class TestDeterminism:
    def test_identical_runs_identical_state(self):
        from repro.protocols.push_pull import run_push_pull
        from repro.graphs import generators

        g = generators.ring_of_cliques(4, 4, inter_latency=3)
        a = run_push_pull(g, source=0, seed=11)
        b = run_push_pull(g, source=0, seed=11)
        assert a.rounds == b.rounds
        assert a.exchanges == b.exchanges

    def test_different_seeds_usually_differ(self):
        from repro.protocols.push_pull import run_push_pull
        from repro.graphs import generators

        g = generators.ring_of_cliques(4, 4, inter_latency=3)
        results = {run_push_pull(g, source=0, seed=s).exchanges for s in range(5)}
        assert len(results) > 1
