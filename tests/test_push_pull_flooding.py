"""Tests for push--pull gossip and the flooding baselines."""

import math

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.flooding import run_flooding
from repro.protocols.push_pull import run_push_pull


class TestPushPullBroadcast:
    def test_completes_on_clique(self):
        result = run_push_pull(generators.clique(16), source=0, seed=1)
        assert result.complete
        # Karp et al.: O(log n) rounds on a clique.
        assert result.rounds <= 8 * math.log2(16)

    def test_completes_on_path(self):
        g = generators.path(10)
        result = run_push_pull(g, source=0, seed=2)
        assert result.complete
        assert result.rounds >= 5  # at least ~diameter/2 rounds

    def test_latency_delays_completion(self):
        fast = generators.ring_of_cliques(4, 4, inter_latency=1)
        slow = generators.ring_of_cliques(4, 4, inter_latency=30)
        t_fast = run_push_pull(fast, source=0, seed=3).rounds
        t_slow = run_push_pull(slow, source=0, seed=3).rounds
        assert t_slow > t_fast

    def test_default_source_is_first_node(self):
        g = generators.clique(8)
        a = run_push_pull(g, seed=4)
        b = run_push_pull(g, source=0, seed=4)
        assert a.rounds == b.rounds

    def test_track_progress_history(self):
        g = generators.clique(12)
        result = run_push_pull(g, source=0, seed=5, track_progress=True)
        history = result.informed_history
        assert history is not None
        assert history[0] == 1
        assert all(a <= b for a, b in zip(history, history[1:]))

    def test_budget_exhaustion_raises(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=50)
        with pytest.raises(SimulationError):
            run_push_pull(g, source=0, seed=6, max_rounds=3)

    def test_budget_exhaustion_allow_incomplete(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=50)
        result = run_push_pull(
            g, source=0, seed=6, max_rounds=3, allow_incomplete=True
        )
        assert not result.complete
        assert result.rounds == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_push_pull(generators.clique(4), mode="sideways")

    def test_single_node_completes_instantly(self):
        g = LatencyGraph(nodes=[0])
        result = run_push_pull(g, source=0, seed=0)
        assert result.rounds == 0


class TestPushPullModes:
    def test_all_to_all(self):
        result = run_push_pull(generators.clique(10), mode="all_to_all", seed=7)
        assert result.complete

    def test_local_broadcast(self):
        g = generators.grid(4, 4)
        result = run_push_pull(g, mode="local", seed=8)
        assert result.complete

    def test_local_with_latency_threshold(self):
        # Slow edges excluded from the requirement finish much faster.
        g = generators.ring_of_cliques(4, 5, inter_latency=60)
        fast_only = run_push_pull(g, mode="local", max_latency=1, seed=9)
        everything = run_push_pull(g, mode="local", seed=9)
        assert fast_only.complete
        assert fast_only.rounds < everything.rounds

    def test_all_to_all_slower_than_broadcast(self):
        g = generators.path(12)
        broadcast = run_push_pull(g, source=0, seed=10)
        all_to_all = run_push_pull(g, mode="all_to_all", seed=10)
        assert all_to_all.rounds >= broadcast.rounds / 4  # same order


class TestFlooding:
    def test_push_pull_flooding_star_fast(self):
        star = generators.star(40)
        result = run_flooding(star, source=0, push_only=False)
        assert result.complete
        assert result.rounds <= 3

    def test_push_only_flooding_star_linear(self):
        # Footnote 2: without pull, the star takes Ω(n).
        star = generators.star(40)
        result = run_flooding(star, source=0, push_only=True)
        assert result.complete
        assert result.rounds >= 39

    def test_push_only_from_leaf(self):
        star = generators.star(10)
        result = run_flooding(star, source=3, push_only=True)
        assert result.complete

    def test_flooding_deterministic(self):
        g = generators.grid(4, 4)
        assert (
            run_flooding(g, source=0).rounds == run_flooding(g, source=0).rounds
        )

    def test_flooding_respects_latencies(self):
        path_slow = generators.path(5, latency_model=lambda u, v, r: 10)
        result = run_flooding(path_slow, source=0)
        assert result.rounds >= 40  # 4 hops x latency 10

    def test_flooding_incomplete_budget(self):
        g = generators.path(20)
        result = run_flooding(g, source=0, max_rounds=2, allow_incomplete=True)
        assert not result.complete
