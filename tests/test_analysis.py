"""Tests for the analysis helpers: stats, scaling fits, bound calculators."""

import math
import random

import pytest

from repro.analysis.bounds import compute_bounds
from repro.analysis.scaling import correlation, linear_fit, loglog_slope
from repro.analysis.stats import repeat, summarize
from repro.errors import ExperimentError
from repro.graphs import generators


class TestSummary:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.n == 4
        assert s.stdev == pytest.approx(1.29, abs=0.01)

    def test_single_observation(self):
        s = summarize([7])
        assert s.stdev == 0.0
        assert s.ci95_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])

    def test_repeat_runs_each_seed(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return float(seed)

        s = repeat(measure, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert s.mean == 2.0

    def test_repeat_needs_seeds(self):
        with pytest.raises(ExperimentError):
            repeat(lambda s: 0.0, [])

    def test_str_renders(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestScalingFits:
    def test_linear_fit_exact(self):
        slope, intercept = linear_fit([0, 1, 2], [5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(5.0)

    def test_linear_fit_validation(self):
        with pytest.raises(ExperimentError):
            linear_fit([1], [1])
        with pytest.raises(ExperimentError):
            linear_fit([1, 2], [1])
        with pytest.raises(ExperimentError):
            linear_fit([3, 3], [1, 2])

    def test_loglog_slope_power_law(self):
        xs = [2, 4, 8, 16]
        ys = [x**1.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.5)

    def test_loglog_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            loglog_slope([1, 0], [1, 2])

    def test_correlation_perfect(self):
        assert correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_correlation_rejects_constant(self):
        with pytest.raises(ExperimentError):
            correlation([1, 1], [2, 3])


class TestGraphBounds:
    def test_clique_bounds(self):
        bounds = compute_bounds(generators.clique(8))
        assert bounds.n == 8
        assert bounds.diameter == 1
        assert bounds.max_degree == 7
        assert bounds.conductance.critical_latency == 1
        assert bounds.log_n == 3.0

    def test_connectivity_term(self):
        bounds = compute_bounds(generators.clique(8))
        expected = 1 / bounds.conductance.phi_star
        assert bounds.connectivity_term == pytest.approx(expected)

    def test_lower_bound_envelope_is_min(self):
        bounds = compute_bounds(generators.clique(8))
        assert bounds.lower_bound_envelope == min(
            bounds.diameter + bounds.max_degree, bounds.connectivity_term
        )

    def test_upper_bound_envelopes_ordered(self):
        g = generators.ring_of_cliques(4, 4, inter_latency=5, rng=random.Random(0))
        bounds = compute_bounds(g)
        # Known-latency bound is never worse than the unknown-latency one.
        assert bounds.known_latency_bound <= bounds.unknown_latency_bound

    def test_push_pull_bound_formula(self):
        g = generators.clique(16)
        bounds = compute_bounds(g)
        assert bounds.push_pull_bound == pytest.approx(
            bounds.connectivity_term * math.log2(16)
        )

    def test_sampled_diameter_path(self):
        g = generators.path(30)
        bounds = compute_bounds(
            g, conductance_method="sweep", diameter_samples=5, rng=random.Random(0)
        )
        assert bounds.diameter >= 15  # sampled lower bound, >= D/2


class TestBootstrapCI:
    def test_contains_true_mean_for_tight_data(self):
        from repro.analysis.stats import bootstrap_ci

        low, high = bootstrap_ci([10.0, 10.1, 9.9, 10.05, 9.95], seed=1)
        assert low <= 10.0 <= high
        assert high - low < 0.5

    def test_widens_with_spread(self):
        from repro.analysis.stats import bootstrap_ci

        tight = bootstrap_ci([10, 10.1, 9.9, 10, 10.05], seed=2)
        wide = bootstrap_ci([1, 20, 5, 18, 9], seed=2)
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_custom_statistic(self):
        import statistics

        from repro.analysis.stats import bootstrap_ci

        low, high = bootstrap_ci(
            [1, 2, 3, 4, 100], statistic=statistics.median, seed=3
        )
        # The median is robust: the outlier must not drag the interval up.
        assert high <= 100
        assert low >= 1

    def test_deterministic_given_seed(self):
        from repro.analysis.stats import bootstrap_ci

        a = bootstrap_ci([1, 2, 3, 4, 5], seed=4)
        b = bootstrap_ci([1, 2, 3, 4, 5], seed=4)
        assert a == b

    def test_validation(self):
        from repro.analysis.stats import bootstrap_ci
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0])
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0, 2.0], resamples=3)
