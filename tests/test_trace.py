"""Tests for the trace recorder and timeline renderer."""

from repro.graphs import generators
from repro.graphs.latency_graph import LatencyGraph
from repro.protocols.base import per_node_rng_factory
from repro.protocols.discovery import LatencyDiscoveryProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.sim.engine import Engine
from repro.sim.runner import broadcast_complete
from repro.sim.state import NetworkState
from repro.sim.trace import TraceRecorder, render_timeline


def traced_push_pull(graph, rounds=10, seed=0):
    recorder = TraceRecorder()
    make_rng = per_node_rng_factory(seed)
    engine = Engine(
        graph, recorder.wrap(lambda node: PushPullProtocol(make_rng(node)))
    )
    for _ in range(rounds):
        engine.step()
    return recorder, engine


class TestRecorder:
    def test_initiations_logged_per_round(self):
        g = generators.clique(5)
        recorder, engine = traced_push_pull(g, rounds=4)
        # Every node initiates every round on a clique.
        assert len(recorder.initiations()) == 5 * 4

    def test_deliveries_logged_for_both_endpoints(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        recorder, _ = traced_push_pull(g, rounds=3)
        deliveries = recorder.deliveries()
        # Each exchange delivers to both ends.
        assert len(deliveries) % 2 == 0
        assert len(deliveries) > 0

    def test_per_node_filters(self):
        g = generators.clique(4)
        recorder, _ = traced_push_pull(g, rounds=3)
        assert len(recorder.initiations(node=0)) == 3
        all_initiations = recorder.initiations()
        assert sum(
            len(recorder.initiations(node=v)) for v in g.nodes()
        ) == len(all_initiations)

    def test_model_invariants_hold(self):
        g = generators.ring_of_cliques(3, 4, inter_latency=3)
        recorder, _ = traced_push_pull(g, rounds=15)
        assert recorder.verify_single_initiation_per_round()
        assert recorder.verify_causal_deliveries()

    def test_per_round_activity(self):
        g = generators.clique(6)
        recorder, _ = traced_push_pull(g, rounds=3)
        activity = recorder.per_round_activity()
        assert activity == {0: 6, 1: 6, 2: 6}

    def test_wrap_preserves_ping_semantics(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        state = NetworkState([0, 1])
        state.add_rumor(0, "x")
        recorder = TraceRecorder()
        engine = Engine(
            g,
            recorder.wrap(lambda node: LatencyDiscoveryProtocol(2)),
            state=state,
        )
        for _ in range(5):
            engine.step()
        # Probes stayed pings: no rumor crossed despite traced exchanges.
        assert not state.knows(1, "x")
        assert recorder.initiations()

    def test_wrapped_protocol_terminates_normally(self):
        g = LatencyGraph(edges=[(0, 1, 1)])
        recorder = TraceRecorder()
        engine = Engine(g, recorder.wrap(lambda node: LatencyDiscoveryProtocol(2)))
        rounds = engine.run(max_rounds=100)
        assert rounds < 100


class TestTimeline:
    def test_renders_marks(self):
        g = LatencyGraph(edges=[(0, 1, 2)])
        recorder, _ = traced_push_pull(g, rounds=5)
        text = render_timeline(recorder, g.nodes())
        assert "round" in text
        assert ">" in text or "#" in text

    def test_empty_trace_renders(self):
        recorder = TraceRecorder()
        text = render_timeline(recorder, [0, 1])
        assert "round" in text

    def test_width_truncation(self):
        g = generators.clique(4)
        recorder, _ = traced_push_pull(g, rounds=100)
        text = render_timeline(recorder, g.nodes(), width=20)
        body = text.splitlines()[1]
        # label + space + at most 20 cells
        assert len(body.split(" ")[-1]) <= 20


class TestTraceWithCompletion:
    def test_broadcast_trace_end_to_end(self):
        g = generators.clique(8)
        rumor = ("rumor", 0)
        state = NetworkState(g.nodes())
        state.add_rumor(0, rumor)
        recorder = TraceRecorder()
        make_rng = per_node_rng_factory(3)
        engine = Engine(
            g,
            recorder.wrap(lambda node: PushPullProtocol(make_rng(node))),
            state=state,
        )
        done = broadcast_complete(rumor)
        while not done(engine):
            engine.step()
        assert recorder.verify_single_initiation_per_round()
        assert recorder.verify_causal_deliveries()
        assert len(recorder.initiations()) == 8 * engine.round
