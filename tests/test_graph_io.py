"""Tests for graph serialization (JSON and edge list)."""

import random

import pytest

from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.io import (
    from_edge_list,
    from_json,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    to_edge_list,
    to_json,
)
from repro.graphs.latency_graph import LatencyGraph


def sample_graph():
    return generators.ring_of_cliques(3, 4, inter_latency=5, rng=random.Random(0))


class TestJson:
    def test_roundtrip(self):
        g = sample_graph()
        back, metadata = from_json(to_json(g))
        assert back == g
        assert metadata == {}

    def test_metadata_roundtrip(self):
        g = generators.clique(4)
        back, metadata = from_json(to_json(g, metadata={"seed": 7, "family": "clique"}))
        assert metadata == {"seed": 7, "family": "clique"}
        assert back == g

    def test_file_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.json"
        save_json(g, path, metadata={"note": "test"})
        back, metadata = load_json(path)
        assert back == g
        assert metadata["note"] == "test"

    def test_isolated_nodes_preserved(self):
        g = LatencyGraph(nodes=[1, 2], edges=[(3, 4, 2)])
        back, _ = from_json(to_json(g))
        assert back == g

    def test_invalid_json_rejected(self):
        with pytest.raises(GraphError):
            from_json("{not json")

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError):
            from_json('{"format": "something-else"}')

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            from_json(
                '{"format": "repro-latency-graph", "nodes": [], "edges": [[1, 2]]}'
            )

    def test_string_node_ids(self):
        g = LatencyGraph(edges=[("a", "b", 3)])
        back, _ = from_json(to_json(g))
        assert back.latency("a", "b") == 3


class TestEdgeList:
    def test_roundtrip(self):
        g = sample_graph()
        assert from_edge_list(to_edge_list(g)) == g

    def test_file_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 1 3  # inline comment\n\n2\n"
        g = from_edge_list(text)
        assert g.latency(0, 1) == 3
        assert g.has_node(2)
        assert g.num_edges == 1

    def test_bad_latency_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list("0 1 fast")

    def test_bad_field_count_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list("0 1")

    def test_string_ids_survive(self):
        g = from_edge_list("alice bob 4")
        assert g.latency("alice", "bob") == 4

    def test_numeric_ids_become_ints(self):
        g = from_edge_list("0 1 2")
        assert g.has_node(0)
        assert not g.has_node("0")
