"""Golden-trace regression suite for the observability layer.

Three small seeded runs — push--pull on a ring of cliques, EID on a
spanner, Path Discovery on a Theorem 8 ring of gadgets — are recorded as
canonical JSONL event streams and committed under ``tests/golden/``.
Each test regenerates its stream from scratch and asserts **byte
identity** with the committed file: any change to engine semantics,
event fields, or the canonical serialization makes these fail loudly.

To intentionally re-bless the streams after a deliberate change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py

and commit the diff (review it first — the diff *is* the semantic change).
"""

import json
import os
import pathlib
import random

import pytest

from repro.graphs import gadgets, generators
from repro.obs import Recorder, events_to_jsonl
from repro.protocols.eid import run_eid
from repro.protocols.path_discovery import run_path_discovery
from repro.protocols.push_pull import run_push_pull

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def trace_push_pull() -> str:
    """Push--pull one-to-all broadcast on G(P): a small ring of cliques."""
    graph = generators.ring_of_cliques(3, 4, inter_latency=3, rng=random.Random(0))
    recorder = Recorder.in_memory()
    run_push_pull(graph, source=0, seed=1, recorder=recorder)
    return events_to_jsonl(recorder.events)


def trace_eid() -> str:
    """EID(D) — DTG repetitions plus RR Broadcast over the built spanner."""
    graph = generators.ring_of_cliques(3, 3, inter_latency=2, rng=random.Random(1))
    recorder = Recorder.in_memory()
    run_eid(graph, diameter=graph.weighted_diameter(), seed=0, recorder=recorder)
    return events_to_jsonl(recorder.events)


def trace_path_discovery() -> str:
    """Path Discovery (T(k) guess-and-double) on a ring of Theorem 8 gadgets."""
    ring = gadgets.theorem8_ring(2, 3, 3, random.Random(0))
    recorder = Recorder.in_memory()
    run_path_discovery(ring.graph, recorder=recorder)
    return events_to_jsonl(recorder.events)


def trace_push_pull_string_ids() -> str:
    """Push--pull on a Theorem 8 ring relabeled with *string* node ids.

    The other golden runs all use integer nodes; this one drives string
    identities through ``node_key`` and the canonical serialization end
    to end (E12's gadget topology, relabeled ``v<i>``).
    """
    from repro.graphs.latency_graph import LatencyGraph

    ring = gadgets.theorem8_ring(2, 3, 3, random.Random(0))
    relabel = {node: f"v{node}" for node in ring.graph.nodes()}
    graph = LatencyGraph(
        nodes=[relabel[node] for node in ring.graph.nodes()],
        edges=[
            (relabel[u], relabel[v], latency)
            for u, v, latency in ring.graph.edges()
        ],
    )
    recorder = Recorder.in_memory()
    run_push_pull(
        graph, source=relabel[ring.graph.nodes()[0]], seed=2, recorder=recorder
    )
    return events_to_jsonl(recorder.events)


TRACES = {
    "push_pull_ring_of_cliques.jsonl": trace_push_pull,
    "eid_spanner_broadcast.jsonl": trace_eid,
    "path_discovery_theorem8_ring.jsonl": trace_path_discovery,
    "push_pull_theorem8_ring_string_ids.jsonl": trace_push_pull_string_ids,
}


@pytest.mark.parametrize("filename", sorted(TRACES))
def test_golden_trace_byte_identical(filename):
    generated = TRACES[filename]()
    path = GOLDEN_DIR / filename
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_bytes(generated.encode("ascii"))
        pytest.skip(f"re-blessed {filename}")
    assert path.exists(), (
        f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
    )
    committed = path.read_bytes()
    assert committed == generated.encode("ascii"), (
        f"{filename} drifted from the committed golden stream — if the "
        "change is intentional, re-bless with REPRO_UPDATE_GOLDEN=1 and "
        "review the diff"
    )


@pytest.mark.parametrize("filename", sorted(TRACES))
def test_golden_stream_is_canonical_jsonl(filename):
    """Every committed line round-trips through the canonical encoder."""
    path = GOLDEN_DIR / filename
    assert path.exists()
    lines = path.read_text("ascii").splitlines()
    assert lines, "golden stream must not be empty"
    kinds = set()
    for line in lines:
        record = json.loads(line)
        assert line == json.dumps(
            record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        kinds.add(record["kind"])
        # Rounds are per-engine; multi-phase protocols reset them to 0 at
        # each phase boundary, so only non-negativity is an invariant here.
        assert record["round"] >= 0
    # Every run at minimum initiates, delivers, and closes rounds.
    assert {"initiate", "deliver", "round"} <= kinds
